"""Build hook for the optional compiled replay kernel.

All project metadata lives in ``pyproject.toml``; this file exists only to
declare the C extension behind the ``"compiled"`` simulation backend
(``repro.sim._kernel``, see ``docs/backends.md``).  The extension is marked
``optional``: on a machine without a C toolchain (or Python headers) the
build is skipped with a warning and the install completes pure-Python —
``repro.sim.compiled`` then reports the kernel as unavailable and the
backend registry declines ``"compiled"`` gracefully.

For a PYTHONPATH-based checkout (no install), build the kernel in place
with ``python tools/build_compiled.py`` (wraps ``build_ext --inplace``).
"""

import sys

from setuptools import Extension, setup

if sys.platform == "win32":
    # MSVC: strict IEEE-754 double semantics (no contraction/reassociation).
    extra_compile_args = ["/fp:strict"]
else:
    # -ffp-contract=off: no FMA contraction — the kernel's float additions
    # must evaluate exactly as CPython would (bit-identity contract).  The
    # kernel contains no multiplications, so this is belt-and-braces.
    extra_compile_args = ["-O2", "-ffp-contract=off", "-fno-fast-math"]

setup(
    ext_modules=[
        Extension(
            "repro.sim._kernel",
            sources=["src/repro/sim/_kernel.c"],
            extra_compile_args=extra_compile_args,
            optional=True,
        )
    ]
)
