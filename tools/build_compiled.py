"""Build the compiled replay kernel in place (``repro.sim._kernel``).

Wraps ``python setup.py build_ext --inplace`` so a PYTHONPATH-based checkout
(the development and CI layout) gets the extension next to its source under
``src/repro/sim/``.  ``pip install -e .`` builds the same extension as part
of the editable install; either route enables the ``"compiled"`` backend.

Exits 0 when the kernel builds and imports, 1 when the build fails (e.g. no
C compiler) — in which case the ``"compiled"`` backend simply stays
unavailable and every other backend keeps working.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main() -> int:
    result = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        print(
            "build_compiled: build_ext failed; the 'compiled' backend will "
            "decline (pure-python and vectorized backends are unaffected)",
            file=sys.stderr,
        )
        return 1
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.sim.compiled import kernel_build_info; "
            "print('compiled kernel OK:', kernel_build_info())",
        ],
        cwd=REPO_ROOT,
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(REPO_ROOT, "src")
            + os.pathsep
            + os.environ.get("PYTHONPATH", ""),
        },
    )
    return probe.returncode


if __name__ == "__main__":
    sys.exit(main())
