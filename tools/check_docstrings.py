#!/usr/bin/env python3
"""Docstring-presence gate for the library's documented core.

Walks every module in the packages named on the command line (default:
``repro.core``, ``repro.pipeline``, ``repro.schedulers``, ``repro.traffic``,
``repro.experiments``, ``repro.faults``, ``repro.diff``) and fails if any
*public* module,
class, function, or method defined there lacks a docstring.
"Public" means the dotted path contains no ``_``-prefixed component;
inherited members and re-exports defined elsewhere are skipped, so each
symbol is checked exactly once, where it is defined.

CI runs this as part of the ``docs`` job::

    python tools/check_docstrings.py
    python tools/check_docstrings.py repro.core repro.pipeline  # subset
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from typing import Iterator, List

DEFAULT_PACKAGES = (
    "repro.core",
    "repro.pipeline",
    "repro.schedulers",
    "repro.traffic",
    "repro.experiments",
    "repro.faults",
    "repro.diff",
    "repro.utils",
)


def iter_modules(package_name: str) -> Iterator[str]:
    """Yield ``package_name`` and every module inside it, recursively."""
    package = importlib.import_module(package_name)
    yield package_name
    search = getattr(package, "__path__", None)
    if search is None:
        return
    for info in pkgutil.walk_packages(search, prefix=f"{package_name}."):
        yield info.name


def is_public(qualified: str) -> bool:
    """Whether a dotted path contains no private (``_``-prefixed) component."""
    return not any(part.startswith("_") for part in qualified.split("."))


def missing_docstrings(module_name: str) -> List[str]:
    """Dotted paths of public symbols in ``module_name`` lacking docstrings."""
    module = importlib.import_module(module_name)
    missing: List[str] = []
    if not inspect.getdoc(module):
        missing.append(module_name)

    def check_function(func, qualified: str) -> None:
        if is_public(qualified) and not inspect.getdoc(func):
            missing.append(qualified)

    def check_class(cls, qualified: str) -> None:
        if not is_public(qualified):
            return
        if not inspect.getdoc(cls):
            missing.append(qualified)
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            target = None
            if inspect.isfunction(member):
                target = member
            elif isinstance(member, (staticmethod, classmethod)):
                target = member.__func__
            elif isinstance(member, property):
                target = member.fget
            if target is not None and not inspect.getdoc(target):
                missing.append(f"{qualified}.{name}")

    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # defined elsewhere; checked where it lives
        if inspect.isclass(member):
            check_class(member, f"{module_name}.{name}")
        elif inspect.isfunction(member):
            check_function(member, f"{module_name}.{name}")
    return missing


def main(argv: List[str]) -> int:
    """Check every requested package; print offenders and return 1 if any."""
    packages = argv or list(DEFAULT_PACKAGES)
    checked = 0
    offenders: List[str] = []
    for package in packages:
        for module_name in iter_modules(package):
            checked += 1
            offenders.extend(missing_docstrings(module_name))
    if offenders:
        print(f"{len(offenders)} public symbol(s) missing docstrings:")
        for path in sorted(set(offenders)):
            print(f"  {path}")
        return 1
    print(f"docstring check OK: {checked} module(s) across {', '.join(packages)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
