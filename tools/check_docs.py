#!/usr/bin/env python3
"""Relative-link gate for the repo's markdown documentation.

Scans ``README.md`` and every ``docs/*.md`` file (or the files named on the
command line) for inline markdown links/images and verifies that every
*relative* target resolves to an existing file or directory, relative to the
file containing the link.  External targets (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#section``) are skipped; a ``path#anchor``
target is checked for the path part only.

CI runs this as part of the ``docs`` job::

    python tools/check_docs.py
    python tools/check_docs.py docs/architecture.md  # subset
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: Inline markdown links/images: ``[text](target)`` / ``![alt](target)``.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not files in this repository.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def default_files(root: Path) -> List[Path]:
    """The documentation set the gate covers by default."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(path: Path) -> List[Tuple[int, str]]:
    """(line, target) pairs of relative links in ``path`` that do not resolve."""
    broken: List[Tuple[int, str]] = []
    text = path.read_text(encoding="utf-8")
    fence_depth = 0
    for line_no, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            fence_depth = 1 - fence_depth
            continue
        if fence_depth:
            continue
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append((line_no, target))
    return broken


def main(argv: List[str]) -> int:
    """Check the documentation set; print broken links and return 1 if any."""
    root = Path(__file__).resolve().parent.parent
    files = [Path(arg) for arg in argv] if argv else default_files(root)
    total_broken = 0
    for path in files:
        for line_no, target in broken_links(path):
            print(f"{path}:{line_no}: broken relative link -> {target}")
            total_broken += 1
    if total_broken:
        print(f"{total_broken} broken link(s)")
        return 1
    print(f"docs link check OK: {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
