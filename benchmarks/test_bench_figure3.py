"""Benchmark harness for Figure 3: tail packet delays, FIFO versus LSTF-as-FIFO+."""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import format_result
from repro.experiments.figure3 import run_figure3


def test_figure3_tail_packet_delay(benchmark, scale):
    """Mean and 99th-percentile packet delay for FIFO and LSTF(constant slack)."""
    result = run_once(benchmark, run_figure3, scale, schedulers=("fifo", "lstf", "fifo+"))
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    stats = {row["scheduler"]: row for row in result.rows}
    # Paper shape: nearly identical means, smaller (or at least no larger)
    # 99th percentile for LSTF/FIFO+ than for FIFO.
    assert stats["lstf"]["mean_delay"] <= stats["fifo"]["mean_delay"] * 1.1
    assert stats["lstf"]["p99_delay"] <= stats["fifo"]["p99_delay"] * 1.02
    # LSTF with a constant slack is the same policy as FIFO+.
    assert stats["lstf"]["p99_delay"] <= stats["fifo+"]["p99_delay"] * 1.1
