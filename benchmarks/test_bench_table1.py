"""Benchmark harness for Table 1: LSTF replayability across scenarios.

Each bench regenerates one row group of the paper's Table 1 (at quick scale)
and prints the rows, so running ``pytest benchmarks/ --benchmark-only -s``
reproduces the table.
"""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import format_result
from repro.experiments.config import ExperimentResult
from repro.experiments.table1 import (
    default_scenario,
    run_priority_comparison,
    run_scenario,
    run_table1,
    table1_scenarios,
)


def _run_rows(scale, scenarios):
    result = ExperimentResult(name="table1", scale_label=scale.label)
    for scenario in scenarios:
        result.rows.append(run_scenario(scenario))
    return result


def test_table1_default_scenario(benchmark, scale):
    """Row 1: the default I2 1G-10G / 70% / Random-scheduler cell."""
    result = run_once(benchmark, _run_rows, scale, [default_scenario(scale)])
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    row = result.rows[0]
    assert row["fraction_overdue_beyond_T"] <= row["fraction_overdue"] <= 1.0


def test_table1_utilization_sweep(benchmark, scale):
    """Row 2: utilization varied from 10% to 90% on the default topology."""
    scenarios = [
        default_scenario(scale, utilization=u, name=f"I2-1G-10G@{int(u * 100)}")
        for u in (0.1, 0.3, 0.5, 0.7, 0.9)
    ]
    result = run_once(benchmark, _run_rows, scale, scenarios)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))


def test_table1_link_speed_variants(benchmark, scale):
    """Row 3: I2 1G-1G and I2 10G-10G access/edge bandwidth variants."""
    scenarios = [
        default_scenario(scale, name="I2-1G-1G", edge_core_gbps=1.0, host_edge_gbps=1.0),
        default_scenario(scale, name="I2-10G-10G", edge_core_gbps=10.0, host_edge_gbps=10.0),
    ]
    result = run_once(benchmark, _run_rows, scale, scenarios)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))


def test_table1_other_topologies(benchmark, scale):
    """Row 4: RocketFuel-like and datacenter fat-tree topologies."""
    scenarios = [s for s in table1_scenarios(scale) if s.name in ("RocketFuel", "Datacenter")]
    result = run_once(benchmark, _run_rows, scale, scenarios)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))


def test_table1_original_schedulers(benchmark, scale):
    """Row 5: FIFO / FQ / SJF / LIFO / FQ+FIFO+ original schedules."""
    scenarios = [
        default_scenario(scale, original=name, name=f"I2-1G-10G-{name}")
        for name in ("fifo", "fq", "sjf", "lifo", "fq+fifo+")
    ]
    result = run_once(benchmark, _run_rows, scale, scenarios)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    by_original = {row["original"]: row for row in result.rows}
    # Paper shape: the skew-heavy SJF/LIFO originals are the hardest to replay.
    easy = max(by_original[name]["fraction_overdue"] for name in ("fifo", "fq"))
    hard = max(by_original[name]["fraction_overdue"] for name in ("sjf", "lifo"))
    assert hard >= easy


def test_table1_priority_comparison(benchmark, scale):
    """Section 2.3 (7): simple-priority replay versus LSTF replay."""
    result = run_once(benchmark, run_priority_comparison, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    by_mode = {row["replay_mode"]: row for row in result.rows}
    assert by_mode["lstf"]["fraction_overdue"] <= by_mode["priority"]["fraction_overdue"]


def test_table1_full(benchmark, scale):
    """The complete Table 1 sweep in one run (every row group)."""
    result = run_once(benchmark, run_table1, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    assert len(result.rows) >= 13
