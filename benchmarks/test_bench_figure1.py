"""Benchmark harness for Figure 1: queueing-delay ratio CDFs (LSTF replay vs original)."""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import format_result
from repro.experiments.figure1 import run_figure1


def test_figure1_queueing_delay_ratio_cdf(benchmark, scale):
    """CDF summaries of (LSTF queueing delay / original queueing delay) per scheduler."""
    result = run_once(
        benchmark,
        run_figure1,
        scale,
        schedulers=("random", "fifo", "fq", "sjf", "lifo", "fq+fifo+"),
    )
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    # Paper shape: for every original scheduler, the bulk of packets see no
    # more queueing in the LSTF replay than in the original schedule.
    for row in result.rows:
        assert row["fraction_at_most_1"] > 0.5
        assert row["median_ratio"] <= 1.5
