"""Benchmark harness for the experiment pipeline itself.

Measures the pipeline mechanics around the simulations: cold runs that must
record schedules, warm runs that must hit the on-disk cache (zero
re-records), and the process-pool fan-out path.  The cheap
record-once-replay-many experiment subset keeps these benches fast while
still covering every pipeline layer.
"""

from __future__ import annotations

import os

import pytest
from conftest import run_once

from repro.pipeline import run_pipeline

#: Cells that share one recorded schedule across four replay modes.
SUBSET = ["table1-priority", "ablation-edf", "ablation-omniscient"]


def test_pipeline_cold_run(benchmark, scale, tmp_path):
    """Cold pipeline run: records schedules into an empty on-disk cache."""
    summary = run_once(
        benchmark,
        run_pipeline,
        SUBSET,
        scale=scale,
        workers=1,
        cache_dir=str(tmp_path / "cache"),
    )
    benchmark.extra_info["cells"] = summary.cells
    benchmark.extra_info["records_computed"] = summary.records_computed
    assert summary.cells == 6
    # One scenario recorded once, shared by every replay mode.
    assert summary.records_computed == 1
    assert summary.cache_hits == summary.cells - summary.records_computed


def test_pipeline_warm_cache_run(benchmark, scale, tmp_path):
    """Warm pipeline run: every cell replays a cached schedule, zero re-records."""
    cache_dir = str(tmp_path / "cache")
    run_pipeline(SUBSET, scale=scale, workers=1, cache_dir=cache_dir)  # warm it
    summary = run_once(
        benchmark, run_pipeline, SUBSET, scale=scale, workers=1, cache_dir=cache_dir
    )
    benchmark.extra_info["records_computed"] = summary.records_computed
    assert summary.records_computed == 0
    assert summary.cache_hits == summary.cells


def test_pipeline_process_pool_run(benchmark, scale, tmp_path):
    """Fan the subset out across worker processes; rows must match serial."""
    cache_dir = str(tmp_path / "cache")
    serial = run_pipeline(SUBSET, scale=scale, workers=1, cache_dir=cache_dir)
    workers = min(4, max(2, os.cpu_count() or 2))
    summary = run_once(
        benchmark,
        run_pipeline,
        SUBSET,
        scale=scale,
        workers=workers,
        cache_dir=cache_dir,
    )
    benchmark.extra_info["workers"] = summary.workers
    for name in SUBSET:
        assert summary.results[name].rows == serial.results[name].rows
