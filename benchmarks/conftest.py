"""Shared configuration for the benchmark harness.

Every benchmark runs one experiment from :mod:`repro.experiments` exactly once
(rounds=1) under the laptop-scale ``quick`` preset and attaches the resulting
table rows to the benchmark's ``extra_info`` so they appear in
``pytest-benchmark``'s JSON output.  The goal of these benches is to
*regenerate the paper's tables and figures*, not to micro-benchmark Python.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The scale preset shared by every benchmark (override here for paper scale)."""
    return ExperimentScale.quick()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_rows(benchmark, result) -> None:
    """Store an ExperimentResult's rows in the benchmark's extra info."""
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["scale"] = result.scale_label
    benchmark.extra_info["rows"] = result.rows
