"""Benchmark harness for Figure 4: asymptotic fairness of LSTF slack assignment."""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import format_result
from repro.experiments.figure4 import run_figure4


def test_figure4_fairness_convergence(benchmark, scale):
    """Jain-index convergence for FIFO, FQ, and LSTF at several rest estimates."""
    result = run_once(benchmark, run_figure4, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    final = {row["scheduler"]: row["final_fairness"] for row in result.rows}
    reach = {row["scheduler"]: row["time_to_90pct"] for row in result.rows}
    # Paper shape: FQ converges to ~1; every LSTF rest value also converges to
    # ~1 (asymptotic fairness even when rest is 100x below the fair share).
    assert final["fq"] > 0.95
    lstf_rows = [name for name in final if name.startswith("lstf@")]
    assert lstf_rows
    for name in lstf_rows:
        assert final[name] > 0.9
    # FIFO is slower to approach the fair allocation than FQ and LSTF.
    fifo_reach = reach["fifo"] if reach["fifo"] is not None else float("inf")
    fq_reach = reach["fq"] if reach["fq"] is not None else float("inf")
    assert fq_reach <= fifo_reach
