"""Benchmark harness for the Section 2.3 ablations (preemption, EDF, omniscient)."""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import format_result
from repro.experiments.ablations import (
    run_edf_equivalence,
    run_omniscient_ablation,
    run_preemption_ablation,
)


def test_ablation_preemptive_lstf(benchmark, scale):
    """Preemption rescues the skew-heavy SJF/LIFO originals (Section 2.3 item 5)."""
    result = run_once(benchmark, run_preemption_ablation, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    by_key = {(row["original"], row["replay_mode"]): row for row in result.rows}
    for original in ("sjf", "lifo"):
        nonpreemptive = by_key[(original, "lstf")]["fraction_overdue"]
        preemptive = by_key[(original, "lstf-preemptive")]["fraction_overdue"]
        assert preemptive <= nonpreemptive


def test_ablation_edf_equivalence(benchmark, scale):
    """Network-wide EDF and LSTF replay the same schedule identically (Appendix E)."""
    result = run_once(benchmark, run_edf_equivalence, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    by_mode = {row["replay_mode"]: row for row in result.rows}
    assert abs(by_mode["edf"]["fraction_overdue"] - by_mode["lstf"]["fraction_overdue"]) < 1e-9


def test_ablation_omniscient_initialization(benchmark, scale):
    """Omniscient per-hop initialization replays perfectly (Appendix B)."""
    result = run_once(benchmark, run_omniscient_ablation, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    by_mode = {row["replay_mode"]: row for row in result.rows}
    assert by_mode["omniscient"]["fraction_overdue"] == 0.0
    assert by_mode["lstf"]["fraction_overdue"] < 0.2
