"""Benchmark harness for Figure 2: mean FCT under FIFO / SRPT / SJF / LSTF."""

from __future__ import annotations

from conftest import attach_rows, run_once

from repro.experiments import format_result
from repro.experiments.figure2 import run_figure2


def test_figure2_mean_fct(benchmark, scale):
    """Mean flow completion time per scheduler (plus small/large flow breakdown)."""
    result = run_once(benchmark, run_figure2, scale)
    attach_rows(benchmark, result)
    print()
    print(format_result(result))
    fct = {row["scheduler"]: row["mean_fct"] for row in result.rows}
    # Paper shape: FIFO is clearly the worst; LSTF tracks SJF/SRPT closely.
    assert fct["fifo"] > fct["sjf"]
    assert fct["fifo"] > fct["lstf"]
    assert fct["lstf"] <= fct["fifo"] * 0.95
    assert abs(fct["lstf"] - fct["sjf"]) <= 0.35 * fct["sjf"]
