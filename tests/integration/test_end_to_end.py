"""End-to-end integration tests spanning the whole stack.

These exercise the same code paths as the paper's evaluation but at a scale
that finishes in seconds: topology generators, traffic, transports, the
schedulers under test, the replay engine, and the analysis layer together.
"""

import pytest

from repro.analysis import delay_statistics, fairness_timeseries, mean_fct
from repro.core import ReplayExperiment
from repro.core.slack import ConstantSlackPolicy, FairnessSlackPolicy, FlowSizeSlackPolicy
from repro.experiments import ExperimentScale
from repro.schedulers import uniform_factory
from repro.sim import Simulation
from repro.sim.flow import Flow
from repro.topology import dumbbell_topology, internet2_topology
from repro.traffic import BoundedParetoSize, WorkloadSpec, paper_default_workload
from repro.utils import mbps


SCALE = ExperimentScale.smoke()


class TestInternet2Replay:
    """A miniature version of Table 1's default cell."""

    def _experiment(self, original="random", utilization=0.6, duration=0.6):
        topology = SCALE.internet2()
        workload = WorkloadSpec(
            utilization=utilization,
            reference_bandwidth_bps=SCALE.scaled_bandwidth(1.0),
            size_distribution=paper_default_workload(),
            transport="udp",
            duration=duration,
        )
        return ReplayExperiment(topology, original, workload, seed=2)

    def test_random_schedule_replay_quality(self):
        experiment = self._experiment(utilization=0.7)
        results = experiment.run(modes=["lstf", "priority", "omniscient"])
        assert results["omniscient"].overdue_fraction == 0.0
        # LSTF must not be meaningfully worse than static priorities on total
        # overdue packets (the paper finds it is far better; at test scale the
        # sample is small, so allow a little slack in the comparison).
        assert (
            results["lstf"].overdue_fraction
            <= results["priority"].overdue_fraction + 0.05
        )
        # LSTF keeps the large-violation fraction small even on the hardest
        # (random) original schedule.
        assert results["lstf"].overdue_beyond_threshold_fraction < 0.1

    def test_fifo_plus_fq_mixture_replay(self):
        experiment = self._experiment(original="fq+fifo+")
        result = experiment.replay(mode="lstf")
        assert result.metrics.total_packets > 0
        assert result.overdue_beyond_threshold_fraction < 0.05

    def test_queueing_delay_ratio_mass_at_or_below_one(self):
        """Figure 1's headline: LSTF rarely increases a packet's queueing delay."""
        experiment = self._experiment(utilization=0.7)
        result = experiment.replay(mode="lstf")
        ratios = result.metrics.queueing_delay_ratios
        assert ratios, "expected some congested packets"
        at_most_one = sum(1 for r in ratios if r <= 1.0 + 1e-9) / len(ratios)
        assert at_most_one > 0.5


class TestObjectiveHeuristics:
    """Miniature versions of Figures 2-4."""

    def test_flow_size_slack_beats_fifo_on_mean_fct(self):
        topology = dumbbell_topology(4, mbps(10), mbps(100))
        workload = WorkloadSpec(
            utilization=0.7,
            reference_bandwidth_bps=mbps(10),
            size_distribution=BoundedParetoSize(1.2, 1460, 1e5),
            transport="tcp",
            duration=0.5,
        )

        def run(scheduler, policy):
            simulation = Simulation(
                topology, uniform_factory(scheduler),
                default_buffer_bytes=64 * 1460.0, slack_policy=policy, seed=9,
            )
            simulation.add_poisson_traffic(
                workload,
                sources=[f"src{i}" for i in range(4)],
                destinations=[f"dst{i}" for i in range(4)],
            )
            result = simulation.run(until=4.0)
            return mean_fct([f for f in result.flows if f.completed])

        fifo_fct = run("fifo", None)
        lstf_fct = run("lstf", FlowSizeSlackPolicy(scale=1.0))
        sjf_fct = run("sjf-flow", None)
        assert lstf_fct < fifo_fct
        assert lstf_fct == pytest.approx(sjf_fct, rel=0.5)

    def test_constant_slack_lstf_reduces_tail_delay_vs_fifo(self):
        topology = SCALE.internet2()
        workload = WorkloadSpec(
            utilization=0.7,
            reference_bandwidth_bps=SCALE.scaled_bandwidth(1.0),
            size_distribution=paper_default_workload(),
            transport="udp",
            duration=0.4,
        )

        def run(scheduler, policy):
            simulation = Simulation(topology, uniform_factory(scheduler),
                                    slack_policy=policy, seed=4)
            simulation.add_poisson_traffic(workload)
            result = simulation.run(until=1.5)
            return delay_statistics(result.delivered_packets)

        fifo = run("fifo", None)
        lstf = run("lstf", ConstantSlackPolicy(1.0))
        assert lstf.count == fifo.count
        # Means stay close while the tail does not get worse (the paper's
        # Figure 3 shows a modest tail improvement).
        assert lstf.mean == pytest.approx(fifo.mean, rel=0.25)
        assert lstf.p99 <= fifo.p99 * 1.05

    def test_fairness_slack_converges_to_fair_share(self):
        topology = dumbbell_topology(4, mbps(20), mbps(100))
        fair_share = mbps(20) / 4
        simulation = Simulation(
            topology,
            uniform_factory("lstf"),
            default_buffer_bytes=2048 * 1460.0,
            slack_policy=FairnessSlackPolicy(rate_estimate_bps=fair_share / 10),
            seed=5,
        )
        flows = [
            Flow(src=f"src{i}", dst=f"dst{i}", size_bytes=1e8, start_time=0.001 * i)
            for i in range(4)
        ]
        simulation.add_flows(flows, transport="tcp")
        result = simulation.run(until=1.0)
        series = fairness_timeseries(
            result.delivered_packets, bin_width=0.1, end_time=1.0,
            flow_ids=[f.flow_id for f in flows],
        )
        assert series.final_index() > 0.9


class TestScaleInvariance:
    def test_replay_quality_stable_across_bandwidth_scaling(self):
        """Scaling all bandwidths by the same factor preserves replay results."""

        def overdue_fraction(scale_factor, seed=6):
            topology = internet2_topology(edge_routers_per_core=1, scale=scale_factor)
            workload = WorkloadSpec(
                utilization=0.6,
                reference_bandwidth_bps=mbps(1000) / scale_factor,
                size_distribution=paper_default_workload(),
                transport="udp",
                duration=0.2 * scale_factor / 1000,
            )
            experiment = ReplayExperiment(topology, "fifo", workload, seed=seed)
            return experiment.replay(mode="lstf").overdue_beyond_threshold_fraction

        assert overdue_fraction(1000) == pytest.approx(overdue_fraction(2000), abs=0.02)
