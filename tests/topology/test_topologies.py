"""Tests for topology specifications and generators."""

import networkx as nx
import pytest

from repro.schedulers import uniform_factory
from repro.sim import Simulator
from repro.topology import (
    Topology,
    dumbbell_topology,
    fattree_topology,
    internet2_topology,
    linear_topology,
    rocketfuel_topology,
    single_switch_topology,
)
from repro.topology.internet2 import CORE_LINKS, CORE_ROUTERS
from repro.utils import gbps, mbps


def connected(topology: Topology) -> bool:
    graph = nx.Graph()
    graph.add_nodes_from(node.name for node in topology.nodes)
    graph.add_edges_from((link.a, link.b) for link in topology.links)
    return nx.is_connected(graph)


class TestTopologySpec:
    def test_validate_rejects_duplicates_and_dangling_links(self):
        topo = Topology("bad")
        topo.add_host("a")
        topo.add_host("a")
        with pytest.raises(ValueError):
            topo.validate()
        topo2 = Topology("bad2")
        topo2.add_host("a")
        topo2.add_link("a", "ghost", mbps(1))
        with pytest.raises(ValueError):
            topo2.validate()

    def test_node_kind_checked(self):
        from repro.topology.base import NodeSpec

        with pytest.raises(ValueError):
            NodeSpec("x", "switchy")
        assert NodeSpec("x", "host").kind == "host"

    def test_host_and_router_listing(self):
        topo = dumbbell_topology(2, mbps(10), mbps(100))
        assert sorted(topo.host_names()) == ["dst0", "dst1", "src0", "src1"]
        assert sorted(topo.router_names()) == ["left", "right"]
        assert topo.num_nodes == 6
        assert topo.num_links == 5

    def test_build_is_repeatable(self):
        """The same spec can be instantiated many times (record + replay runs)."""
        topo = linear_topology(3, mbps(10))
        first = topo.build(Simulator(), uniform_factory("fifo"))
        second = topo.build(Simulator(), uniform_factory("lstf"))
        assert set(first.nodes) == set(second.nodes)
        assert set(first.links) == set(second.links)


class TestSyntheticTopologies:
    def test_linear_requires_router(self):
        with pytest.raises(ValueError):
            linear_topology(0, mbps(1))

    def test_dumbbell_structure(self):
        topo = dumbbell_topology(3, mbps(10), mbps(100))
        assert connected(topo)
        assert len(topo.host_names()) == 6

    def test_single_switch_structure(self):
        topo = single_switch_topology(5, mbps(10))
        assert connected(topo)
        assert len(topo.router_names()) == 1
        with pytest.raises(ValueError):
            single_switch_topology(1, mbps(10))


class TestInternet2:
    def test_core_size_matches_paper(self):
        assert len(CORE_ROUTERS) == 10
        assert len(CORE_LINKS) == 16

    def test_default_counts(self):
        topo = internet2_topology(edge_routers_per_core=10, hosts_per_edge=1)
        assert len(topo.router_names()) == 10 + 10 * 10
        assert len(topo.host_names()) == 100
        assert connected(topo)

    def test_hop_counts_in_paper_range(self):
        """Host-to-host paths traverse 4-7 hops (excluding end hosts)."""
        topo = internet2_topology(edge_routers_per_core=1)
        network = topo.build(Simulator(), uniform_factory("fifo"))
        hosts = topo.host_names()
        samples = [(hosts[i], hosts[-(i + 1)]) for i in range(4)]
        for src, dst in samples:
            if src == dst:
                continue
            routers_on_path = len(network.path(src, dst)) - 2
            assert 2 <= routers_on_path <= 7

    def test_scaling_divides_bandwidths(self):
        base = internet2_topology(edge_routers_per_core=1, scale=1.0)
        scaled = internet2_topology(edge_routers_per_core=1, scale=100.0)
        base_bw = {((l.a, l.b)): l.bandwidth_bps for l in base.links}
        for link in scaled.links:
            assert link.bandwidth_bps == pytest.approx(base_bw[(link.a, link.b)] / 100.0)

    def test_bandwidth_variants(self):
        topo = internet2_topology(
            edge_core_bandwidth_bps=gbps(10),
            host_edge_bandwidth_bps=gbps(10),
            edge_routers_per_core=1,
        )
        host_links = [l for l in topo.links if l.a.startswith("host") or l.b.startswith("host")]
        assert all(l.bandwidth_bps == gbps(10) for l in host_links)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            internet2_topology(edge_routers_per_core=0)
        with pytest.raises(ValueError):
            internet2_topology(scale=0)


class TestRocketfuel:
    def test_core_size_matches_request(self):
        topo = rocketfuel_topology(num_core_routers=83, num_core_links=131,
                                   edge_routers_per_core=1)
        core_links = [l for l in topo.links if l.a.startswith("core") and l.b.startswith("core")]
        core_routers = [r for r in topo.router_names() if r.startswith("core")]
        assert len(core_routers) == 83
        assert len(core_links) == 131
        assert connected(topo)

    def test_half_core_links_slower_than_access(self):
        topo = rocketfuel_topology(num_core_routers=21, num_core_links=33)
        core_links = [l for l in topo.links if l.a.startswith("core") and l.b.startswith("core")]
        slow = [l for l in core_links if l.bandwidth_bps < gbps(1)]
        assert abs(len(slow) - len(core_links) / 2) <= 1

    def test_deterministic_for_same_seed(self):
        first = rocketfuel_topology(num_core_routers=15, num_core_links=22, seed=3)
        second = rocketfuel_topology(num_core_routers=15, num_core_links=22, seed=3)
        assert [(l.a, l.b) for l in first.links] == [(l.a, l.b) for l in second.links]

    def test_too_few_links_rejected(self):
        with pytest.raises(ValueError):
            rocketfuel_topology(num_core_routers=10, num_core_links=5)


class TestFatTree:
    def test_k4_counts(self):
        topo = fattree_topology(k=4)
        assert len(topo.host_names()) == 16
        # 4 core + 8 aggregation + 8 edge switches.
        assert len(topo.router_names()) == 20
        assert connected(topo)

    def test_uniform_bandwidth(self):
        topo = fattree_topology(k=4, bandwidth_bps=gbps(10))
        assert {link.bandwidth_bps for link in topo.links} == {gbps(10)}

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fattree_topology(k=3)

    def test_full_bisection_paths_exist(self):
        topo = fattree_topology(k=4)
        network = topo.build(Simulator(), uniform_factory("fifo"))
        hosts = topo.host_names()
        # Any two hosts in different pods are reachable within 6 hops.
        path = network.path(hosts[0], hosts[-1])
        assert 2 <= len(path) - 2 <= 6
