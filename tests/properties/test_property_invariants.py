"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.metrics import compare_schedules
from repro.core.schedule import PacketRecord, Schedule
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.fq import FairQueueingScheduler
from repro.schedulers.lstf import LstfScheduler
from repro.schedulers.priority import StaticPriorityScheduler
from repro.schedulers.srpt import SrptScheduler
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.utils.stats import cdf_points, jain_fairness_index
from repro.utils.units import transmission_delay


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
packet_sizes = st.floats(min_value=40.0, max_value=9000.0)
slacks = st.floats(min_value=0.0, max_value=10.0)
times = st.floats(min_value=0.0, max_value=100.0)


def make_packet(size=1000.0, slack=None, priority=None, remaining=None, flow_id=1):
    packet = Packet(flow_id=flow_id, src="a", dst="b", size_bytes=size)
    packet.header.slack = slack
    packet.header.priority = priority
    packet.header.remaining_flow_bytes = remaining
    return packet


# --------------------------------------------------------------------- #
# Engine invariants
# --------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_engine_executes_events_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# --------------------------------------------------------------------- #
# Scheduler invariants: work conservation and ordering
# --------------------------------------------------------------------- #
@given(st.lists(packet_sizes, min_size=1, max_size=30))
def test_fifo_is_work_conserving_and_preserves_order(sizes):
    scheduler = FifoScheduler()
    packets = [make_packet(size=s) for s in sizes]
    for index, packet in enumerate(packets):
        scheduler.enqueue(packet, float(index))
    served = []
    while len(scheduler):
        served.append(scheduler.dequeue(100.0))
    assert served == packets
    assert scheduler.byte_count == pytest.approx(0.0, abs=1e-6)


@given(st.lists(slacks, min_size=1, max_size=30))
def test_lstf_serves_equal_size_simultaneous_arrivals_in_slack_order(initial_slacks):
    scheduler = LstfScheduler()
    packets = [make_packet(size=1000.0, slack=slack) for slack in initial_slacks]
    for packet in packets:
        scheduler.enqueue(packet, 0.0)
    # Record each packet's slack before dequeue rewrites it.
    slack_of = {id(packet): packet.header.slack for packet in packets}
    served = []
    while len(scheduler):
        served.append(scheduler.dequeue(0.0))
    # All packets served exactly once, in non-decreasing slack order (ties
    # broken by arrival, which here is simultaneous).
    assert sorted(id(p) for p in served) == sorted(id(p) for p in packets)
    served_slacks = [slack_of[id(p)] for p in served]
    assert served_slacks == sorted(served_slacks)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
def test_static_priority_serves_in_priority_order(priorities):
    scheduler = StaticPriorityScheduler()
    packets = [make_packet(priority=p) for p in priorities]
    for packet in packets:
        scheduler.enqueue(packet, 0.0)
    served = []
    while len(scheduler):
        served.append(scheduler.dequeue(0.0))
    served_priorities = [p.header.priority for p in served]
    assert served_priorities == sorted(served_priorities)


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=5), st.floats(min_value=1.0, max_value=1e6)),
        min_size=1,
        max_size=40,
    )
)
def test_srpt_never_loses_or_duplicates_packets(items):
    scheduler = SrptScheduler()
    packets = [make_packet(flow_id=flow, remaining=rem) for flow, rem in items]
    for packet in packets:
        scheduler.enqueue(packet, 0.0)
    served = []
    while len(scheduler):
        served.append(scheduler.dequeue(0.0))
    assert sorted(id(p) for p in served) == sorted(id(p) for p in packets)
    assert scheduler.byte_count == 0


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=4), packet_sizes),
        min_size=2,
        max_size=40,
    )
)
def test_fair_queueing_conserves_packets_and_bytes(items):
    scheduler = FairQueueingScheduler()
    packets = [make_packet(flow_id=flow, size=size) for flow, size in items]
    total_bytes = sum(p.size_bytes for p in packets)
    for packet in packets:
        scheduler.enqueue(packet, 0.0)
    assert scheduler.byte_count == sum(p.size_bytes for p in packets)
    served = []
    while len(scheduler):
        served.append(scheduler.dequeue(0.0))
    assert len(served) == len(packets)
    assert math.isclose(sum(p.size_bytes for p in served), total_bytes)


# --------------------------------------------------------------------- #
# Statistics invariants
# --------------------------------------------------------------------- #
@given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=100))
def test_jain_index_bounds(allocations):
    index = jain_fairness_index(allocations)
    assert 0.0 <= index <= 1.0 + 1e-12


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_cdf_points_monotone_and_normalized(values):
    xs, cdf = cdf_points(values)
    assert xs == sorted(xs)
    assert all(b >= a for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == 1.0


# --------------------------------------------------------------------- #
# Replay metric invariants
# --------------------------------------------------------------------- #
def _schedule_from(outputs, base=None):
    records = []
    for index, output in enumerate(outputs):
        records.append(
            PacketRecord(
                packet_id=index,
                flow_id=index,
                src="a",
                dst="b",
                size_bytes=1000,
                ingress_time=0.0,
                output_time=output if base is None else base[index] + output,
                path=["a", "b"],
            )
        )
    return Schedule(records)


@given(
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=50),
    st.floats(min_value=0.001, max_value=1.0),
)
@settings(suppress_health_check=[HealthCheck.filter_too_much])
def test_overdue_fractions_are_consistent(outputs, deltas, threshold):
    size = min(len(outputs), len(deltas))
    outputs = outputs[:size]
    deltas = deltas[:size]
    # Keep lateness values away from the decision boundaries so the expected
    # counts are not sensitive to floating-point rounding in `base + delta`.
    assume(all(abs(d) > 1e-6 and abs(d - threshold) > 1e-6 for d in deltas))
    original = _schedule_from(outputs)
    replay = _schedule_from(deltas, base=outputs)
    metrics = compare_schedules(original, replay, threshold=threshold)
    assert 0.0 <= metrics.overdue_beyond_threshold_fraction <= metrics.overdue_fraction <= 1.0
    expected_overdue = sum(1 for d in deltas if d > 1e-9)
    assert metrics.overdue_count == expected_overdue
    expected_beyond = sum(1 for d in deltas if d > threshold)
    assert metrics.overdue_beyond_threshold_count == expected_beyond


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50))
def test_replaying_a_schedule_with_itself_has_no_overdue_packets(outputs):
    schedule = _schedule_from(outputs)
    metrics = compare_schedules(schedule, schedule, threshold=0.01)
    assert metrics.overdue_count == 0
    assert metrics.mean_lateness == 0.0
