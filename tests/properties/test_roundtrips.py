"""Hypothesis round-trips: fault defs and schedule persistence.

Two serialization contracts the repro artifacts lean on:

* every registered fault kind survives ``fault_from_dict(f.to_dict())``
  losslessly (fuzz artifacts and cache metadata embed fault plans);
* a saved schedule loads back with its canonical ``(ingress_time,
  packet_id)`` order intact (the comparator's walk order).
"""

import json
import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    HopTiming,
    PacketRecord,
    Schedule,
    load_schedule,
    save_schedule,
)
from repro.faults import (
    FAULT_KINDS,
    FAULTS,
    BernoulliLoss,
    GilbertElliottLoss,
    JammingIntervals,
    LinkOutage,
    fault_from_dict,
)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

# --------------------------------------------------------------------- #
# Fault-def strategies (one per registered kind, within validation bounds)
# --------------------------------------------------------------------- #
links_strategy = st.lists(
    st.sampled_from(("core0->core1", "edge-a->core0", "*")), max_size=2, unique=True
).map(tuple)
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def windowed(draw, cls):
    """LinkOutage / JammingIntervals within their window validation rules."""
    start = draw(st.floats(min_value=0.0, max_value=0.99, allow_nan=False))
    duration = draw(st.floats(min_value=1e-3, max_value=1.0, allow_nan=False))
    count = draw(st.integers(min_value=1, max_value=3))
    period = None
    if count > 1:
        period = duration + draw(
            st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)
        )
    return cls(
        start=start,
        duration=duration,
        period=period,
        count=count,
        links=draw(links_strategy),
    )


@st.composite
def bernoulli_losses(draw):
    return BernoulliLoss(rate=draw(probabilities), links=draw(links_strategy))


@st.composite
def gilbert_losses(draw):
    return GilbertElliottLoss(
        p_enter_bad=draw(st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)),
        p_exit_bad=draw(st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)),
        loss_good=draw(probabilities),
        loss_bad=draw(probabilities),
        links=draw(links_strategy),
    )


fault_defs = st.one_of(
    windowed(LinkOutage),
    windowed(JammingIntervals),
    bernoulli_losses(),
    gilbert_losses(),
)


class TestFaultDefRoundTrip:
    @RELAXED
    @given(fault=fault_defs)
    def test_to_dict_from_dict_is_identity(self, fault):
        assert fault_from_dict(fault.to_dict()) == fault

    @RELAXED
    @given(fault=fault_defs)
    def test_round_trip_survives_json(self, fault):
        payload = json.loads(json.dumps(fault.to_dict()))
        assert fault_from_dict(payload) == fault

    def test_every_registered_schedule_round_trips(self):
        # The curated registry bundles must round-trip too — they are what
        # fuzz artifacts and cache metadata actually embed.
        covered = set()
        for definition in FAULTS:
            for fault in definition.faults:
                assert fault_from_dict(fault.to_dict()) == fault
                covered.add(fault.kind)
        assert covered == set(FAULT_KINDS)  # the registry exercises every kind


# --------------------------------------------------------------------- #
# Schedule canonical-order preservation
# --------------------------------------------------------------------- #
finite_time = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def records(draw, packet_id):
    arrival = draw(finite_time)
    hop = HopTiming(
        node=draw(st.sampled_from(("sw0", "sw1", "edge-a"))),
        arrival_time=arrival,
        start_service_time=arrival + draw(finite_time),
        departure_time=arrival + draw(finite_time),
    )
    return PacketRecord(
        packet_id=packet_id,
        flow_id=draw(st.integers(min_value=0, max_value=100)),
        src="h0",
        dst="h1",
        size_bytes=draw(st.floats(min_value=40.0, max_value=9000.0, allow_nan=False)),
        ingress_time=draw(finite_time),
        output_time=draw(finite_time),
        path=[hop.node, "h1"],
        hops=[hop],
    )


@st.composite
def schedules(draw):
    ids = draw(
        st.lists(st.integers(min_value=0, max_value=2**20), unique=True, max_size=10)
    )
    return Schedule([draw(records(packet_id)) for packet_id in ids])


class TestSchedulePersistenceOrder:
    @RELAXED
    @given(schedule=schedules(), compressed=st.booleans())
    def test_save_load_preserves_canonical_order(self, schedule, compressed):
        suffix = ".jsonl.gz" if compressed else ".jsonl"
        handle = tempfile.NamedTemporaryFile(suffix=suffix, delete=False)
        handle.close()
        try:
            save_schedule(handle.name, schedule, meta={"test": True})
            loaded, meta = load_schedule(handle.name)
        finally:
            os.unlink(handle.name)
        assert meta["test"] is True
        original_order = [
            (record.ingress_time, record.packet_id)
            for record in schedule.canonical_records()
        ]
        loaded_order = [
            (record.ingress_time, record.packet_id)
            for record in loaded.canonical_records()
        ]
        assert loaded_order == original_order
        assert loaded_order == sorted(loaded_order)
        # And the records themselves are lossless, not just ordered.
        for record in schedule.canonical_records():
            assert loaded.record(record.packet_id).to_dict() == record.to_dict()
