"""Tests for the analysis layer: FCT buckets, delay statistics, fairness index."""

import pytest

from repro.analysis import (
    FairnessTimeseries,
    delay_ccdf,
    delay_statistics,
    fairness_timeseries,
    fct_by_flow_size,
    mean_fct,
    normalized_fct,
    packet_delays,
    per_flow_throughput,
    queueing_delays,
)
from repro.sim.flow import Flow
from repro.sim.packet import Packet, PacketType


def delivered_packet(flow_id=1, ingress=0.0, egress=1.0, size=1000, ptype=PacketType.DATA):
    packet = Packet(flow_id=flow_id, src="a", dst="b", size_bytes=size, ptype=ptype)
    packet.ingress_time = ingress
    packet.egress_time = egress
    return packet


def completed_flow(size, fct, start=0.0):
    flow = Flow(src="a", dst="b", size_bytes=size, start_time=start)
    flow.completion_time = start + fct
    return flow


class TestFct:
    def test_mean_fct_over_completed_flows_only(self):
        flows = [completed_flow(1000, 0.2), completed_flow(1000, 0.4),
                 Flow(src="a", dst="b", size_bytes=1000, start_time=0.0)]
        assert mean_fct(flows) == pytest.approx(0.3)

    def test_mean_fct_none_when_nothing_completed(self):
        assert mean_fct([Flow(src="a", dst="b", size_bytes=1, start_time=0)]) is None

    def test_bucketing_by_flow_size(self):
        flows = [
            completed_flow(1000, 0.1),
            completed_flow(1500, 0.2),
            completed_flow(50000, 1.0),
        ]
        buckets = fct_by_flow_size(flows, bucket_edges=[1460, 10000])
        assert buckets[0].count == 1 and buckets[0].mean_fct == pytest.approx(0.1)
        assert buckets[1].count == 1 and buckets[1].mean_fct == pytest.approx(0.2)
        assert buckets[2].count == 1 and buckets[2].mean_fct == pytest.approx(1.0)
        assert buckets[2].label.startswith(">")

    def test_bucket_edges_must_be_sorted(self):
        with pytest.raises(ValueError):
            fct_by_flow_size([], bucket_edges=[100, 10])

    def test_normalized_fct(self):
        flows = [completed_flow(1000, 0.5)]
        assert normalized_fct(flows, reference_fct=0.25) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            normalized_fct(flows, reference_fct=0.0)


class TestDelay:
    def test_packet_delays_exclude_acks_by_default(self):
        packets = [
            delivered_packet(egress=1.0),
            delivered_packet(egress=2.0, ptype=PacketType.ACK),
        ]
        assert packet_delays(packets) == [1.0]
        assert len(packet_delays(packets, data_only=False)) == 2

    def test_delay_statistics_values(self):
        packets = [delivered_packet(egress=float(i)) for i in range(1, 101)]
        stats = delay_statistics(packets)
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.p99 == pytest.approx(99.01, rel=0.01)
        assert stats.maximum == 100.0

    def test_delay_statistics_empty(self):
        stats = delay_statistics([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_ccdf_is_decreasing(self):
        packets = [delivered_packet(egress=float(i)) for i in range(1, 11)]
        xs, ccdf = delay_ccdf(packets)
        assert all(b <= a for a, b in zip(ccdf, ccdf[1:]))

    def test_queueing_delays_sum_hop_waits(self):
        packet = delivered_packet()
        hop = packet.record_arrival("r0", 0.0)
        hop.start_service_time = 0.3
        assert queueing_delays([packet]) == [pytest.approx(0.3)]


class TestFairness:
    def test_equal_flows_give_index_one(self):
        packets = []
        for flow_id in range(4):
            for k in range(10):
                packets.append(delivered_packet(flow_id=flow_id, egress=0.05 + k * 0.01))
        series = fairness_timeseries(packets, bin_width=0.05, end_time=0.2,
                                     flow_ids=list(range(4)))
        assert isinstance(series, FairnessTimeseries)
        # Bins where all four flows delivered equally must have index 1.
        assert max(series.index) == pytest.approx(1.0)

    def test_single_active_flow_gives_one_over_n(self):
        packets = [delivered_packet(flow_id=0, egress=0.01 * k) for k in range(1, 10)]
        series = fairness_timeseries(packets, bin_width=0.05, end_time=0.1,
                                     flow_ids=[0, 1, 2, 3])
        assert series.index[0] == pytest.approx(0.25)

    def test_time_to_reach_and_final_index(self):
        series = FairnessTimeseries(bin_width=0.1, times=[0.1, 0.2, 0.3], index=[0.5, 0.92, 0.99])
        assert series.time_to_reach(0.9) == pytest.approx(0.2)
        assert series.time_to_reach(0.999) is None
        assert series.final_index() == pytest.approx(0.99)

    def test_acks_do_not_count_towards_throughput(self):
        packets = [
            delivered_packet(flow_id=0, egress=0.01),
            delivered_packet(flow_id=1, egress=0.01, ptype=PacketType.ACK),
        ]
        throughput = per_flow_throughput(packets, duration=1.0, flow_ids=[0, 1])
        assert throughput[0] > 0
        assert throughput[1] == 0.0

    def test_per_flow_throughput_units(self):
        packets = [delivered_packet(flow_id=0, egress=0.5, size=1250)]
        throughput = per_flow_throughput(packets, duration=2.0)
        assert throughput[0] == pytest.approx(1250 * 8 / 2.0)

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ValueError):
            fairness_timeseries([], bin_width=0.0, end_time=1.0)
