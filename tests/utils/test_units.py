"""Tests for unit conversions."""

import pytest

from repro.utils import units


def test_bandwidth_helpers_scale_correctly():
    assert units.kbps(1) == 1e3
    assert units.mbps(1) == 1e6
    assert units.gbps(1) == 1e9
    assert units.gbps(10) == 10e9


def test_time_helpers_scale_correctly():
    assert units.milliseconds(1) == pytest.approx(1e-3)
    assert units.microseconds(1) == pytest.approx(1e-6)
    assert units.milliseconds(2.5) == pytest.approx(2.5e-3)


def test_bits_and_bytes_roundtrip():
    assert units.bits(1500) == 12000
    assert units.bytes_from_bits(units.bits(1500)) == 1500


def test_transmission_delay_of_full_packet_on_gigabit():
    # 1500 bytes on 1 Gbps = 12 microseconds (the paper's T for its default setup).
    delay = units.transmission_delay(1500, units.gbps(1))
    assert delay == pytest.approx(12e-6)


def test_transmission_delay_scales_inversely_with_bandwidth():
    slow = units.transmission_delay(1460, units.mbps(10))
    fast = units.transmission_delay(1460, units.mbps(100))
    assert slow == pytest.approx(10 * fast)


def test_transmission_delay_zero_size_is_zero():
    assert units.transmission_delay(0, units.gbps(1)) == 0.0


def test_transmission_delay_rejects_bad_inputs():
    with pytest.raises(ValueError):
        units.transmission_delay(1500, 0)
    with pytest.raises(ValueError):
        units.transmission_delay(-1, units.gbps(1))
