"""Tests for the seeded random source."""

import pytest

from repro.utils.rng import RandomState, spawn_rng


def test_same_seed_reproduces_sequence():
    a = RandomState(7)
    b = RandomState(7)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_diverge():
    a = RandomState(7)
    b = RandomState(8)
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_exponential_mean_is_close():
    rng = RandomState(1)
    samples = [rng.exponential(2.0) for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.05)


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        RandomState(1).exponential(0.0)


def test_pareto_respects_scale_floor():
    rng = RandomState(2)
    samples = [rng.pareto(1.5, 100.0) for _ in range(1000)]
    assert min(samples) >= 100.0


def test_randint_bounds():
    rng = RandomState(3)
    values = {rng.randint(0, 4) for _ in range(200)}
    assert values == {0, 1, 2, 3}


def test_choice_picks_from_sequence():
    rng = RandomState(4)
    items = ["a", "b", "c"]
    assert all(rng.choice(items) in items for _ in range(50))


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        RandomState(5).choice([])


def test_spawn_produces_independent_streams():
    parent = RandomState(6)
    child1 = parent.spawn()
    child2 = parent.spawn()
    assert [child1.uniform() for _ in range(3)] != [child2.uniform() for _ in range(3)]


def test_spawn_rng_default():
    fresh = spawn_rng(None, default_seed=9)
    assert isinstance(fresh, RandomState)
    assert fresh.seed == 9
    existing = RandomState(1)
    assert spawn_rng(existing) is existing


def test_shuffle_permutes_in_place():
    rng = RandomState(10)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items
