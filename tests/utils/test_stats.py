"""Tests for the statistics helpers."""

import math

import pytest

from repro.utils.stats import (
    OnlineStats,
    ccdf_points,
    cdf_points,
    jain_fairness_index,
    percentile,
    summarize,
    weighted_mean,
)


class TestSummarize:
    def test_mean_stddev_and_ci(self):
        # Samples 1..5: mean 3, sample stddev sqrt(2.5), t(4 df) = 2.776.
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert summary.stddev == pytest.approx(math.sqrt(2.5))
        assert summary.ci95 == pytest.approx(2.776 * math.sqrt(2.5) / math.sqrt(5))
        low, high = summary.interval
        assert low == pytest.approx(summary.mean - summary.ci95)
        assert high == pytest.approx(summary.mean + summary.ci95)

    def test_single_sample_has_zero_spread(self):
        summary = summarize([7.0])
        assert (summary.count, summary.mean) == (1, 7.0)
        assert summary.stddev == 0.0
        assert summary.ci95 == 0.0

    def test_identical_samples_have_zero_ci(self):
        summary = summarize([2.0, 2.0, 2.0])
        assert summary.mean == 2.0
        assert summary.ci95 == 0.0

    def test_large_samples_use_normal_approximation(self):
        values = [float(i % 7) for i in range(100)]
        summary = summarize(values)
        assert summary.ci95 == pytest.approx(1.96 * summary.stddev / 10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestOnlineStats:
    def test_mean_and_variance_match_direct_computation(self):
        values = [1.0, 2.0, 2.0, 5.0, 10.0]
        stats = OnlineStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(variance)
        assert stats.stddev == pytest.approx(math.sqrt(variance))

    def test_min_max_tracked(self):
        stats = OnlineStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0

    def test_empty_stats_are_zero(self):
        stats = OnlineStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_merge_equals_combined_stream(self):
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        a = [1.0, 4.0, 9.0]
        b = [2.0, 2.0, 8.0, 16.0]
        left.extend(a)
        right.extend(b)
        combined.extend(a + b)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_fairness_index([5.0] * 10) == pytest.approx(1.0)

    def test_single_user_hogging_gives_one_over_n(self):
        allocations = [0.0] * 9 + [100.0]
        assert jain_fairness_index(allocations) == pytest.approx(0.1)

    def test_empty_or_zero_allocations(self):
        assert jain_fairness_index([]) == 0.0
        assert jain_fairness_index([0.0, 0.0]) == 0.0

    def test_index_is_scale_invariant(self):
        allocations = [1.0, 2.0, 3.0, 4.0]
        assert jain_fairness_index(allocations) == pytest.approx(
            jain_fairness_index([10 * a for a in allocations])
        )


class TestPercentileAndMeans:
    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)
        with pytest.raises(ValueError):
            percentile([1, 2], -0.5)
        with pytest.raises(ValueError):
            percentile([], 50)

    # Pinned edge behavior: the QuantileSketch ε contract is stated relative
    # to this function, so these edges are part of the public contract
    # (docs/scale.md).
    def test_percentile_empty_raises_for_every_q(self):
        for q in (0, 50, 100):
            with pytest.raises(ValueError):
                percentile([], q)

    def test_percentile_q0_is_exact_min(self):
        values = [3.1, 0.2, 7.7, 0.2000000001]
        assert percentile(values, 0) == min(values)

    def test_percentile_q100_is_exact_max(self):
        values = [3.1, 0.2, 7.7, 7.6999999999]
        assert percentile(values, 100) == max(values)

    def test_percentile_single_element_for_every_q(self):
        for q in (0, 1, 50, 99, 100):
            assert percentile([42.5], q) == 42.5

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 3.0]) == pytest.approx(2.5)

    def test_weighted_mean_validates_lengths(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])


class TestCdf:
    def test_cdf_points_are_monotone_and_end_at_one(self):
        xs, cdf = cdf_points([3.0, 1.0, 2.0, 2.0])
        assert xs == sorted(xs)
        assert cdf[-1] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))

    def test_ccdf_is_complement(self):
        values = [1.0, 2.0, 3.0, 4.0]
        xs, cdf = cdf_points(values)
        xs2, ccdf = ccdf_points(values)
        assert xs == xs2
        for c, cc in zip(cdf, ccdf):
            assert c + cc == pytest.approx(1.0)

    def test_empty_input(self):
        assert cdf_points([]) == ([], [])
