"""Property suite for the mergeable quantile sketch.

Two contracts, both documented on :class:`repro.utils.stats.QuantileSketch`
and relied on by the scale tier (docs/scale.md):

* **merge order-insensitivity** — ``merge(a, b)``, ``merge(b, a)``, and a
  single pass over the concatenated stream are *bit-identical* (per-bin
  integer addition is exactly commutative/associative), so the shard
  runner's partials merge to the same row no matter which worker computed
  which shard;
* **ε accuracy** — for quantile ``q`` of ``n`` samples with bracketing
  order statistics ``x_lo <= x_hi`` around rank ``q/100 * (n-1)``, the
  sketch returns ``v`` with ``x_lo*(1-α) <= v <= x_hi*(1+α)``.  The exact
  :func:`repro.utils.stats.percentile` (linear interpolation) always lies
  in ``[x_lo, x_hi]``, so the property is checked against that interval —
  sound even on heavy-tail inputs where ``x_lo`` and ``x_hi`` are orders of
  magnitude apart and a naive ``approx(percentile)`` assertion would be
  wrong.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import QuantileSketch, percentile

#: Finite, non-degenerate floats spanning the heavy-tail range the delay
#: distributions actually produce (microseconds to kiloseconds).
_sample = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
_samples = st.lists(_sample, min_size=1, max_size=200)


def _bracketing_order_statistics(values, q):
    """The order statistics bracketing numpy's rank ``q/100 * (n-1)``."""
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    lo = ordered[int(math.floor(rank))]
    hi = ordered[int(math.ceil(rank))]
    return lo, hi


def _assert_within_epsilon(sketch: QuantileSketch, values, q):
    lo, hi = _bracketing_order_statistics(values, q)
    value = sketch.quantile(q)
    alpha = sketch.alpha
    assert lo * (1 - alpha) - 1e-300 <= value <= hi * (1 + alpha) + 1e-300, (
        f"q={q}: sketch {value} outside [{lo * (1 - alpha)}, {hi * (1 + alpha)}] "
        f"(order statistics [{lo}, {hi}], alpha={alpha})"
    )
    # The exact percentile lies in [lo, hi] too — the shared interval is
    # what makes the two comparable on heavy-tail gaps.
    assert lo <= percentile(values, q) <= hi


class TestMergeOrderInsensitivity:
    @given(a=_samples, b=_samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_commutes_and_equals_single_pass(self, a, b):
        left, right, single = QuantileSketch(), QuantileSketch(), QuantileSketch()
        left.extend(a)
        right.extend(b)
        single.extend(a + b)
        ab = left.merge(right)
        ba = right.merge(left)
        # Bin counts are integers: identity is exact, not approximate.
        assert ab.to_dict()["bins"] == ba.to_dict()["bins"] == single.to_dict()["bins"]
        assert ab.count == ba.count == single.count == len(a) + len(b)
        assert ab.minimum == ba.minimum == single.minimum == min(a + b)
        assert ab.maximum == ba.maximum == single.maximum == max(a + b)
        for q in (0, 50, 99, 100):
            assert ab.quantile(q) == ba.quantile(q) == single.quantile(q)

    @given(chunks=st.lists(_samples, min_size=2, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative_over_many_shards(self, chunks):
        flat = [value for chunk in chunks for value in chunk]
        single = QuantileSketch()
        single.extend(flat)
        left_fold = QuantileSketch()
        for chunk in chunks:
            partial = QuantileSketch()
            partial.extend(chunk)
            left_fold = left_fold.merge(partial)
        right_fold = QuantileSketch()
        for chunk in reversed(chunks):
            partial = QuantileSketch()
            partial.extend(chunk)
            right_fold = partial.merge(right_fold)
        assert (
            left_fold.to_dict()["bins"]
            == right_fold.to_dict()["bins"]
            == single.to_dict()["bins"]
        )
        assert left_fold.quantile(99) == right_fold.quantile(99) == single.quantile(99)


class TestEpsilonAccuracy:
    @given(values=_samples)
    @settings(max_examples=100, deadline=None)
    def test_p50_p99_within_documented_epsilon(self, values):
        sketch = QuantileSketch()
        sketch.extend(values)
        for q in (50, 99):
            _assert_within_epsilon(sketch, values, q)

    @given(
        values=st.lists(
            st.sampled_from([1e-6, 1e-3, 1.0, 1e3, 1e6, 1e9]), min_size=2, max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_heavy_tail_inputs(self, values):
        """Adjacent order statistics orders of magnitude apart stay in bound."""
        sketch = QuantileSketch()
        sketch.extend(values)
        for q in (50, 99):
            _assert_within_epsilon(sketch, values, q)

    @given(value=_sample, n=st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_constant_inputs_are_alpha_exact(self, value, n):
        sketch = QuantileSketch()
        sketch.extend([value] * n)
        for q in (0, 50, 99, 100):
            assert sketch.quantile(q) == pytest.approx(value, rel=sketch.alpha)
        assert sketch.quantile(0) == value
        assert sketch.quantile(100) == value

    @given(values=st.lists(_sample, min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_tiny_n(self, values):
        sketch = QuantileSketch()
        sketch.extend(values)
        for q in (50, 99):
            _assert_within_epsilon(sketch, values, q)
        assert sketch.quantile(0) == min(values)
        assert sketch.quantile(100) == max(values)


class TestSketchBasics:
    def test_empty_and_bad_q_mirror_percentile_edges(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.quantile(50)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(101)
        with pytest.raises(ValueError):
            sketch.quantile(-1)

    def test_zero_and_negative_samples(self):
        sketch = QuantileSketch()
        sketch.extend([-2.0, 0.0, 0.0, 3.0])
        assert sketch.count == 4
        assert sketch.minimum == -2.0
        assert sketch.maximum == 3.0
        assert sketch.quantile(50) == 0.0
        assert sketch.quantile(0) == -2.0
        # The most negative quantile lands in the negative bins.
        assert sketch.quantile(1) == pytest.approx(-2.0, rel=sketch.alpha)

    def test_exact_tracked_aggregates(self):
        values = [0.5, 1.5, 2.5, 10.0]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.total == sum(values)
        assert sketch.mean == sum(values) / len(values)

    def test_roundtrip_to_dict(self):
        sketch = QuantileSketch()
        sketch.extend([1e-6, 0.0, -3.0, 42.0, 42.0])
        loaded = QuantileSketch.from_dict(sketch.to_dict())
        assert loaded.to_dict() == sketch.to_dict()
        for q in (0, 50, 99, 100):
            assert loaded.quantile(q) == sketch.quantile(q)

    def test_roundtrip_empty(self):
        sketch = QuantileSketch()
        loaded = QuantileSketch.from_dict(sketch.to_dict())
        assert loaded.count == 0
        assert loaded.to_dict() == sketch.to_dict()

    def test_alpha_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(alpha=1.0)
