"""``tools/build_compiled.py``: build orchestration and the import probe."""

import importlib.util
import os
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent.parent


@pytest.fixture()
def build_tool():
    """Import tools/build_compiled.py as a throwaway module."""
    spec = importlib.util.spec_from_file_location(
        "build_compiled_under_test", REPO_ROOT / "tools" / "build_compiled.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class _Result:
    def __init__(self, returncode):
        self.returncode = returncode


class TestBuildCompiled:
    def test_build_and_probe_success(self, build_tool, monkeypatch):
        calls = []

        def fake_run(cmd, **kwargs):
            calls.append((list(cmd), kwargs))
            return _Result(0)

        monkeypatch.setattr(build_tool.subprocess, "run", fake_run)
        assert build_tool.main() == 0
        assert len(calls) == 2
        build_cmd, build_kwargs = calls[0]
        assert build_cmd[1:] == ["setup.py", "build_ext", "--inplace"]
        assert build_kwargs["cwd"] == build_tool.REPO_ROOT
        probe_cmd, probe_kwargs = calls[1]
        assert "kernel_build_info" in probe_cmd[2]
        # The probe must see src/ first so it imports the in-tree package.
        pythonpath = probe_kwargs["env"]["PYTHONPATH"]
        assert pythonpath.split(os.pathsep)[0] == os.path.join(
            build_tool.REPO_ROOT, "src"
        )

    def test_build_failure_exits_1_without_probing(
        self, build_tool, monkeypatch, capsys
    ):
        calls = []

        def fake_run(cmd, **kwargs):
            calls.append(cmd)
            return _Result(1)

        monkeypatch.setattr(build_tool.subprocess, "run", fake_run)
        assert build_tool.main() == 1
        assert len(calls) == 1  # the import probe never ran
        err = capsys.readouterr().err
        assert "build_ext failed" in err
        assert "decline" in err

    def test_probe_failure_propagates_its_exit_code(self, build_tool, monkeypatch):
        results = iter([_Result(0), _Result(3)])

        def fake_run(cmd, **kwargs):
            return next(results)

        monkeypatch.setattr(build_tool.subprocess, "run", fake_run)
        assert build_tool.main() == 3

    @pytest.mark.skipif(
        not (REPO_ROOT / "src" / "repro" / "sim").exists(),
        reason="source tree layout changed",
    )
    def test_real_probe_succeeds_when_kernel_is_built(self, build_tool):
        # Only meaningful where the extension has actually been built.
        import glob

        built = glob.glob(
            str(REPO_ROOT / "src" / "repro" / "sim" / "_kernel*.so")
        )
        if not built:
            pytest.skip("compiled kernel not built in this environment")
        import subprocess

        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.sim.compiled import kernel_build_info; "
                "kernel_build_info()",
            ],
            env={
                **os.environ,
                "PYTHONPATH": str(REPO_ROOT / "src")
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
            capture_output=True,
        )
        assert probe.returncode == 0, probe.stderr.decode()
