"""Tests for the docs CI gates (link checker + docstring-presence checker).

These keep ``tools/check_docs.py`` and ``tools/check_docstrings.py`` honest:
the committed documentation must pass both, and each gate must actually
fail when given an offender (a gate that cannot fail guards nothing).
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent.parent
TOOLS = REPO_ROOT / "tools"


def run_tool(script, *args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(TOOLS / script), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


class TestDocsLinkGate:
    def test_committed_docs_pass(self):
        result = run_tool("check_docs.py")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "README.md" not in result.stdout  # no offenders listed

    def test_docs_directory_is_covered(self):
        result = run_tool("check_docs.py")
        # README + architecture + backends + cli + diff + experiments
        # + slack-policies + faults + scale.
        assert "9 file(s)" in result.stdout

    def test_broken_relative_link_fails(self, tmp_path):
        offender = tmp_path / "bad.md"
        offender.write_text("see [missing](does-not-exist.md)\n")
        result = run_tool("check_docs.py", str(offender))
        assert result.returncode == 1
        assert "does-not-exist.md" in result.stdout

    def test_external_links_and_anchors_are_skipped(self, tmp_path):
        page = tmp_path / "ok.md"
        page.write_text(
            "[web](https://example.com) [mail](mailto:a@b.c) [anchor](#here)\n"
        )
        result = run_tool("check_docs.py", str(page))
        assert result.returncode == 0, result.stdout


class TestDocstringGate:
    def test_documented_packages_pass(self):
        result = run_tool("check_docstrings.py")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_default_coverage_includes_traffic_and_experiments(self):
        """The gate's default module set was widened to repro.traffic and
        repro.experiments; CI relies on the default, so the default must
        keep covering them."""
        result = run_tool("check_docstrings.py")
        assert "repro.traffic" in result.stdout
        assert "repro.experiments" in result.stdout
        assert "repro.diff" in result.stdout

    def test_missing_docstring_fails(self, tmp_path):
        package = tmp_path / "fakepkg"
        package.mkdir()
        (package / "__init__.py").write_text(
            '"""A package."""\n\ndef undocumented():\n    return 1\n'
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(tmp_path) + os.pathsep + str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, str(TOOLS / "check_docstrings.py"), "fakepkg"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 1
        assert "fakepkg.undocumented" in result.stdout
