"""First-divergence comparator: walk order, field diffs, port context."""

import json

from repro.core.schedule import HopTiming, PacketRecord, Schedule
from repro.diff import FieldDiff, first_divergence
from repro.experiments import ExperimentScale
from repro.pipeline import Scenario
from repro.pipeline.experiment import record_scenario_schedule

SMOKE = ExperimentScale.smoke()


def make_record(
    packet_id,
    ingress,
    hops,
    flow_id=1,
    size=1000.0,
    output=None,
):
    """A two-ish-hop record; ``hops`` is [(node, arrival, start, depart), ...]."""
    timings = [
        HopTiming(node=node, arrival_time=arr, start_service_time=start, departure_time=dep)
        for node, arr, start, dep in hops
    ]
    return PacketRecord(
        packet_id=packet_id,
        flow_id=flow_id,
        src="h0",
        dst="h1",
        size_bytes=size,
        ingress_time=ingress,
        output_time=output if output is not None else timings[-1].departure_time + 1e-3,
        path=[t.node for t in timings] + ["h1"],
        hops=timings,
    )


def two_hop_schedule():
    """Four packets through sw0 then sw1, staggered service times."""
    records = []
    for i in range(4):
        base = 0.01 * i
        records.append(
            make_record(
                packet_id=i,
                ingress=base,
                hops=[
                    ("sw0", base, base + 0.001, base + 0.002),
                    ("sw1", base + 0.003, base + 0.004, base + 0.005),
                ],
            )
        )
    return Schedule(records)


def perturbed(schedule, packet_id, attr="departure_time", hop=1, delta=1e-6):
    """A deep-ish copy of ``schedule`` with one hop field nudged."""
    records = []
    for record in schedule.canonical_records():
        hops = [
            HopTiming(h.node, h.arrival_time, h.start_service_time, h.departure_time)
            for h in record.hops
        ]
        rec = PacketRecord(
            packet_id=record.packet_id,
            flow_id=record.flow_id,
            src=record.src,
            dst=record.dst,
            size_bytes=record.size_bytes,
            ingress_time=record.ingress_time,
            output_time=record.output_time,
            path=list(record.path),
            hops=hops,
            flow_size_bytes=record.flow_size_bytes,
            deadline=record.deadline,
        )
        if record.packet_id == packet_id:
            setattr(hops[hop], attr, getattr(hops[hop], attr) + delta)
        records.append(rec)
    return Schedule(records)


class TestFirstDivergence:
    def test_identical_schedules_match(self):
        schedule = two_hop_schedule()
        assert first_divergence(schedule, two_hop_schedule()) is None

    def test_halts_at_first_divergent_packet_with_field_diff(self):
        # Pinned acceptance behavior: a perturbed copy diverges at exactly
        # the perturbed packet, naming the field and the delta.
        a = two_hop_schedule()
        b = perturbed(a, packet_id=2, attr="departure_time", hop=1, delta=1e-6)
        divergence = first_divergence(a, b)
        assert divergence is not None
        assert divergence.packet_id == 2
        assert divergence.kind == "fields"
        [diff] = divergence.fields
        assert diff.field == "hops[1].departure_time"
        assert abs((diff.b - diff.a) - 1e-6) < 1e-12

    def test_first_divergence_wins_in_canonical_order(self):
        # Perturb packets 1 and 3: only the canonically-earlier one is
        # reported; the cascade is deliberately silent.
        a = two_hop_schedule()
        b = perturbed(perturbed(a, packet_id=3), packet_id=1)
        divergence = first_divergence(a, b)
        assert divergence.packet_id == 1

    def test_walk_orders_by_ingress_time_not_packet_id(self):
        # Packet 9 enters before packet 5; a divergence on 9 must win.
        early = make_record(9, 0.0, [("sw0", 0.0, 0.001, 0.002)])
        late = make_record(5, 1.0, [("sw0", 1.0, 1.001, 1.002)])
        a = Schedule([late, early])
        b_early = make_record(9, 0.0, [("sw0", 0.0, 0.001, 0.0025)])
        b_late = make_record(5, 1.0, [("sw0", 1.0, 1.001, 1.0025)])
        b = Schedule([b_late, b_early])
        divergence = first_divergence(a, b)
        assert divergence.packet_id == 9
        assert divergence.index == 0

    def test_missing_packet_is_a_divergence(self):
        a = two_hop_schedule()
        b = Schedule([r for r in a.canonical_records() if r.packet_id != 1])
        divergence = first_divergence(a, b)
        assert divergence.packet_id == 1
        assert divergence.kind == "missing"
        assert divergence.missing_in == "b"
        assert divergence.packets_a == 4 and divergence.packets_b == 3
        assert "missing" in divergence.format()

    def test_identity_fields_lead_the_diff(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=0, attr="departure_time", hop=0)
        rec = b.record(0)
        rec.size_bytes += 100.0
        divergence = first_divergence(a, b)
        assert divergence.fields[0].field == "size_bytes"

    def test_divergent_port_names_the_divergent_hops_node(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=2, hop=0)
        assert first_divergence(a, b).port == "sw0"
        b = perturbed(a, packet_id=2, hop=1)
        assert first_divergence(a, b).port == "sw1"

    def test_port_context_precedes_divergence_in_service_order(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=2, hop=1)
        divergence = first_divergence(a, b, context=8)
        # Packets 0 and 1 were served at sw1 before packet 2; packet 3 not.
        assert [n.packet_id for n in divergence.context_a] == [0, 1]
        assert [n.packet_id for n in divergence.context_b] == [0, 1]
        assert divergence.context_a[0].start_service_time is not None

    def test_context_is_capped(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=3, hop=1)
        divergence = first_divergence(a, b, context=2)
        assert len(divergence.context_a) == 2
        assert [n.packet_id for n in divergence.context_a] == [1, 2]

    def test_tolerance_suppresses_small_float_deltas(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=2, delta=1e-9)
        assert first_divergence(a, b, tolerance=1e-6) is None
        assert first_divergence(a, b, tolerance=0.0) is not None

    def test_to_dict_is_json_serializable(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=2)
        payload = json.loads(json.dumps(first_divergence(a, b).to_dict()))
        assert payload["packet_id"] == 2
        assert payload["fields"][0]["field"] == "hops[1].departure_time"

    def test_format_names_packet_field_and_port(self):
        a = two_hop_schedule()
        b = perturbed(a, packet_id=2, hop=1)
        report = first_divergence(a, b, label_a="left", label_b="right").format()
        assert "packet 2" in report
        assert "hops[1].departure_time" in report
        assert "divergent port: sw1" in report
        assert "'left'" in report and "'right'" in report

    def test_field_diff_describe_shows_delta(self):
        diff = FieldDiff("output_time", 1.0, 1.5)
        assert "delta=+5.000e-01" in diff.describe()


class TestRealScheduleDivergence:
    def test_perturbed_recording_diverges_at_the_perturbed_packet(self):
        # End-to-end acceptance pin: record a real smoke scenario, nudge one
        # hop timing, and the comparator must halt exactly there.
        from repro.sim import reset_flow_ids, reset_packet_ids

        scenario = Scenario(name="diff-accept", scale=SMOKE, utilization=0.5)
        a = record_scenario_schedule(scenario)
        reset_packet_ids()
        reset_flow_ids()
        b = record_scenario_schedule(scenario)
        assert first_divergence(a, b) is None  # recording is deterministic
        victim = b.canonical_records()[len(b) // 2]
        victim.hops[0].departure_time += 5e-7
        divergence = first_divergence(a, b)
        assert divergence is not None
        assert divergence.packet_id == victim.packet_id
        assert divergence.fields[0].field == "hops[0].departure_time"
        assert divergence.port == victim.hops[0].node
