"""Differential fuzz harness: synthesis, shrinking, artifacts, CLI."""

import dataclasses
import json

import pytest

from repro.__main__ import main as cli_main
from repro.diff import (
    ComparisonSpec,
    Divergence,
    FuzzFailure,
    load_case,
    run_comparison,
    run_fuzz,
    write_artifact,
)
from repro.diff import fuzz as fuzz_module
from repro.diff.fuzz import LIVE_TWIN_POLICIES, case_plan, shrink_case
from repro.pipeline.synth import (
    random_scenario,
    scenario_from_dict,
    scenario_to_dict,
    simplified,
)


def fake_divergence(packet_id=7):
    return Divergence(packet_id=packet_id, flow_id=1, index=0, kind="fields")


class TestScenarioSynthesis:
    def test_same_seed_and_index_is_identical(self):
        assert random_scenario(1, 5) == random_scenario(1, 5)

    def test_different_index_differs(self):
        stream = [random_scenario(1, i) for i in range(10)]
        assert len(set(stream)) == 10

    def test_dict_round_trip_is_lossless(self):
        for index in range(12):
            scenario = random_scenario(3, index)
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_dict_form_is_json_serializable(self):
        payload = json.dumps(scenario_to_dict(random_scenario(1, 0)))
        assert scenario_from_dict(json.loads(payload)) == random_scenario(1, 0)

    def test_simplified_candidates_shrink_one_dimension_each(self):
        scenario = dataclasses.replace(
            random_scenario(1, 0),
            faults="loss-1pct",
            slack_policy="zero",
            replay_mode="lstf",
            workload_name="incast-burst",
            topology="fattree",
            utilization=0.9,
            original="fq",
        )
        descriptions = [description for description, _ in simplified(scenario)]
        assert "drop fault plan" in descriptions
        assert "drop slack policy" in descriptions
        assert "plain workload" in descriptions
        assert "internet2 topology" in descriptions
        assert "fifo original" in descriptions
        for _, candidate in simplified(scenario):
            assert candidate != scenario

    def test_fully_minimal_scenario_has_no_candidates(self):
        scenario = dataclasses.replace(
            random_scenario(1, 0),
            faults=None,
            fault_seed=0,
            slack_policy=None,
            workload_name="paper-default",
            topology="internet2",
            topology_args=(),
            duration_scale=0.25,
            utilization=0.5,
            original="fifo",
        )
        assert simplified(scenario) == []


class TestCasePlan:
    def test_live_twin_every_fourth_case(self):
        scenario, specs = case_plan(1, 3, ["python", "vectorized"])
        assert [spec.kind for spec in specs] == ["live-replay"]
        assert scenario.slack_policy in LIVE_TWIN_POLICIES
        assert scenario.replay_mode == "lstf"
        assert scenario.faults is None

    def test_backend_cases_pair_reference_with_each_backend(self):
        _, specs = case_plan(1, 0, ["python", "vectorized", "compiled"])
        assert specs[0].kind == "twin"
        assert [(s.backend_a, s.backend_b) for s in specs[1:]] == [
            ("python", "vectorized"),
            ("python", "compiled"),
        ]

    def test_live_replay_spec_requires_stateless_policy(self):
        scenario, _ = case_plan(1, 0, ["python"])  # no policy coercion
        scenario = dataclasses.replace(scenario, slack_policy=None)
        with pytest.raises(ValueError, match="stateless policy"):
            run_comparison(scenario, ComparisonSpec("live-replay"))


class TestArtifacts:
    def test_write_and_load_round_trip(self, tmp_path):
        scenario, [spec] = case_plan(5, 3, ["python"])
        failure = FuzzFailure(
            index=3,
            scenario=scenario,
            comparison=spec,
            divergence=fake_divergence(),
            shrink_steps=["drop fault plan"],
        )
        path = write_artifact(str(tmp_path), 5, failure)
        assert path.endswith("case-5-3.json")
        loaded_scenario, loaded_spec = load_case(path)
        assert loaded_scenario == scenario
        assert loaded_spec == spec
        payload = json.loads(open(path).read())
        assert payload["format"] == "repro-fuzz-case/1"
        assert payload["divergence"]["packet_id"] == 7

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "notacase.json"
        path.write_text('{"format": "repro-bench/1"}\n')
        with pytest.raises(ValueError, match="not a repro-fuzz-case/1"):
            load_case(str(path))


class TestShrinking:
    def test_shrinks_to_the_dimensions_that_matter(self, monkeypatch):
        # Fake oracle: the divergence "needs" the fault plan and nothing else.
        def oracle(scenario, spec, context=8):
            return fake_divergence() if scenario.faults is not None else None

        monkeypatch.setattr(fuzz_module, "run_comparison", oracle)
        scenario = dataclasses.replace(
            random_scenario(1, 0),
            faults="loss-1pct",
            slack_policy=None,
            workload_name="incast-burst",
            topology="fattree",
            original="fq",
            utilization=0.9,
        )
        minimal, divergence, steps = shrink_case(scenario, ComparisonSpec("twin"))
        assert divergence is not None
        assert minimal.faults == "loss-1pct"  # the load-bearing dimension stays
        assert minimal.workload_name == "paper-default"
        assert minimal.topology == "internet2"
        assert minimal.original == "fifo"
        assert "plain workload" in steps and "fifo original" in steps

    def test_refuses_a_non_diverging_scenario(self, monkeypatch):
        monkeypatch.setattr(fuzz_module, "run_comparison", lambda *a, **k: None)
        with pytest.raises(ValueError, match="does not diverge"):
            shrink_case(random_scenario(1, 0), ComparisonSpec("twin"))

    def test_live_replay_shrink_keeps_the_policy(self, monkeypatch):
        calls = []

        def oracle(scenario, spec, context=8):
            calls.append(scenario)
            return fake_divergence()

        monkeypatch.setattr(fuzz_module, "run_comparison", oracle)
        scenario, [spec] = case_plan(1, 3, ["python"])
        minimal, _, _ = shrink_case(scenario, spec)
        assert minimal.slack_policy in LIVE_TWIN_POLICIES
        assert all(s.slack_policy in LIVE_TWIN_POLICIES for s in calls)


class TestRunFuzz:
    def test_small_real_sweep_is_clean(self):
        # Two real backend-diff cases through every available backend; any
        # divergence here is a genuine contract break.
        report = run_fuzz(budget=2, seed=1, artifact_dir=None)
        assert report.ok
        assert report.cases == 2
        assert report.comparisons >= 2
        assert "no divergence" in report.format()
        json.dumps(report.to_dict())

    def test_failure_path_shrinks_and_persists(self, tmp_path, monkeypatch):
        def oracle(scenario, spec, context=8):
            return fake_divergence() if scenario.name.endswith("-0") else None

        monkeypatch.setattr(fuzz_module, "run_comparison", oracle)
        lines = []
        report = run_fuzz(
            budget=2,
            seed=9,
            artifact_dir=str(tmp_path),
            log=lines.append,
        )
        assert not report.ok
        [failure] = report.failures
        assert failure.index == 0
        assert failure.artifact_path is not None
        scenario, spec = load_case(failure.artifact_path)
        assert scenario == failure.scenario
        assert any("DIVERGENCE" in line for line in lines)
        assert "DIVERGENCE in case 0" in report.format()
        assert report.to_dict()["divergences"] == 1


class TestFuzzCli:
    def test_budget_one_exit_0(self, capsys):
        assert cli_main(["fuzz", "--budget", "1", "--no-artifacts"]) == 0
        out = capsys.readouterr().out
        assert "no divergence" in out

    def test_json_output(self, capsys):
        code = cli_main(["fuzz", "--budget", "1", "--no-artifacts", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-fuzz-report/1"
        assert payload["divergences"] == 0

    def test_bad_budget_exit_2(self, capsys):
        assert cli_main(["fuzz", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err
