"""``python -m repro diff``: sources, exit codes, backends, error paths."""

import gzip
import json

import pytest

from repro.__main__ import main as cli_main
from repro.core.schedule import load_schedule, save_schedule
from repro.sim.backend import available_backend_names


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One smoke schedule file, recorded once for the whole module."""
    path = tmp_path_factory.mktemp("diff") / "sched.jsonl.gz"
    code = cli_main(
        ["record", "I2-1G-10G@70", "--scale", "smoke", "--out", str(path)]
    )
    assert code == 0
    return str(path)


def perturb_file(src, dst):
    """Copy a schedule file with one hop departure nudged; return the victim id."""
    schedule, meta = load_schedule(src)
    victim = schedule.canonical_records()[len(schedule) // 2]
    victim.hops[0].departure_time += 1e-6
    save_schedule(dst, schedule, meta=meta)
    return victim.packet_id


class TestDiffFiles:
    def test_identical_files_match_exit_0(self, recorded, capsys):
        assert cli_main(["diff", recorded, recorded]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_perturbed_file_diverges_exit_1(self, recorded, tmp_path, capsys):
        other = str(tmp_path / "perturbed.jsonl.gz")
        victim = perturb_file(recorded, other)
        assert cli_main(["diff", recorded, other]) == 1
        out = capsys.readouterr().out
        assert f"packet {victim}" in out
        assert "hops[0].departure_time" in out

    def test_json_payload(self, recorded, tmp_path, capsys):
        other = str(tmp_path / "perturbed.jsonl.gz")
        victim = perturb_file(recorded, other)
        assert cli_main(["diff", recorded, other, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["match"] is False
        assert payload["divergence"]["packet_id"] == victim
        assert cli_main(["diff", recorded, recorded, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"match": True, "divergence": None}


class TestDiffReplay:
    def test_replay_bit_clean_across_available_backends(self, recorded, capsys):
        # The acceptance sweep: the recorded schedule must replay
        # bit-identically on every backend this environment can run.
        for backend in available_backend_names():
            code = cli_main(["diff", "--replay", recorded, "--backend", backend])
            out = capsys.readouterr().out
            assert code == 0, f"backend {backend} diverged:\n{out}"
            assert "bit-identical" in out

    def test_replay_default_is_determinism_twin(self, recorded, capsys):
        assert cli_main(["diff", "--replay", recorded]) == 0
        assert "python#2" in capsys.readouterr().out

    def test_replay_other_modes(self, recorded, capsys):
        for mode in ("edf", "fifo", "omniscient"):
            assert cli_main(["diff", "--replay", recorded, "--mode", mode]) == 0
        capsys.readouterr()

    def test_replay_with_slack_policy_and_fault(self, recorded, capsys):
        code = cli_main(
            [
                "diff",
                "--replay",
                recorded,
                "--slack-policy",
                "zero",
                "--fault",
                "loss-1pct",
                "--fault-seed",
                "3",
            ]
        )
        assert code == 0, capsys.readouterr().out


class TestDiffErrors:
    def test_no_source_exit_2(self, capsys):
        assert cli_main(["diff"]) == 2
        assert "exactly one comparison source" in capsys.readouterr().err

    def test_two_sources_exit_2(self, recorded, capsys):
        assert cli_main(["diff", recorded, recorded, "--replay", recorded]) == 2
        assert "exactly one comparison source" in capsys.readouterr().err

    def test_one_positional_exit_2(self, recorded, capsys):
        assert cli_main(["diff", recorded]) == 2
        assert "exactly two schedule files" in capsys.readouterr().err

    def test_missing_file_exit_2(self, recorded, capsys):
        assert cli_main(["diff", recorded, "/nonexistent/x.jsonl.gz"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_truncated_gzip_exit_2(self, recorded, tmp_path, capsys):
        trunc = tmp_path / "trunc.jsonl.gz"
        trunc.write_bytes(open(recorded, "rb").read()[:50])
        assert cli_main(["diff", recorded, str(trunc)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_unknown_mode_exit_2(self, recorded, capsys):
        assert cli_main(["diff", "--replay", recorded, "--mode", "bogus"]) == 2
        assert "unknown replay mode" in capsys.readouterr().err

    def test_unknown_backend_exit_2(self, recorded, capsys):
        assert cli_main(["diff", "--replay", recorded, "--backend", "bogus"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_schedule_without_topology_exit_2(self, recorded, tmp_path, capsys):
        schedule, _ = load_schedule(recorded)
        bare = tmp_path / "bare.jsonl.gz"
        save_schedule(bare, schedule, meta={})
        assert cli_main(["diff", "--replay", str(bare)]) == 2
        assert "no topology spec" in capsys.readouterr().err

    def test_bogus_case_file_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "case.json"
        bad.write_text("{\"format\": \"something-else\"}\n")
        assert cli_main(["diff", "--case", str(bad)]) == 2
        assert "cannot load case" in capsys.readouterr().err


class TestReplayLoadErrors:
    """Satellite: `repro replay` exits 2 cleanly on unreadable schedules."""

    def test_missing_path_exit_2(self, capsys):
        assert cli_main(["replay", "/nonexistent/sched.jsonl.gz"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_truncated_gzip_exit_2(self, recorded, tmp_path, capsys):
        trunc = tmp_path / "trunc.jsonl.gz"
        trunc.write_bytes(open(recorded, "rb").read()[:50])
        assert cli_main(["replay", str(trunc)]) == 2
        err = capsys.readouterr().err
        assert "cannot load" in err and "end-of-stream" in err

    def test_record_missing_field_exit_2(self, recorded, tmp_path, capsys):
        # A structurally valid file whose record lines lack packet_id used
        # to escape as a KeyError traceback.
        broken = tmp_path / "broken.jsonl.gz"
        with gzip.open(recorded, "rt") as handle:
            lines = handle.read().splitlines()
        record = json.loads(lines[1])
        record.pop("packet_id", None)
        with gzip.open(broken, "wt") as handle:
            handle.write(lines[0] + "\n")
            handle.write(json.dumps(record) + "\n")
        assert cli_main(["replay", str(broken)]) == 2
        err = capsys.readouterr().err
        assert "cannot load" in err and "packet_id" in err
