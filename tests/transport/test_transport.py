"""Tests for the UDP and simplified TCP transports."""

import pytest

from repro.schedulers import uniform_factory
from repro.sim import Simulation, Simulator, Tracer
from repro.sim.flow import Flow
from repro.sim.packet import PacketType
from repro.topology import Topology, dumbbell_topology, linear_topology
from repro.transport import start_tcp_flow, start_udp_flow
from repro.utils import mbps


def build_simulation(topo, scheduler="fifo", buffer_bytes=None, seed=0):
    return Simulation(topo, uniform_factory(scheduler), default_buffer_bytes=buffer_bytes, seed=seed)


class TestUdp:
    def test_flow_fully_delivered_and_completion_recorded(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=14600, start_time=0.0)
        start_udp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run()
        assert flow.completed
        assert flow.bytes_delivered == pytest.approx(14600)
        assert flow.packets_delivered == flow.num_packets == 10

    def test_packets_carry_flow_size_and_remaining(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=4380, start_time=0.0)
        start_udp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run()
        delivered = simulation.tracer.delivered_data_packets()
        assert {p.header.flow_size_bytes for p in delivered} == {4380}
        remainings = sorted(p.header.remaining_flow_bytes for p in delivered)
        assert remainings == [1460.0, 2920.0, 4380.0]

    def test_flow_start_time_honoured(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=1460, start_time=0.25)
        start_udp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run()
        delivered = simulation.tracer.delivered_data_packets()
        assert delivered[0].ingress_time >= 0.25

    def test_fct_equals_serialization_plus_latency_on_empty_network(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=14600, start_time=0.0)
        start_udp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run()
        # Ten packets pacing through three equal-speed links: the last packet
        # leaves the source at 10 transmissions and needs 2 more store-and-
        # forward hops.
        per_packet = 1460 * 8 / mbps(10)
        assert flow.fct == pytest.approx(12 * per_packet, rel=1e-6)

    def test_double_start_rejected(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=1460, start_time=0.0)
        source = start_udp_flow(simulation.sim, simulation.network, flow)
        with pytest.raises(RuntimeError):
            source.start()


class TestTcp:
    def test_small_flow_completes_without_losses(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=14600, start_time=0.0)
        sender = start_tcp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run(until=5.0)
        assert flow.completed
        assert sender.completed
        assert flow.retransmissions == 0
        assert flow.bytes_delivered == pytest.approx(14600)

    def test_acks_travel_back_through_network(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=4380, start_time=0.0)
        start_tcp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run(until=5.0)
        acks = [p for p in simulation.tracer.delivered if p.ptype is PacketType.ACK]
        assert len(acks) >= flow.num_packets
        assert all(p.dst == "src0" for p in acks)

    def test_congestion_window_grows_during_slow_start(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=100 * 1460, start_time=0.0)
        sender = start_tcp_flow(simulation.sim, simulation.network, flow)
        initial_cwnd = sender.cwnd
        simulation.sim.run(until=5.0)
        assert sender.cwnd > initial_cwnd

    def test_losses_trigger_retransmissions_and_flow_still_completes(self):
        # A tiny buffer at a slow bottleneck forces drops.
        topo = dumbbell_topology(1, mbps(2), mbps(50))
        simulation = build_simulation(topo, buffer_bytes=4 * 1460)
        flow = Flow(src="src0", dst="dst0", size_bytes=60 * 1460, start_time=0.0)
        sender = start_tcp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run(until=30.0)
        assert len(simulation.tracer.dropped) > 0
        assert flow.retransmissions > 0
        assert flow.completed

    def test_two_flows_share_bottleneck_and_both_complete(self):
        topo = dumbbell_topology(2, mbps(5), mbps(50))
        simulation = build_simulation(topo, buffer_bytes=64 * 1460)
        flows = [
            Flow(src="src0", dst="dst0", size_bytes=40 * 1460, start_time=0.0),
            Flow(src="src1", dst="dst1", size_bytes=40 * 1460, start_time=0.0),
        ]
        for flow in flows:
            start_tcp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run(until=30.0)
        assert all(flow.completed for flow in flows)

    def test_srpt_header_fields_stamped(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=7300, start_time=0.0)
        start_tcp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run(until=5.0)
        data = [p for p in simulation.tracer.delivered if p.ptype is PacketType.DATA]
        assert all(p.header.flow_size_bytes == 7300 for p in data)
        first = min(data, key=lambda p: p.seq)
        last = max(data, key=lambda p: p.seq)
        assert first.header.remaining_flow_bytes > last.header.remaining_flow_bytes

    def test_double_start_rejected(self):
        topo = linear_topology(2, mbps(10))
        simulation = build_simulation(topo)
        flow = Flow(src="src0", dst="dst0", size_bytes=1460, start_time=0.0)
        sender = start_tcp_flow(simulation.sim, simulation.network, flow)
        with pytest.raises(RuntimeError):
            sender.start()
