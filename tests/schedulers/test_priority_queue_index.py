"""PriorityScheduler queued-id index: O(1) removal semantics and byte-count
exactness (the float-drift guard)."""

import random

from repro.schedulers.lstf import LstfScheduler
from repro.schedulers.priority import StaticPriorityScheduler
from repro.sim.packet import Packet


def packet(size=1000.0, priority=1.0):
    pkt = Packet(flow_id=1, src="a", dst="b", size_bytes=size)
    pkt.header.priority = priority
    return pkt


class TestRemoveIndex:
    def test_remove_unknown_packet_returns_false(self):
        scheduler = StaticPriorityScheduler()
        scheduler.enqueue(packet(), 0.0)
        assert not scheduler.remove(packet())

    def test_remove_twice_returns_false(self):
        scheduler = StaticPriorityScheduler()
        victim = packet()
        scheduler.enqueue(victim, 0.0)
        assert scheduler.remove(victim)
        assert not scheduler.remove(victim)

    def test_removed_packet_never_dequeued(self):
        scheduler = StaticPriorityScheduler()
        keep, drop = packet(priority=2.0), packet(priority=1.0)
        scheduler.enqueue(keep, 0.0)
        scheduler.enqueue(drop, 0.0)
        assert scheduler.remove(drop)
        assert scheduler.dequeue(0.0) is keep
        assert scheduler.dequeue(0.0) is None

    def test_remove_already_dequeued_packet_returns_false(self):
        scheduler = StaticPriorityScheduler()
        pkt = packet()
        scheduler.enqueue(pkt, 0.0)
        assert scheduler.dequeue(0.0) is pkt
        assert not scheduler.remove(pkt)

    def test_len_and_bytes_consistent_through_interleaved_ops(self):
        scheduler = StaticPriorityScheduler()
        rng = random.Random(7)
        queued = []
        expected_bytes = 0.0
        for step in range(500):
            action = rng.random()
            if action < 0.5 or not queued:
                pkt = packet(size=float(rng.randint(40, 1500)), priority=rng.random())
                scheduler.enqueue(pkt, float(step))
                queued.append(pkt)
                expected_bytes += pkt.size_bytes
            elif action < 0.75:
                victim = queued.pop(rng.randrange(len(queued)))
                assert scheduler.remove(victim)
                expected_bytes -= victim.size_bytes
            else:
                served = scheduler.dequeue(float(step))
                assert served in queued
                queued.remove(served)
                expected_bytes -= served.size_bytes
            assert len(scheduler) == len(queued)
            assert scheduler.byte_count == expected_bytes

    def test_peek_skips_removed_entries(self):
        scheduler = StaticPriorityScheduler()
        urgent, patient = packet(priority=1.0), packet(priority=2.0)
        scheduler.enqueue(urgent, 0.0)
        scheduler.enqueue(patient, 0.0)
        assert scheduler.remove(urgent)
        assert scheduler.peek(0.0) is patient
        assert scheduler.queued_packets() == [patient]


class TestByteCountDriftGuard:
    def test_bytes_exactly_zero_after_many_float_cycles(self):
        # Sizes chosen so that the running float sum accumulates rounding
        # error; after every queue drain the byte count must still be
        # exactly 0.0, not a small residue.
        scheduler = LstfScheduler()
        sizes = [0.1, 0.2, 0.3, 1e-9, 123.456, 7.7]
        for cycle in range(200):
            packets = [packet(size=size) for size in sizes]
            for pkt in packets:
                pkt.header.slack = 1.0
                scheduler.enqueue(pkt, 0.0)
            # Drain half by dequeue, half by remove.
            scheduler.remove(packets[0])
            scheduler.remove(packets[2])
            while scheduler.dequeue(0.0) is not None:
                pass
            assert scheduler.byte_count == 0.0
            assert len(scheduler) == 0

    def test_bytes_zero_when_emptied_by_remove_alone(self):
        scheduler = StaticPriorityScheduler()
        packets = [packet(size=0.1) for _ in range(10)]
        for pkt in packets:
            scheduler.enqueue(pkt, 0.0)
        for pkt in packets:
            assert scheduler.remove(pkt)
        assert scheduler.byte_count == 0.0
        assert scheduler.dequeue(0.0) is None
