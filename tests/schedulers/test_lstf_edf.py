"""Unit tests for LSTF, preemptive LSTF, FIFO+, EDF, and the omniscient scheduler."""

from collections import deque

import pytest

from repro.schedulers import uniform_factory
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fifo_plus import FifoPlusScheduler
from repro.schedulers.lstf import LstfScheduler, PreemptiveLstfScheduler
from repro.schedulers.omniscient import OmniscientReplayScheduler
from repro.sim import Simulator, Tracer
from repro.sim.packet import Packet
from repro.topology import Topology, linear_topology, single_switch_topology
from repro.utils import mbps, transmission_delay


def packet(slack=None, size=1000, wait=0.0, deadline=None, flow_id=1):
    pkt = Packet(flow_id=flow_id, src="a", dst="b", size_bytes=size)
    pkt.header.slack = slack
    pkt.header.accumulated_wait = wait
    pkt.header.deadline = deadline
    return pkt


def drain(scheduler, now=0.0):
    out = []
    while True:
        item = scheduler.dequeue(now)
        if item is None:
            break
        out.append(item)
    return out


class TestLstfOrdering:
    def test_least_slack_served_first(self):
        scheduler = LstfScheduler()
        patient = packet(slack=10.0)
        urgent = packet(slack=0.1)
        scheduler.enqueue(patient, 0.0)
        scheduler.enqueue(urgent, 0.0)
        assert drain(scheduler) == [urgent, patient]

    def test_earlier_arrival_wins_for_equal_slack(self):
        scheduler = LstfScheduler()
        early = packet(slack=1.0)
        late = packet(slack=1.0)
        scheduler.enqueue(early, 0.0)
        scheduler.enqueue(late, 0.5)
        assert drain(scheduler, now=1.0) == [early, late]

    def test_waiting_consumes_slack_relative_to_new_arrivals(self):
        scheduler = LstfScheduler()
        # A packet with slack 1.0 that has waited 0.9 seconds must beat a
        # packet with slack 0.5 that just arrived.
        old = packet(slack=1.0)
        scheduler.enqueue(old, 0.0)
        fresh = packet(slack=0.5)
        scheduler.enqueue(fresh, 0.9)
        assert drain(scheduler, now=0.9) == [old, fresh]

    def test_slack_header_decremented_by_waiting_time(self):
        scheduler = LstfScheduler()
        pkt = packet(slack=2.0)
        scheduler.enqueue(pkt, 1.0)
        scheduler.dequeue(4.0)
        assert pkt.header.slack == pytest.approx(2.0 - 3.0)

    def test_packets_without_slack_served_last(self):
        scheduler = LstfScheduler()
        no_slack = packet(slack=None)
        with_slack = packet(slack=100.0)
        scheduler.enqueue(no_slack, 0.0)
        scheduler.enqueue(with_slack, 1.0)
        assert drain(scheduler, now=1.0) == [with_slack, no_slack]

    def test_choose_drop_picks_most_remaining_slack(self):
        scheduler = LstfScheduler()
        tight = packet(slack=0.01)
        loose = packet(slack=5.0)
        scheduler.enqueue(tight, 0.0)
        scheduler.enqueue(loose, 0.0)
        arriving = packet(slack=1.0)
        assert scheduler.choose_drop(arriving, 0.0) is loose


class TestFifoPlus:
    def test_larger_upstream_wait_gets_priority(self):
        scheduler = FifoPlusScheduler()
        fresh = packet(wait=0.0)
        delayed = packet(wait=0.5)
        scheduler.enqueue(fresh, 0.0)
        scheduler.enqueue(delayed, 0.1)
        assert drain(scheduler, now=0.2) == [delayed, fresh]

    def test_degenerates_to_fifo_without_upstream_waits(self):
        scheduler = FifoPlusScheduler()
        packets = [packet(wait=0.0) for _ in range(4)]
        for index, pkt in enumerate(packets):
            scheduler.enqueue(pkt, float(index))
        assert drain(scheduler, now=5.0) == packets


class TestPreemptiveLstf:
    def test_should_preempt_when_new_arrival_is_more_urgent(self):
        scheduler = PreemptiveLstfScheduler()
        in_flight = packet(slack=1.0)
        urgent = packet(slack=0.0)
        scheduler.enqueue(urgent, 0.0)
        assert scheduler.should_preempt(in_flight, 0.0, 0.0)

    def test_no_preemption_for_less_urgent_arrival(self):
        scheduler = PreemptiveLstfScheduler()
        in_flight = packet(slack=0.0)
        patient = packet(slack=5.0)
        scheduler.enqueue(patient, 0.0)
        assert not scheduler.should_preempt(in_flight, 0.0, 0.0)

    def test_port_level_preemption_lets_urgent_packet_overtake(self):
        # One slow link; a huge patient packet starts transmitting, then an
        # urgent small packet arrives and must exit first.
        topo = Topology("preempt")
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b", mbps(1))
        sim = Simulator()
        tracer = Tracer()
        network = topo.build(sim, uniform_factory("lstf-preemptive"), tracer=tracer)
        big = Packet(flow_id=1, src="a", dst="b", size_bytes=100000)
        big.header.slack = 10.0
        small = Packet(flow_id=2, src="a", dst="b", size_bytes=1000)
        small.header.slack = 0.0
        sim.schedule_at(0.0, network.host("a").send, big)
        sim.schedule_at(0.01, network.host("a").send, small)
        sim.run()
        assert small.egress_time < big.egress_time
        # The preempted packet still gets delivered in full.
        assert big.egress_time is not None


class TestEdfLstfEquivalence:
    def test_edf_and_lstf_produce_identical_output_times(self):
        """Appendix E: the two formulations yield the same replay schedule."""
        from repro.core.replay import ReplayExperiment
        from repro.traffic import WorkloadSpec, paper_default_workload

        topo = linear_topology(
            num_routers=2, bandwidth_bps=mbps(10), hosts_per_end=3,
            access_bandwidth_bps=mbps(50),
        )
        workload = WorkloadSpec(
            utilization=0.6,
            reference_bandwidth_bps=mbps(10),
            size_distribution=paper_default_workload(),
            transport="udp",
            duration=0.2,
        )
        experiment = ReplayExperiment(
            topo,
            "random",
            workload,
            seed=11,
            sources=[f"src{i}" for i in range(3)],
            destinations=[f"dst{i}" for i in range(3)],
        )
        results = experiment.run(modes=["lstf", "edf"])
        lstf, edf = results["lstf"], results["edf"]
        assert len(lstf.replayed) == len(edf.replayed) > 0
        for record in lstf.replayed:
            other = edf.replayed.record(record.packet_id)
            assert other.output_time == pytest.approx(record.output_time, abs=1e-9)


class TestOmniscientScheduler:
    def test_serves_in_recorded_hop_order(self):
        scheduler = OmniscientReplayScheduler()
        late = packet()
        late.header.hop_output_times = deque([5.0])
        early = packet()
        early.header.hop_output_times = deque([1.0])
        scheduler.enqueue(late, 0.0)
        scheduler.enqueue(early, 0.0)
        assert drain(scheduler) == [early, late]

    def test_each_hop_pops_one_vector_entry(self):
        scheduler = OmniscientReplayScheduler()
        pkt = packet()
        pkt.header.hop_output_times = deque([3.0, 7.0])
        scheduler.enqueue(pkt, 0.0)
        assert list(pkt.header.hop_output_times) == [7.0]

    def test_packet_without_vector_served_last(self):
        scheduler = OmniscientReplayScheduler()
        blank = packet()
        blank.header.hop_output_times = deque()
        annotated = packet()
        annotated.header.hop_output_times = deque([2.0])
        scheduler.enqueue(blank, 0.0)
        scheduler.enqueue(annotated, 0.0)
        assert drain(scheduler) == [annotated, blank]


class TestEdfScheduler:
    def test_earlier_deadline_first_without_port(self):
        scheduler = EdfScheduler()
        soon = packet(deadline=1.0)
        later = packet(deadline=9.0)
        scheduler.enqueue(later, 0.0)
        scheduler.enqueue(soon, 0.0)
        assert drain(scheduler) == [soon, later]

    def test_deadline_adjusted_by_remaining_path(self):
        # Two packets with the same deadline but different remaining path
        # lengths: the one farther from its destination is more urgent.
        topo = linear_topology(num_routers=3, bandwidth_bps=mbps(10), hosts_per_end=1)
        sim = Simulator()
        network = topo.build(sim, uniform_factory("edf"))
        scheduler = network.nodes["r0"].port_to("r1").scheduler
        near = Packet(flow_id=1, src="dst0", dst="src0", size_bytes=1000,
                      route=["r0", "src0"])
        near.header.deadline = 1.0
        far = Packet(flow_id=2, src="src0", dst="dst0", size_bytes=1000,
                     route=["r0", "r1", "r2", "dst0"])
        far.header.deadline = 1.0
        key_near = scheduler.key(near, 0.0, 0.0)
        key_far = scheduler.key(far, 0.0, 0.0)
        assert key_far < key_near
