"""Unit tests for fair queueing (SCFQ), DRR, and the flow-aware SRPT/SJF schedulers."""

import pytest

from repro.schedulers.drr import DrrScheduler
from repro.schedulers.fq import FairQueueingScheduler
from repro.schedulers.srpt import SjfStarvationFreeScheduler, SrptScheduler
from repro.sim.packet import Packet


def packet(flow_id, size=1000, remaining=None, flow_size=None):
    pkt = Packet(flow_id=flow_id, src="a", dst="b", size_bytes=size)
    pkt.header.remaining_flow_bytes = remaining
    pkt.header.flow_size_bytes = flow_size
    return pkt


def drain(scheduler, now=0.0):
    out = []
    while True:
        item = scheduler.dequeue(now)
        if item is None:
            break
        out.append(item)
    return out


class TestFairQueueing:
    def test_interleaves_two_backlogged_flows(self):
        scheduler = FairQueueingScheduler()
        flow_a = [packet(1) for _ in range(4)]
        flow_b = [packet(2) for _ in range(4)]
        # Flow A's burst arrives first, then flow B's.
        for pkt in flow_a:
            scheduler.enqueue(pkt, 0.0)
        for pkt in flow_b:
            scheduler.enqueue(pkt, 0.0)
        served = drain(scheduler)
        first_four_flows = [p.flow_id for p in served[:4]]
        # Fair queueing must not drain flow A's whole burst before serving B.
        assert set(first_four_flows) == {1, 2}

    def test_equal_service_for_equal_demand(self):
        scheduler = FairQueueingScheduler()
        for index in range(12):
            scheduler.enqueue(packet(1 + index % 3), 0.0)
        served = drain(scheduler)
        counts = {flow: 0 for flow in (1, 2, 3)}
        for pkt in served[:6]:
            counts[pkt.flow_id] += 1
        assert all(count == 2 for count in counts.values())

    def test_weighted_flows_get_proportional_share(self):
        scheduler = FairQueueingScheduler()
        heavy_packets = [packet(1) for _ in range(8)]
        light_packets = [packet(2) for _ in range(8)]
        for pkt in heavy_packets:
            pkt.flow_weight = 2.0
            scheduler.enqueue(pkt, 0.0)
        for pkt in light_packets:
            pkt.flow_weight = 1.0
            scheduler.enqueue(pkt, 0.0)
        served = drain(scheduler)
        first_six = [p.flow_id for p in served[:6]]
        # Flow 1 (weight 2) should receive roughly twice the service early on.
        assert first_six.count(1) > first_six.count(2)

    def test_fairness_is_in_bytes_not_packets(self):
        scheduler = FairQueueingScheduler()
        large = [packet(1, size=1500) for _ in range(3)]
        small = [packet(2, size=100) for _ in range(30)]
        for pkt in large:
            scheduler.enqueue(pkt, 0.0)
        for pkt in small:
            scheduler.enqueue(pkt, 0.0)
        served = drain(scheduler)
        # Byte-fairness: a 1500-byte packet of flow 1 is worth ~15 of flow 2's
        # 100-byte packets, so flow 1's first packet must be interleaved with
        # flow 2's burst (served before flow 2's last packet), and the flow
        # with more total bytes (flow 1, 4500 B vs 3000 B) finishes last.
        first_large_index = min(i for i, p in enumerate(served) if p.flow_id == 1)
        last_small_index = max(i for i, p in enumerate(served) if p.flow_id == 2)
        assert first_large_index < last_small_index
        assert served[-1].flow_id == 1


class TestDrr:
    def test_round_robin_across_flows(self):
        scheduler = DrrScheduler(quantum_bytes=1000)
        for _ in range(3):
            scheduler.enqueue(packet(1, size=1000), 0.0)
            scheduler.enqueue(packet(2, size=1000), 0.0)
        served = [p.flow_id for p in drain(scheduler)]
        # Strict alternation once both flows are active.
        assert served.count(1) == served.count(2) == 3
        assert served[:2] in ([1, 2], [2, 1])

    def test_large_packet_waits_for_enough_deficit(self):
        scheduler = DrrScheduler(quantum_bytes=500)
        scheduler.enqueue(packet(1, size=1400), 0.0)
        scheduler.enqueue(packet(2, size=400), 0.0)
        served = drain(scheduler)
        assert len(served) == 2
        # The small packet from flow 2 should not be blocked behind flow 1's
        # credit accumulation.
        assert served[0].flow_id == 2

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            DrrScheduler(quantum_bytes=0)

    def test_remove_packet(self):
        scheduler = DrrScheduler()
        first = packet(1)
        second = packet(1)
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 0.0)
        assert scheduler.remove(first)
        assert drain(scheduler) == [second]


class TestSrpt:
    def test_flow_with_least_remaining_bytes_wins(self):
        scheduler = SrptScheduler()
        nearly_done = packet(1, remaining=2000)
        just_started = packet(2, remaining=1e6)
        scheduler.enqueue(just_started, 0.0)
        scheduler.enqueue(nearly_done, 0.0)
        assert drain(scheduler) == [nearly_done, just_started]

    def test_starvation_prevention_serves_flow_in_fifo_order(self):
        scheduler = SrptScheduler()
        # Flow 1's first packet carries a large remaining size but its second
        # carries a small one: the *flow* is selected by its best packet, and
        # within the flow packets go in arrival order (pFabric's rule).
        first = packet(1, remaining=10000)
        second = packet(1, remaining=1000)
        competitor = packet(2, remaining=5000)
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(competitor, 1.0)
        scheduler.enqueue(second, 2.0)
        served = drain(scheduler)
        assert served == [first, second, competitor]

    def test_drop_victim_is_worst_priority(self):
        scheduler = SrptScheduler()
        keep = packet(1, remaining=100)
        drop = packet(2, remaining=1e9)
        scheduler.enqueue(keep, 0.0)
        scheduler.enqueue(drop, 0.0)
        arriving = packet(3, remaining=500)
        assert scheduler.choose_drop(arriving, 0.0) is drop

    def test_byte_count_tracks_removals(self):
        scheduler = SrptScheduler()
        first = packet(1, remaining=100, size=700)
        second = packet(2, remaining=200, size=300)
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 0.0)
        assert scheduler.byte_count == 1000
        scheduler.remove(first)
        assert scheduler.byte_count == 300
        assert len(scheduler) == 1


class TestSjfStarvationFree:
    def test_small_flow_first(self):
        scheduler = SjfStarvationFreeScheduler()
        small = packet(1, flow_size=1000)
        large = packet(2, flow_size=1e6)
        scheduler.enqueue(large, 0.0)
        scheduler.enqueue(small, 0.0)
        assert drain(scheduler) == [small, large]

    def test_unsized_flow_served_last(self):
        scheduler = SjfStarvationFreeScheduler()
        unsized = packet(1, flow_size=None)
        sized = packet(2, flow_size=5000)
        scheduler.enqueue(unsized, 0.0)
        scheduler.enqueue(sized, 0.0)
        assert drain(scheduler) == [sized, unsized]
