"""Unit tests for FIFO, LIFO, Random, and static-priority scheduling order."""

import pytest

from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.lifo import LifoScheduler
from repro.schedulers.priority import SjfScheduler, StaticPriorityScheduler
from repro.schedulers.random_sched import RandomScheduler
from repro.sim.packet import Packet
from repro.utils.rng import RandomState


def packet(size=1000, priority=None, flow_size=None, flow_id=1):
    pkt = Packet(flow_id=flow_id, src="a", dst="b", size_bytes=size)
    pkt.header.priority = priority
    pkt.header.flow_size_bytes = flow_size
    return pkt


def drain(scheduler, now=0.0):
    out = []
    while True:
        item = scheduler.dequeue(now)
        if item is None:
            break
        out.append(item)
    return out


class TestFifo:
    def test_serves_in_arrival_order(self):
        scheduler = FifoScheduler()
        packets = [packet() for _ in range(5)]
        for index, pkt in enumerate(packets):
            scheduler.enqueue(pkt, float(index))
        assert drain(scheduler) == packets

    def test_len_and_bytes_track_queue(self):
        scheduler = FifoScheduler()
        scheduler.enqueue(packet(size=100), 0.0)
        scheduler.enqueue(packet(size=200), 0.0)
        assert len(scheduler) == 2
        assert scheduler.byte_count == 300
        scheduler.dequeue(0.0)
        assert len(scheduler) == 1
        assert scheduler.byte_count == 200

    def test_remove_specific_packet(self):
        scheduler = FifoScheduler()
        first, second = packet(), packet()
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 0.0)
        assert scheduler.remove(first)
        assert not scheduler.remove(first)
        assert drain(scheduler) == [second]

    def test_dequeue_empty_returns_none(self):
        assert FifoScheduler().dequeue(0.0) is None


class TestLifo:
    def test_serves_most_recent_first(self):
        scheduler = LifoScheduler()
        packets = [packet() for _ in range(4)]
        for index, pkt in enumerate(packets):
            scheduler.enqueue(pkt, float(index))
        assert drain(scheduler) == list(reversed(packets))

    def test_remove(self):
        scheduler = LifoScheduler()
        first, second = packet(), packet()
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 0.0)
        assert scheduler.remove(second)
        assert drain(scheduler) == [first]


class TestRandom:
    def test_serves_all_packets_exactly_once(self):
        scheduler = RandomScheduler(RandomState(1))
        packets = [packet() for _ in range(20)]
        for pkt in packets:
            scheduler.enqueue(pkt, 0.0)
        served = drain(scheduler)
        assert sorted(p.packet_id for p in served) == sorted(p.packet_id for p in packets)

    def test_order_is_seed_dependent_but_reproducible(self):
        def order(seed):
            scheduler = RandomScheduler(RandomState(seed))
            packets = [packet() for _ in range(10)]
            for pkt in packets:
                scheduler.enqueue(pkt, 0.0)
            return [p.packet_id for p in drain(scheduler)]

        from repro.sim.packet import reset_packet_ids

        reset_packet_ids()
        first = order(5)
        reset_packet_ids()
        second = order(5)
        reset_packet_ids()
        different = order(6)
        assert first == second
        assert first != different

    def test_random_order_differs_from_fifo_for_long_queues(self):
        scheduler = RandomScheduler(RandomState(3))
        packets = [packet() for _ in range(30)]
        for pkt in packets:
            scheduler.enqueue(pkt, 0.0)
        assert drain(scheduler) != packets


class TestStaticPriority:
    def test_lowest_priority_value_served_first(self):
        scheduler = StaticPriorityScheduler()
        low = packet(priority=5.0)
        urgent = packet(priority=1.0)
        middle = packet(priority=3.0)
        for pkt in (low, urgent, middle):
            scheduler.enqueue(pkt, 0.0)
        assert drain(scheduler) == [urgent, middle, low]

    def test_missing_priority_served_last(self):
        scheduler = StaticPriorityScheduler()
        unprioritized = packet(priority=None)
        prioritized = packet(priority=10.0)
        scheduler.enqueue(unprioritized, 0.0)
        scheduler.enqueue(prioritized, 1.0)
        assert drain(scheduler) == [prioritized, unprioritized]

    def test_ties_broken_fifo(self):
        scheduler = StaticPriorityScheduler()
        first = packet(priority=2.0)
        second = packet(priority=2.0)
        scheduler.enqueue(first, 0.0)
        scheduler.enqueue(second, 1.0)
        assert drain(scheduler) == [first, second]


class TestSjf:
    def test_smaller_flow_size_wins(self):
        scheduler = SjfScheduler()
        big = packet(flow_size=1e6)
        small = packet(flow_size=1e3)
        scheduler.enqueue(big, 0.0)
        scheduler.enqueue(small, 0.0)
        assert drain(scheduler) == [small, big]

    def test_fallback_order(self):
        scheduler = SjfScheduler()
        sized = packet(flow_size=100.0)
        prioritized = packet(flow_size=None, priority=50.0)
        neither = packet(flow_size=None, priority=None)
        for pkt in (neither, prioritized, sized):
            scheduler.enqueue(pkt, 0.0)
        served = drain(scheduler)
        assert served[-1] is neither
        assert set(served[:2]) == {sized, prioritized}
