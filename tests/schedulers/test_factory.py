"""Tests for scheduler factories and the registry."""

import pytest

from repro.schedulers import (
    SCHEDULER_REGISTRY,
    FairQueueingScheduler,
    FifoPlusScheduler,
    FifoScheduler,
    LstfScheduler,
    RandomScheduler,
    alternating_factory,
    per_node_factory,
    scheduler_class,
    uniform_factory,
)
from repro.sim.link import Link
from repro.utils import RandomState, mbps


LINK = Link("a", "b", mbps(10))


def test_registry_contains_every_paper_scheduler():
    for name in ("fifo", "lifo", "random", "priority", "sjf", "srpt", "fq",
                 "fifo+", "lstf", "lstf-preemptive", "edf", "drr"):
        assert name in SCHEDULER_REGISTRY


def test_scheduler_class_lookup_is_case_insensitive():
    assert scheduler_class("LSTF") is LstfScheduler
    assert scheduler_class("FiFo") is FifoScheduler


def test_unknown_scheduler_name_raises_with_known_list():
    with pytest.raises(KeyError) as excinfo:
        scheduler_class("wfq2000")
    assert "lstf" in str(excinfo.value)


def test_uniform_factory_builds_fresh_instances():
    factory = uniform_factory("fifo")
    first = factory("r0", LINK)
    second = factory("r1", LINK)
    assert isinstance(first, FifoScheduler)
    assert first is not second


def test_uniform_factory_accepts_class_objects():
    factory = uniform_factory(LstfScheduler)
    assert isinstance(factory("r0", LINK), LstfScheduler)


def test_random_scheduler_gets_per_port_rng():
    factory = uniform_factory("random", rng=RandomState(3))
    first = factory("r0", LINK)
    second = factory("r1", LINK)
    assert isinstance(first, RandomScheduler)
    assert first._rng is not second._rng


def test_per_node_factory_routes_by_node_name():
    factory = per_node_factory(
        {"special": uniform_factory("fq")}, default=uniform_factory("fifo")
    )
    assert isinstance(factory("special", LINK), FairQueueingScheduler)
    assert isinstance(factory("other", LINK), FifoScheduler)


def test_alternating_factory_splits_routers_in_half():
    routers = [f"r{i}" for i in range(6)]
    factory = alternating_factory(
        routers, uniform_factory("fq"), uniform_factory("fifo+"),
        default=uniform_factory("fifo"),
    )
    kinds = [type(factory(name, LINK)) for name in sorted(routers)]
    assert kinds.count(FairQueueingScheduler) == 3
    assert kinds.count(FifoPlusScheduler) == 3
    # Nodes outside the listed set (e.g. hosts) fall back to the default.
    assert isinstance(factory("host-x", LINK), FifoScheduler)


def test_alternating_factory_is_deterministic():
    routers = ["b", "a", "d", "c"]
    factory1 = alternating_factory(routers, uniform_factory("fq"), uniform_factory("fifo+"))
    factory2 = alternating_factory(list(reversed(routers)), uniform_factory("fq"), uniform_factory("fifo+"))
    for name in routers:
        assert type(factory1(name, LINK)) is type(factory2(name, LINK))
