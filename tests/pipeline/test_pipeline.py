"""Tests for the parallel experiment pipeline (scenarios, cache, runner, CLI)."""

import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import ExperimentScale, run_all
from repro.pipeline import (
    REGISTRY,
    Scenario,
    ScheduleCache,
    Sweep,
    default_registry,
    replay_scenario,
    run_pipeline,
    schedule_cache_key,
)
from repro.pipeline.scenario import expand_replicates, stable_seed

SMOKE = ExperimentScale.smoke()
#: A cheap experiment subset that still exercises record/replay, schedule
#: sharing across modes, and a direct-simulation experiment.
SUBSET = ["table1-priority", "ablation-edf", "figure3"]


# --------------------------------------------------------------------- #
# Scenario / Sweep
# --------------------------------------------------------------------- #
class TestScenario:
    def test_derived_quantities(self):
        scenario = Scenario(
            name="x", scale=SMOKE, seed_offset=3, duration_scale=0.5, reference_gbps=2.0
        )
        assert scenario.seed == SMOKE.seed + 3
        assert scenario.duration == pytest.approx(SMOKE.duration * 0.5)
        assert scenario.reference_bandwidth_bps == pytest.approx(
            SMOKE.scaled_bandwidth(2.0)
        )

    def test_seed_override_wins(self):
        scenario = Scenario(name="x", scale=SMOKE, seed_offset=3).with_seed(99, "#r1")
        assert scenario.seed == 99
        assert scenario.name == "x#r1"

    def test_build_topology_by_name(self):
        scenario = Scenario(name="x", scale=SMOKE, topology="fattree")
        assert len(scenario.build_topology().host_names()) == SMOKE.fattree_k ** 3 // 4

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="no topology builder"):
            Scenario(name="x", scale=SMOKE, topology="label").build_topology()

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            Scenario(name="x", scale=SMOKE, workload_name="nope").workload()

    def test_scenarios_are_picklable_and_hashable(self):
        import pickle

        scenario = Scenario(name="x", scale=SMOKE)
        assert pickle.loads(pickle.dumps(scenario)) == scenario
        assert hash(scenario) == hash(Scenario(name="x", scale=SMOKE))

    def test_sweep_expansion(self):
        base = Scenario(name="base", scale=SMOKE)
        sweep = Sweep(base=base, parameter="utilization", values=(0.1, 0.9))
        expanded = sweep.scenarios()
        assert [s.utilization for s in expanded] == [0.1, 0.9]
        assert expanded[0].name == "base[utilization=0.1]"

    def test_stable_seed_is_deterministic_and_distinct(self):
        assert stable_seed(1, "a", 0) == stable_seed(1, "a", 0)
        assert stable_seed(1, "a", 0) != stable_seed(1, "a", 1)

    def test_expand_replicates_keeps_first_seed(self):
        base = Scenario(name="x", scale=SMOKE)
        expanded = expand_replicates([base], 3)
        assert len(expanded) == 3
        assert expanded[0].seed == base.seed
        assert len({s.seed for s in expanded}) == 3


# --------------------------------------------------------------------- #
# Cache
# --------------------------------------------------------------------- #
class TestScheduleCache:
    def _scenario(self, **overrides):
        defaults = dict(name="cache-test", scale=SMOKE, utilization=0.5)
        defaults.update(overrides)
        return Scenario(**defaults)

    def test_key_is_sensitive_to_inputs(self):
        scenario = self._scenario()
        topo, load = scenario.build_topology(), scenario.workload()
        base = schedule_cache_key(topo, "random", load, 1)
        assert schedule_cache_key(topo, "random", load, 1) == base
        assert schedule_cache_key(topo, "fifo", load, 1) != base
        assert schedule_cache_key(topo, "random", load, 2) != base
        other_load = self._scenario(utilization=0.6).workload()
        assert schedule_cache_key(topo, "random", other_load, 1) != base

    def test_memory_layer_hits(self):
        cache = ScheduleCache()
        scenario = self._scenario()
        replay_scenario(scenario, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 1, "corrupt_entries": 0}
        replay_scenario(scenario, mode="priority", cache=cache)
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt_entries": 0}

    def test_disk_layer_survives_processes(self, tmp_path):
        scenario = self._scenario()
        first = ScheduleCache(tmp_path)
        replay_scenario(scenario, cache=first)
        assert first.misses == 1
        assert first.disk_entries() == 1
        # A brand-new cache instance (as a pool worker would create) must hit
        # the disk layer instead of re-recording.
        second = ScheduleCache(tmp_path)
        replay_scenario(scenario, cache=second)
        assert second.stats() == {"hits": 1, "misses": 0, "corrupt_entries": 0}


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        names = set(default_registry().names())
        assert {
            "table1",
            "table1-priority",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "ablation-preemption",
            "ablation-edf",
            "ablation-omniscient",
        } <= names

    def test_unknown_experiment_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            default_registry().get("tableX")

    def test_cells_are_picklable(self):
        import pickle

        for definition in default_registry():
            for cell in definition.cells(SMOKE):
                assert pickle.loads(pickle.dumps(cell)) == cell


# --------------------------------------------------------------------- #
# Runner: parallel == serial, warm cache == zero re-records
# --------------------------------------------------------------------- #
class TestRunner:
    def test_parallel_rows_identical_to_serial(self, tmp_path):
        serial = run_pipeline(SUBSET, scale=SMOKE, workers=1)
        parallel = run_pipeline(SUBSET, scale=SMOKE, workers=4)
        assert parallel.workers == 4
        for name in SUBSET:
            assert serial.results[name].rows == parallel.results[name].rows

    def test_run_all_parallel_matches_serial(self, tmp_path):
        serial = run_all(SMOKE, names=SUBSET)
        parallel = run_all(
            SMOKE, names=SUBSET, workers=4, cache_dir=str(tmp_path / "cache")
        )
        assert {
            name: result.rows for name, result in serial.items()
        } == {name: result.rows for name, result in parallel.items()}

    def test_warm_cache_records_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_pipeline(
            ["table1-priority", "ablation-edf"], scale=SMOKE, workers=1, cache_dir=cache_dir
        )
        assert cold.records_computed >= 1
        warm = run_pipeline(
            ["table1-priority", "ablation-edf"], scale=SMOKE, workers=4, cache_dir=cache_dir
        )
        assert warm.records_computed == 0
        assert warm.cache_hits == warm.cells  # every replay cell hit the cache
        for name in ("table1-priority", "ablation-edf"):
            assert cold.results[name].rows == warm.results[name].rows

    def test_modes_share_one_recording(self):
        summary = run_pipeline(["table1-priority"], scale=SMOKE, workers=1)
        # Two replay modes, one scenario: exactly one schedule recorded.
        assert summary.cells == 2
        assert summary.records_computed == 1
        assert summary.cache_hits == 1

    def test_replicates_expand_cells_and_keep_base_rows(self):
        single = run_pipeline(["ablation-edf"], scale=SMOKE, workers=1)
        doubled = run_pipeline(["ablation-edf"], scale=SMOKE, workers=1, replicates=2)
        assert doubled.cells == 2 * single.cells
        # Replicated runs add a "scenario" column carrying the #rN suffix so
        # the rows are distinguishable; replicate 0 must reproduce the
        # single-seed rows exactly once that column is set aside.
        base_rows = [
            {key: value for key, value in row.items() if key != "scenario"}
            for row in doubled.results["ablation-edf"].rows
            if "#r" not in str(row.get("scenario", ""))
        ]
        assert single.results["ablation-edf"].rows == base_rows

    def test_replicates_note_for_unsupported_experiments(self):
        summary = run_pipeline(["figure3"], scale=SMOKE, workers=1, replicates=2)
        assert any("figure3" in note for note in summary.notes)
        assert "figure3" in summary.format()

    def test_unknown_name_raises_before_running(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_pipeline(["tableX"], scale=SMOKE)

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="wall-clock speedup needs a multi-core machine",
    )
    def test_parallel_speedup_on_multicore(self, tmp_path):
        scale = ExperimentScale.quick()
        serial = run_pipeline(["table1"], scale=scale, workers=1)
        parallel = run_pipeline(["table1"], scale=scale, workers=4)
        assert serial.results["table1"].rows == parallel.results["table1"].rows
        assert parallel.wall_time < serial.wall_time / 1.5


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure4" in out
        assert "I2-1G-10G@70" in out  # scenario labels for `record`

    def test_run_json_reports_cache_counters(self, tmp_path, capsys):
        code = cli_main(
            [
                "run",
                "ablation-omniscient",
                "--scale",
                "smoke",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["_summary"]["records_computed"] == 1
        rows = payload["ablation-omniscient"]["rows"]
        assert rows[0]["replay_mode"] == "omniscient"
        assert rows[0]["fraction_overdue"] == 0.0

    def test_run_rejects_unknown_experiment(self, tmp_path, capsys):
        code = cli_main(
            ["run", "tableX", "--scale", "smoke", "--cache-dir", str(tmp_path / "c")]
        )
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_record_then_replay(self, tmp_path, capsys):
        out_file = str(tmp_path / "sched.jsonl.gz")
        assert cli_main(["record", "I2-1G-10G@70", "--scale", "smoke", "--out", out_file]) == 0
        assert os.path.exists(out_file)
        capsys.readouterr()
        assert cli_main(["replay", out_file, "--mode", "omniscient", "--json"]) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["scenario"] == "I2-1G-10G@70"
        assert row["fraction_overdue"] == 0.0  # omniscient replay is perfect

    def test_record_rejects_unknown_scenario(self, capsys):
        assert cli_main(["record", "no-such-row", "--scale", "smoke"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
