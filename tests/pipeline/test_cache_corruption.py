"""Graceful degradation when on-disk schedule-cache entries are corrupt."""

import gzip
import logging

import pytest

from repro.experiments import ExperimentScale
from repro.pipeline import Scenario, ScheduleCache, replay_scenario

SMOKE = ExperimentScale.smoke()


def scenario():
    return Scenario(name="corrupt-test", scale=SMOKE, utilization=0.5)


def entry_path(cache_dir):
    """Record once and return the on-disk entry's path."""
    cache = ScheduleCache(cache_dir)
    replay_scenario(scenario(), cache=cache)
    assert cache.disk_entries() == 1
    [path] = list(cache_dir.rglob("*.jsonl.gz"))
    return path


class TestCorruptEntries:
    def test_truncated_gzip_is_quarantined_and_re_recorded(self, tmp_path, caplog):
        path = entry_path(tmp_path)
        # Truncate mid-stream: gzip decompression now fails with EOFError.
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        fresh = ScheduleCache(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.cache"):
            replay_scenario(scenario(), cache=fresh)
        assert fresh.stats() == {"hits": 0, "misses": 1, "corrupt_entries": 1}
        assert path.with_name(path.name + ".corrupt").exists()
        assert any("corrupt" in record.message for record in caplog.records)
        # The re-recorded entry is valid again: a third cache hits it.
        third = ScheduleCache(tmp_path)
        replay_scenario(scenario(), cache=third)
        assert third.stats() == {"hits": 1, "misses": 0, "corrupt_entries": 0}

    def test_garbage_bytes_are_quarantined(self, tmp_path):
        path = entry_path(tmp_path)
        path.write_bytes(b"this is not gzip at all")
        fresh = ScheduleCache(tmp_path)
        replay_scenario(scenario(), cache=fresh)
        assert fresh.corrupt_entries == 1
        assert path.with_name(path.name + ".corrupt").exists()

    def test_valid_gzip_invalid_json_is_quarantined(self, tmp_path):
        path = entry_path(tmp_path)
        with gzip.open(path, "wt") as handle:
            handle.write("{not json\n")
        fresh = ScheduleCache(tmp_path)
        replay_scenario(scenario(), cache=fresh)
        assert fresh.corrupt_entries == 1

    def test_rows_survive_corruption(self, tmp_path):
        """The row computed against the re-recorded schedule is identical."""
        clean = replay_scenario(scenario(), cache=ScheduleCache(tmp_path))
        [path] = list(tmp_path.rglob("*.jsonl.gz"))
        path.write_bytes(b"garbage")
        recovered = replay_scenario(scenario(), cache=ScheduleCache(tmp_path))
        assert recovered.overdue_fraction == clean.overdue_fraction
        assert len(recovered.replayed) == len(clean.replayed)


class TestQuarantineUnderReadOnlyCache:
    """The `.corrupt` rename itself failing must not break the run."""

    def test_failed_rename_is_tolerated(self, tmp_path, caplog, monkeypatch):
        # Simulate EACCES on the rename regardless of who runs the suite
        # (root bypasses directory permissions, so chmod alone cannot).
        import repro.pipeline.cache as cache_module

        path = entry_path(tmp_path)
        path.write_bytes(b"garbage")

        real_replace = cache_module.os.replace

        def deny_replace(src, dst):
            # Only the quarantine rename fails; save_schedule's atomic
            # tmp->final rename (same os module) keeps working.
            if str(dst).endswith(".corrupt"):
                raise OSError(13, "Permission denied", str(src))
            return real_replace(src, dst)

        monkeypatch.setattr(cache_module.os, "replace", deny_replace)
        fresh = ScheduleCache(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.cache"):
            result = replay_scenario(scenario(), cache=fresh)
        assert fresh.corrupt_entries == 1
        assert result.replayed is not None  # the run still re-recorded
        assert not path.with_name(path.name + ".corrupt").exists()
        assert any("already quarantined" in rec.message for rec in caplog.records)

    @pytest.mark.skipif(
        __import__("os").geteuid() == 0,
        reason="root bypasses directory write permissions",
    )
    def test_read_only_cache_dir_still_re_records(self, tmp_path):
        import os as _os

        path = entry_path(tmp_path)
        path.write_bytes(b"garbage")
        entry_dir = path.parent
        entry_dir.chmod(0o555)  # rename blocked; the entry file stays writable
        try:
            fresh = ScheduleCache(tmp_path)
            result = replay_scenario(scenario(), cache=fresh)
            assert fresh.corrupt_entries == 1
            assert result.replayed is not None
            assert not path.with_name(path.name + ".corrupt").exists()
        finally:
            entry_dir.chmod(0o755)
