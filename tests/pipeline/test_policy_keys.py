"""Golden cache-key pinning for slack-policy-bearing (and live-mode) cells.

Complements ``tests/pipeline/test_workloads.py`` (which pins the 34
policy-less pre-refactor keys): this fixture pins the keys of cells that
carry a slack policy — in replay mode and in the live application mode the
unification added — so future refactors can neither silently remap a
policy-bearing entry nor collide a live cell with a replay cell.

Fixture layout (``tests/data/golden_policy_keys.json``):

* ``<scale>/live/<policy>`` — the default Internet2 scenario recorded with
  the policy stamping packets at send time;
* ``<scale>/replay/<policy>`` — the same scenario with the policy stamping
  replayed headers instead;
* ``smoke/live-variant/<kind>[<param>=<value>]`` — parameter variants of a
  kind, proving params feed the hash.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.slack_policy import SLACK_POLICIES, SlackPolicyDef
from repro.experiments import ExperimentScale
from repro.experiments.table1 import default_scenario
from repro.pipeline.experiment import scenario_cache_key

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_policy_keys.json"

SCALES = {"smoke": ExperimentScale.smoke(), "quick": ExperimentScale.quick()}

#: Parameter variants behind the ``live-variant`` fixture entries.
VARIANT_DEFS = {
    "static-delay[slack_seconds=0.5]": SlackPolicyDef(
        name="v", kind="static-delay", params=(("slack_seconds", 0.5),)
    ),
    "flow-size[scale=2]": SlackPolicyDef(
        name="v", kind="flow-size", params=(("scale", 2.0),)
    ),
    "fairness[rate_estimate_bps=5e5]": SlackPolicyDef(
        name="v", kind="fairness", params=(("rate_estimate_bps", 5e5),)
    ),
}


@pytest.fixture(scope="module")
def golden():
    keys = json.loads(GOLDEN_PATH.read_text())
    assert keys, "golden policy-key fixture is empty"
    return keys


def _base(scale):
    return default_scenario(scale, original="lstf", name="I2-1G-10G")


class TestGoldenPolicyKeys:
    def test_all_fixture_keys_are_distinct(self, golden):
        """Distinct per policy, per param set, and per application mode."""
        assert len(set(golden.values())) == len(golden)

    def test_live_and_replay_keys_recompute_bit_identically(self, golden):
        checked = 0
        for label, key in golden.items():
            scale_name, mode, policy = label.split("/", 2)
            if mode not in ("live", "replay"):
                continue
            scenario = replace(
                _base(SCALES[scale_name]), slack_policy=policy, slack_mode=mode
            )
            assert scenario_cache_key(scenario) == key, label
            checked += 1
        assert checked >= 12

    def test_param_variant_keys_recompute_bit_identically(self, golden, monkeypatch):
        checked = 0
        for label, key in golden.items():
            scale_name, mode, variant = label.split("/", 2)
            if mode != "live-variant":
                continue
            name = f"__variant__{variant}"
            monkeypatch.setitem(
                SLACK_POLICIES._definitions,
                name,
                replace(VARIANT_DEFS[variant], name=name),
            )
            scenario = replace(
                _base(SCALES[scale_name]), slack_policy=name, slack_mode="live"
            )
            assert scenario_cache_key(scenario) == key, label
            checked += 1
        assert checked == len(VARIANT_DEFS)

    def test_fixture_covers_every_registered_capability(self, golden):
        """Every built-in policy appears under each mode it supports, so a
        newly registered policy must be added to the fixture deliberately."""
        for policy in SLACK_POLICIES:
            if policy.name.startswith("__variant__"):
                continue
            if policy.supports_live:
                assert f"smoke/live/{policy.name}" in golden, policy.name
            if policy.supports_replay:
                assert f"smoke/replay/{policy.name}" in golden, policy.name

    def test_live_mode_never_collides_with_replay_mode(self):
        """For both-capable policies the two application modes must key
        separately: a live recording genuinely depends on the policy."""
        for policy in SLACK_POLICIES:
            if not (policy.supports_live and policy.supports_replay):
                continue
            base = _base(SCALES["smoke"])
            live = replace(base, slack_policy=policy.name, slack_mode="live")
            replay = replace(base, slack_policy=policy.name, slack_mode="replay")
            assert scenario_cache_key(live) != scenario_cache_key(replay)

    def test_policyless_keys_stay_pinned_alongside(self):
        """The 34 policy-less golden keys are asserted by
        tests/pipeline/test_workloads.py; spot-check one here so this file
        fails loudly too if the base payload drifts."""
        legacy = json.loads(
            (GOLDEN_PATH.parent / "golden_cache_keys.json").read_text()
        )
        assert len(legacy) >= 34
        from repro.__main__ import _replay_scenarios

        scenarios = _replay_scenarios(SCALES["smoke"])
        assert (
            scenario_cache_key(scenarios["I2-1G-10G@70"])
            == legacy["smoke/I2-1G-10G@70"]
        )
