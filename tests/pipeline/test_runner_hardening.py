"""Fault tolerance of the pipeline runner itself.

Covers the hardening contract: per-cell timeouts, bounded retry with
exponential backoff, structured error rows instead of aborted runs, and —
the hard case — recovery from a pool worker killed outright (SIGKILL breaks
the entire ``ProcessPoolExecutor``, failing every outstanding future).
"""

import json
import os
import time

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import ExperimentScale
from repro.experiments.config import ExperimentResult
from repro.pipeline import run_pipeline
from repro.pipeline.experiment import Cell, CellResult, ExperimentDef, ScenarioRegistry
from repro.pipeline.runner import CellError, CellTimeoutError, _cell_deadline

SMOKE = ExperimentScale.smoke()


class ScriptedDef(ExperimentDef):
    """Cells scripted by spec: fail or kill for the first N attempts.

    A shared sentinel file counts attempts across processes, so the cells
    are deterministic under both the serial and the pool runner.  Defined at
    module top level so fork-started pool workers can unpickle the cells.
    """

    name = "scripted"

    def __init__(self, specs):
        self._specs = tuple(specs)

    def cells(self, scale):
        return [
            Cell(self.name, spec["label"], "m", index, spec=tuple(sorted(spec.items())))
            for index, spec in enumerate(self._specs)
        ]

    def run_cell(self, cell, scale, cache):
        spec = dict(cell.spec)
        sentinel = spec.get("sentinel")
        if sentinel is not None:
            with open(sentinel, "a") as handle:
                handle.write("x")
            attempts = os.path.getsize(sentinel)
            if attempts <= spec.get("fail_times", 0):
                if spec.get("kill"):
                    os.kill(os.getpid(), 9)
                raise RuntimeError(f"scripted failure #{attempts}")
        if spec.get("sleep"):
            time.sleep(spec["sleep"])
        return CellResult(cell=cell, row={"label": spec["label"]})

    def assemble(self, scale, results):
        return ExperimentResult(
            name=self.name,
            scale_label=scale.label,
            rows=[result.row for result in results],
        )


def registry(*specs):
    reg = ScenarioRegistry()
    reg.register(ScriptedDef(specs))
    return reg


def run(reg, **kwargs):
    kwargs.setdefault("retry_backoff", 0.01)
    return run_pipeline(["scripted"], scale=SMOKE, registry=reg, **kwargs)


class TestCellDeadline:
    def test_deadline_raises_inside_window(self):
        with pytest.raises(CellTimeoutError, match="timeout"):
            with _cell_deadline(0.05):
                time.sleep(2)

    def test_deadline_disarmed_after_body(self):
        with _cell_deadline(0.05):
            pass
        time.sleep(0.1)  # the timer must not fire late

    def test_none_is_no_timeout(self):
        with _cell_deadline(None):
            time.sleep(0.01)


class TestSerialHardening:
    def test_failure_becomes_error_row_and_run_completes(self, tmp_path):
        reg = registry(
            {"label": "bad", "sentinel": str(tmp_path / "s1"), "fail_times": 99},
            {"label": "good"},
        )
        summary = run(reg, workers=1)
        assert [row["label"] for row in summary.results["scripted"].rows] == ["good"]
        [error] = summary.errors
        assert error.label == "bad"
        assert error.error_type == "RuntimeError"
        assert "scripted failure" in error.traceback
        assert error.attempts == 1
        assert "FAILED" in summary.format()

    def test_retry_succeeds_on_second_attempt(self, tmp_path):
        reg = registry(
            {"label": "flaky", "sentinel": str(tmp_path / "s1"), "fail_times": 1},
        )
        summary = run(reg, workers=1, max_retries=2)
        assert not summary.errors
        assert summary.results["scripted"].rows == [{"label": "flaky"}]

    def test_timeout_is_captured(self):
        reg = registry({"label": "slow", "sleep": 5.0}, {"label": "fast"})
        summary = run(reg, workers=1, cell_timeout=0.2)
        [error] = summary.errors
        assert error.error_type == "CellTimeoutError"
        assert [row["label"] for row in summary.results["scripted"].rows] == ["fast"]


class TestParallelHardening:
    def test_worker_exception_captured_and_retried(self, tmp_path):
        reg = registry(
            {"label": "flaky", "sentinel": str(tmp_path / "s1"), "fail_times": 1},
            {"label": "steady"},
        )
        summary = run(reg, workers=2, max_retries=2)
        assert not summary.errors
        assert sorted(row["label"] for row in summary.results["scripted"].rows) == [
            "flaky", "steady",
        ]

    def test_sigkilled_worker_recovers_with_identical_rows(self, tmp_path):
        """A SIGKILL'd worker breaks the whole pool; the retry round's fresh
        pool must complete the run with rows identical to a serial run."""
        specs = [
            {"label": "victim", "sentinel": str(tmp_path / "kill"), "fail_times": 1,
             "kill": True},
            {"label": "b1"},
            {"label": "b2"},
            {"label": "b3"},
        ]
        parallel = run(registry(*specs), workers=2, max_retries=2)
        assert not parallel.errors
        serial_specs = [dict(spec, fail_times=0) for spec in specs]
        serial = run(registry(*serial_specs), workers=1)
        assert sorted(
            row["label"] for row in parallel.results["scripted"].rows
        ) == sorted(row["label"] for row in serial.results["scripted"].rows)

    def test_exhausted_retries_report_and_spare_survivors(self, tmp_path):
        reg = registry(
            {"label": "doomed", "sentinel": str(tmp_path / "kill"), "fail_times": 99,
             "kill": True},
            {"label": "survivor"},
        )
        summary = run(reg, workers=2, max_retries=1)
        [error] = summary.errors
        assert error.label == "doomed"
        assert error.attempts == 2
        assert [row["label"] for row in summary.results["scripted"].rows] == ["survivor"]

    def test_parallel_timeout_enforced_in_workers(self):
        reg = registry({"label": "slow", "sleep": 5.0}, {"label": "fast"})
        summary = run(reg, workers=2, cell_timeout=0.2)
        [error] = summary.errors
        assert error.error_type == "CellTimeoutError"
        assert [row["label"] for row in summary.results["scripted"].rows] == ["fast"]


class TestCellErrorShape:
    def test_to_dict_is_json_serializable(self):
        error = CellError(
            cell_id="x/y/z/s1", experiment="x", label="y", mode="z", seed=1,
            error_type="RuntimeError", message="boom", traceback="tb",
            attempts=2,
        )
        payload = json.loads(json.dumps(error.to_dict()))
        assert payload["cell_id"] == "x/y/z/s1"
        assert payload["phase"] == "run"


class TestCliErrorSurface:
    def test_run_with_failed_cells_exits_nonzero_with_errors_payload(
        self, tmp_path, capsys
    ):
        """--cell-timeout small enough to kill a real experiment's cells: the
        CLI must finish, emit the errors in the JSON payload, and exit 1."""
        code = cli_main(
            [
                "run", "figure3", "--scale", "smoke",
                "--cache-dir", str(tmp_path / "cache"),
                "--cell-timeout", "0.0001", "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["errors"]
        assert payload["errors"][0]["error_type"] == "CellTimeoutError"
        assert "failed after" in captured.err

    def test_clean_run_has_empty_errors_list(self, tmp_path, capsys):
        code = cli_main(
            [
                "run", "figure3", "--scale", "smoke",
                "--cache-dir", str(tmp_path / "cache"),
                "--max-retries", "1", "--json",
            ]
        )
        assert code == 0
        assert json.loads(capsys.readouterr().out)["errors"] == []
