"""Golden-rows determinism fixture.

``tests/data/golden_rows.json`` holds the exact ``run_scenario`` output rows
of a representative scenario set, captured on the pre-optimization hot path
(PR 2, commit d5cfe10).  The test recomputes every row with the current code
and compares **bit-identically** (floats included): any hot-path change that
alters event ordering, float arithmetic, or replay injection order fails
here, not silently in a table.

Regenerate (only when an intentional behaviour change is being made, never
to paper over a perf-optimization diff)::

    PYTHONPATH=src python tests/pipeline/test_golden_rows.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

import pytest

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_rows.json"


def golden_scenarios() -> List:
    """The scenario set pinned by the fixture (smoke scale: seconds, not minutes).

    Coverage: the default Random original plus the hardest originals (SJF,
    LIFO) and the FQ/FIFO+ mixture; LSTF, simple-priority, and EDF replay
    modes; the Internet2 and RocketFuel topologies.
    """
    from repro.experiments.config import ExperimentScale
    from repro.experiments.table1 import default_scenario
    from repro.pipeline.scenario import Scenario

    scale = ExperimentScale.smoke()
    return [
        default_scenario(scale, name="golden-default"),
        default_scenario(scale, original="sjf", name="golden-sjf"),
        default_scenario(scale, original="fq+fifo+", name="golden-mixture"),
        default_scenario(scale, replay_mode="priority", name="golden-priority"),
        default_scenario(scale, original="lifo", replay_mode="edf", name="golden-edf"),
        Scenario(
            name="golden-rocketfuel",
            scale=scale,
            topology="rocketfuel",
            utilization=0.7,
            original="random",
            reference_gbps=1.0,
        ),
    ]


def compute_rows() -> List[dict]:
    """Run every golden scenario and return its row, in scenario order."""
    from repro.experiments.table1 import run_scenario
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    rows = []
    for scenario in golden_scenarios():
        reset_packet_ids()
        reset_flow_ids()
        rows.append(run_scenario(scenario))
    return rows


def _canonical(rows: List[dict]) -> List[dict]:
    """JSON round-trip, so in-memory rows compare against the stored form."""
    return json.loads(json.dumps(rows))


def test_golden_rows_bit_identical():
    """Current code reproduces the pre-optimization rows exactly."""
    if not GOLDEN_PATH.exists():  # pragma: no cover - fixture ships with repo
        pytest.fail(f"golden fixture missing: {GOLDEN_PATH} (run --regen)")
    expected = json.loads(GOLDEN_PATH.read_text())
    actual = _canonical(compute_rows())
    assert len(actual) == len(expected["rows"])
    for got, want in zip(actual, expected["rows"]):
        # Compare row by row for a readable diff; equality is exact — the
        # floats must match to the last bit.
        assert got == want


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    payload = {
        "_comment": (
            "Exact run_scenario rows captured pre-optimization (PR 2, "
            "d5cfe10). Regenerate only for intentional behaviour changes: "
            "PYTHONPATH=src python tests/pipeline/test_golden_rows.py --regen"
        ),
        "scale": "smoke",
        "rows": _canonical(compute_rows()),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {len(payload['rows'])} golden rows -> {GOLDEN_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
