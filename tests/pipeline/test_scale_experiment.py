"""The scale experiment group and the runner's shard work-stealing.

The determinism contract under test: a stats cell's shard partition is a
pure function of the cell and the cache's ``shard_packets``, partials merge
in shard-index order, and therefore sharded-serial, sharded-parallel, and
single-chunk execution all emit the same rows — with integer counts, maxima,
and sketch-derived percentiles bit-identical across *any* partition, and
float sums bit-identical for a fixed partition.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.scale import STATS_MODE, ScaleDefinition, scale_scenarios
from repro.pipeline.cache import ScheduleCache
from repro.pipeline.runner import run_pipeline

SMOKE = ExperimentScale.smoke()

#: Small enough that every smoke-scale stats cell splits into many shards.
SHARD_PACKETS = 10


def scale_rows(tmp_path, name, **kwargs):
    summary = run_pipeline(
        ["scale"], scale=SMOKE, cache_dir=str(tmp_path / name), **kwargs
    )
    assert not summary.errors, summary.errors
    return summary.results["scale"].rows


class TestScaleGroup:
    def test_cells_cover_both_modes(self):
        definition = ScaleDefinition()
        cells = definition.cells(SMOKE)
        scenarios = scale_scenarios(SMOKE)
        assert len(cells) == 2 * len(scenarios)
        assert {cell.mode for cell in cells} == {STATS_MODE, "lstf"}
        assert {cell.label for cell in cells} == {s.name for s in scenarios}

    def test_rows_are_deterministic_quantities_only(self, tmp_path):
        rows = scale_rows(tmp_path, "plain")
        assert len(rows) == 4
        for row in rows:
            # RSS / events-per-second live in the bench payload, never in rows.
            assert "peak_rss_bytes" not in row
            assert row["packets"] > 0


class TestShardDeterminism:
    def test_serial_matches_parallel_work_stealing(self, tmp_path):
        serial = scale_rows(
            tmp_path, "serial", workers=1, shard_packets=SHARD_PACKETS
        )
        parallel = scale_rows(
            tmp_path, "parallel", workers=3, shard_packets=SHARD_PACKETS
        )
        assert serial == parallel

    def test_partition_independent_fields_are_bit_identical(self, tmp_path):
        sharded = scale_rows(tmp_path, "sharded", shard_packets=SHARD_PACKETS)
        whole = scale_rows(tmp_path, "whole", shard_packets=10**9)
        assert len(sharded) == len(whole)
        for left, right in zip(sharded, whole):
            assert set(left) == set(right)
            for column in left:
                if column == "mean_delay":
                    # Chunk-folded float sum: deterministic per partition,
                    # but not bit-identical across partitions.
                    assert left[column] == pytest.approx(right[column], rel=1e-12)
                else:
                    # Counts, maxima, and sketch percentiles merge exactly,
                    # so they cannot depend on the partition at all.
                    assert left[column] == right[column]

    def test_repeated_runs_are_bit_identical(self, tmp_path):
        first = scale_rows(tmp_path, "first", shard_packets=SHARD_PACKETS)
        second = scale_rows(tmp_path, "second", shard_packets=SHARD_PACKETS)
        assert first == second


class TestCellShards:
    def test_partition_is_pure_function_of_count_and_shard_packets(self, tmp_path):
        definition = ScaleDefinition()
        cache = ScheduleCache(tmp_path / "cache", shard_packets=SHARD_PACKETS)
        stats_cell = next(
            cell for cell in definition.cells(SMOKE) if cell.mode == STATS_MODE
        )
        shards = definition.cell_shards(stats_cell, SMOKE, cache)
        assert len(shards) > 1
        packets = definition.run_cell(stats_cell, SMOKE, cache).row["packets"]
        assert shards[0]["start"] == 0
        assert shards[-1]["stop"] == packets
        for index, shard in enumerate(shards):
            assert shard["index"] == index
            assert shard["stop"] - shard["start"] <= SHARD_PACKETS
        # The cache persisted this entry sharded with the same chunking, so
        # every shard spec carries its own cursorable file.
        assert all(shard["file"] for shard in shards)
        # A second planning pass returns the identical partition.
        assert definition.cell_shards(stats_cell, SMOKE, cache) == shards

    def test_replay_cells_never_shard(self, tmp_path):
        definition = ScaleDefinition()
        cache = ScheduleCache(tmp_path / "cache", shard_packets=SHARD_PACKETS)
        replay_cell = next(
            cell for cell in definition.cells(SMOKE) if cell.mode != STATS_MODE
        )
        assert definition.cell_shards(replay_cell, SMOKE, cache) == []

    def test_single_chunk_cells_run_whole(self, tmp_path):
        definition = ScaleDefinition()
        cache = ScheduleCache(tmp_path / "cache")  # default: one huge chunk
        stats_cell = next(
            cell for cell in definition.cells(SMOKE) if cell.mode == STATS_MODE
        )
        assert definition.cell_shards(stats_cell, SMOKE, cache) == []

    def test_shard_execution_merges_to_whole_cell_row(self, tmp_path):
        definition = ScaleDefinition()
        cache = ScheduleCache(tmp_path / "cache", shard_packets=SHARD_PACKETS)
        stats_cell = next(
            cell for cell in definition.cells(SMOKE) if cell.mode == STATS_MODE
        )
        shards = definition.cell_shards(stats_cell, SMOKE, cache)
        partials = [
            definition.run_cell_shard(stats_cell, shard, SMOKE, cache)
            for shard in shards
        ]
        merged = definition.merge_shards(stats_cell, SMOKE, partials)
        whole = definition.run_cell(stats_cell, SMOKE, cache)
        # run_cell folds the same partition serially, so the rows agree to
        # the bit — including the float mean.
        assert merged.row == whole.row
