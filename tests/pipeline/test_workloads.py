"""Tests for the workload subsystem's pipeline integration.

Covers the acceptance criteria of the pluggable-workload refactor:

* every pre-refactor scenario's schedule-cache key is unchanged (pinned
  against golden keys captured from the pre-refactor code), so warm caches
  stay warm across the refactor;
* cold parallel runs record each (topology, scheduler, workload, seed) key
  exactly once (the two-phase runner);
* the adversarial experiment group is registered, runs with replay metrics
  per scenario, and is row-for-row identical in parallel and serial runs;
* ``--replicates`` emits mean/stddev/95% CI aggregates;
* the CLI exposes the workload registry and workload overrides.
"""

import json
import os
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import ExperimentScale
from repro.pipeline import (
    ScheduleCache,
    default_registry,
    override_workload,
    run_pipeline,
    scenario_cache_key,
)
from repro.pipeline.scenario import WORKLOAD_FACTORIES, Scenario
from repro.traffic import WORKLOADS

SMOKE = ExperimentScale.smoke()
GOLDEN_KEYS_PATH = Path(__file__).parent.parent / "data" / "golden_cache_keys.json"

#: Experiments whose cells all replay the *same* default scenario schedule.
SHARED_SCHEDULE_EXPERIMENTS = ["table1-priority", "ablation-edf", "ablation-omniscient"]


def _replay_scenarios(scale):
    from repro.__main__ import _replay_scenarios as lister

    return lister(scale)


# --------------------------------------------------------------------- #
# Cache-key stability across the registry refactor
# --------------------------------------------------------------------- #
class TestCacheKeyStability:
    def test_all_pre_refactor_scenario_keys_unchanged(self):
        """Keys captured from the pre-refactor WORKLOAD_FACTORIES code must
        be bit-identical under the registry-backed workload subsystem."""
        golden = json.loads(GOLDEN_KEYS_PATH.read_text())
        assert golden, "golden key fixture is empty"
        checked = 0
        for scale_name, scale in (("smoke", SMOKE), ("quick", ExperimentScale.quick())):
            scenarios = _replay_scenarios(scale)
            for label, key in golden.items():
                prefix, _, name = label.partition("/")
                if prefix != scale_name:
                    continue
                assert name in scenarios, f"pre-refactor scenario {name} disappeared"
                assert scenario_cache_key(scenarios[name]) == key, name
                checked += 1
        assert checked == len(golden)

    def test_warm_cache_from_pre_refactor_record_re_records_nothing(self, tmp_path):
        """A disk entry stored under the pre-refactor key is found warm."""
        golden = json.loads(GOLDEN_KEYS_PATH.read_text())
        cache_dir = tmp_path / "cache"
        cold = run_pipeline(["table1-priority"], scale=SMOKE, cache_dir=str(cache_dir))
        assert cold.records_computed == 1
        # The entry landed under the exact key the pre-refactor code used...
        key = golden["smoke/I2-1G-10G@70"]
        assert ScheduleCache(cache_dir).path_for(key).exists()
        # ...so replaying against it re-records zero cells.
        warm = run_pipeline(["table1-priority"], scale=SMOKE, cache_dir=str(cache_dir))
        assert warm.records_computed == 0
        assert cold.results["table1-priority"].rows == warm.results["table1-priority"].rows

    def test_perturbed_workloads_never_share_unperturbed_keys(self):
        base = Scenario(name="x", scale=SMOKE, workload_name="paper-default")
        perturbed = Scenario(name="x", scale=SMOKE, workload_name="heavy-tail-extreme")
        assert scenario_cache_key(base) != scenario_cache_key(perturbed)

    def test_workload_factories_view_tracks_registry(self):
        assert set(WORKLOAD_FACTORIES) == set(WORKLOADS.names())
        distribution = WORKLOAD_FACTORIES["paper-default"]()
        assert distribution.mean() > 0
        with pytest.raises(KeyError):
            WORKLOAD_FACTORIES["nope"]


class TestFaultPlanCacheKeys:
    """The fault layer's cache-key contract: absent or empty plans leave
    every key bit-identical; only a non-empty plan perturbs it."""

    def test_empty_fault_schedule_leaves_key_bit_identical(self):
        base = Scenario(name="x", scale=SMOKE, utilization=0.5)
        empty = Scenario(name="x", scale=SMOKE, utilization=0.5, faults="empty")
        seeded = Scenario(
            name="x", scale=SMOKE, utilization=0.5, faults="empty", fault_seed=99
        )
        assert scenario_cache_key(empty) == scenario_cache_key(base)
        assert scenario_cache_key(seeded) == scenario_cache_key(base)

    def test_nonempty_fault_schedule_and_seed_perturb_key(self):
        base = Scenario(name="x", scale=SMOKE, utilization=0.5)
        faulty = Scenario(name="x", scale=SMOKE, utilization=0.5, faults="loss-5pct")
        reseeded = Scenario(
            name="x", scale=SMOKE, utilization=0.5, faults="loss-5pct", fault_seed=1
        )
        keys = {scenario_cache_key(s) for s in (base, faulty, reseeded)}
        assert len(keys) == 3

    def test_fault_seed_alone_never_perturbs_key(self):
        base = Scenario(name="x", scale=SMOKE, utilization=0.5)
        reseeded = Scenario(name="x", scale=SMOKE, utilization=0.5, fault_seed=7)
        assert scenario_cache_key(reseeded) == scenario_cache_key(base)


# --------------------------------------------------------------------- #
# Two-phase runner: record once, replay everywhere
# --------------------------------------------------------------------- #
class TestTwoPhaseRunner:
    def test_cold_parallel_run_records_each_key_exactly_once(self, tmp_path):
        """Six cells across three experiments share ONE schedule; a cold
        2-worker run must record it exactly once (no duplicate-record race)."""
        summary = run_pipeline(
            SHARED_SCHEDULE_EXPERIMENTS,
            scale=SMOKE,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
        )
        assert summary.cells == 6
        assert summary.records_computed == 1
        assert summary.cache_hits == summary.cells
        assert ScheduleCache(tmp_path / "cache").disk_entries() == 1

    def test_cold_parallel_records_match_unique_scenario_keys(self, tmp_path):
        registry = default_registry()
        cells = registry.get("adversarial").cells(SMOKE)
        unique = {scenario_cache_key(cell.spec) for cell in cells}
        summary = run_pipeline(
            ["adversarial"], scale=SMOKE, workers=2, cache_dir=str(tmp_path / "cache")
        )
        assert summary.records_computed == len(unique)

    def test_two_phase_rows_match_serial_rows(self, tmp_path):
        serial = run_pipeline(SHARED_SCHEDULE_EXPERIMENTS, scale=SMOKE, workers=1)
        parallel = run_pipeline(
            SHARED_SCHEDULE_EXPERIMENTS,
            scale=SMOKE,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
        )
        for name in SHARED_SCHEDULE_EXPERIMENTS:
            assert serial.results[name].rows == parallel.results[name].rows


# --------------------------------------------------------------------- #
# The adversarial scenario group
# --------------------------------------------------------------------- #
class TestAdversarialExperiment:
    def test_registered_with_at_least_four_adversarial_scenarios(self):
        registry = default_registry()
        assert "adversarial" in registry
        cells = registry.get("adversarial").cells(SMOKE)
        workloads = {cell.spec.workload_name for cell in cells}
        assert len(workloads) >= 4
        assert all(WORKLOADS.get(name).group == "adversarial" for name in workloads)

    def test_rows_report_replay_metrics_per_scenario(self):
        summary = run_pipeline(["adversarial"], scale=SMOKE, workers=1)
        rows = summary.results["adversarial"].rows
        assert len(rows) >= 4
        for row in rows:
            assert 0.0 <= row["fraction_overdue"] <= 1.0
            assert 0.0 <= row["fraction_overdue_beyond_T"] <= row["fraction_overdue"]
            assert row["workload"] in WORKLOADS
        deadline_rows = [row for row in rows if row["deadline_flows"]]
        assert deadline_rows, "the deadline-tagged scenario produced no deadline flows"
        for row in deadline_rows:
            assert 0.0 <= row["deadline_met_replay"] <= 1.0

    def test_parallel_adversarial_identical_to_serial(self, tmp_path):
        serial = run_pipeline(["adversarial"], scale=SMOKE, workers=1)
        parallel = run_pipeline(
            ["adversarial"], scale=SMOKE, workers=2, cache_dir=str(tmp_path / "cache")
        )
        assert parallel.workers == 2
        assert serial.results["adversarial"].rows == parallel.results["adversarial"].rows

    def test_workload_override_pins_and_filters(self):
        filtered = run_pipeline(
            ["adversarial"], scale=SMOKE, workers=1, workload="incast-burst"
        )
        rows = filtered.results["adversarial"].rows
        assert rows and all(row["workload"] == "incast-burst" for row in rows)
        pinned = run_pipeline(
            ["ablation-edf"], scale=SMOKE, workers=1, workload="on-off-jamming"
        )
        assert pinned.cells == 2  # both modes replay the overridden scenario

    def test_workload_override_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown workload"):
            run_pipeline(["adversarial"], scale=SMOKE, workload="nope")

    def test_override_workload_helper_suffixes_names(self):
        scenario = Scenario(name="row", scale=SMOKE)
        (pinned,) = override_workload([scenario], "incast-burst")
        assert pinned.workload_name == "incast-burst"
        assert pinned.name == "row+incast-burst"
        (unchanged,) = override_workload([pinned], "incast-burst")
        assert unchanged.name == "row+incast-burst"


# --------------------------------------------------------------------- #
# Replicate aggregation
# --------------------------------------------------------------------- #
class TestReplicateAggregation:
    def test_replicated_results_carry_mean_stddev_ci(self):
        summary = run_pipeline(["ablation-edf"], scale=SMOKE, workers=1, replicates=3)
        aggregates = summary.results["ablation-edf"].aggregates
        assert aggregates
        for aggregate in aggregates:
            assert aggregate["replicates"] == 3
            assert "fraction_overdue_mean" in aggregate
            assert aggregate["fraction_overdue_stddev"] >= 0.0
            assert aggregate["fraction_overdue_ci95"] >= 0.0
        # One aggregate row per (scenario, mode) pair.
        assert len(aggregates) == 2

    def test_single_replicate_runs_have_no_aggregates(self):
        summary = run_pipeline(["ablation-edf"], scale=SMOKE, workers=1)
        assert summary.results["ablation-edf"].aggregates == []

    def test_adversarial_replicates_aggregate_per_scenario(self):
        summary = run_pipeline(["adversarial"], scale=SMOKE, workers=1, replicates=2)
        result = summary.results["adversarial"]
        base_rows = {row["scenario"] for row in result.rows if "#r" not in row["scenario"]}
        assert {a["scenario"] for a in result.aggregates} == base_rows


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestWorkloadCli:
    def test_list_workloads(self, capsys):
        assert cli_main(["list", "--workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-default", "incast-burst", "on-off-jamming", "deadline-tagged"):
            assert name in out

    def test_list_workloads_json(self, capsys):
        assert cli_main(["list", "--workloads", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["adversarial-combo"]["group"] == "adversarial"
        assert by_name["paper-default"]["mean_flow_kb"] > 0

    def test_adversarial_listed_and_runnable(self, tmp_path, capsys):
        assert cli_main(["list", "--scale", "smoke"]) == 0
        assert "adversarial" in capsys.readouterr().out
        code = cli_main(
            [
                "run",
                "adversarial",
                "--scale",
                "smoke",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["adversarial"]["rows"]
        assert len(rows) >= 4
        assert all("fraction_overdue_beyond_T" in row for row in rows)

    def test_run_workload_override_and_quick_alias(self, tmp_path, capsys):
        code = cli_main(
            [
                "run",
                "ablation-edf",
                "--scale",
                "smoke",
                "--workload",
                "heavy-tail-extreme",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ablation-edf"]["rows"]

    def test_quick_flag_is_a_scale_alias(self, tmp_path, capsys):
        code = cli_main(
            [
                "run",
                "ablation-omniscient",
                "--quick",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ablation-omniscient"]["scale"] == "quick"

    def test_run_rejects_unknown_workload(self, tmp_path, capsys):
        code = cli_main(
            [
                "run",
                "adversarial",
                "--scale",
                "smoke",
                "--workload",
                "nope",
                "--cache-dir",
                str(tmp_path / "c"),
            ]
        )
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_run_replicates_json_includes_aggregates(self, tmp_path, capsys):
        code = cli_main(
            [
                "run",
                "ablation-edf",
                "--scale",
                "smoke",
                "--replicates",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        aggregates = payload["ablation-edf"]["aggregates"]
        assert aggregates and all(a["replicates"] == 2 for a in aggregates)
