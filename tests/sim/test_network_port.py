"""Tests for network construction, ports, store-and-forward timing, and drops."""

import pytest

from repro.schedulers import uniform_factory
from repro.schedulers.lstf import LstfScheduler
from repro.sim import Simulator, Tracer
from repro.sim.packet import Packet
from repro.topology import Topology, linear_topology, single_switch_topology
from repro.utils import mbps, transmission_delay


def build(topo, scheduler="fifo", buffer_bytes=None):
    sim = Simulator()
    tracer = Tracer()
    network = topo.build(
        sim, uniform_factory(scheduler), tracer=tracer, default_buffer_bytes=buffer_bytes
    )
    return sim, tracer, network


class TestNetworkConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_host("a")
        with pytest.raises(ValueError):
            build(topo)

    def test_link_to_unknown_node_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_link("a", "ghost", mbps(1))
        with pytest.raises(ValueError):
            build(topo)

    def test_duplicate_link_rejected(self):
        sim = Simulator()
        topo = linear_topology(num_routers=2, bandwidth_bps=mbps(1))
        network = topo.build(sim, uniform_factory("fifo"))
        with pytest.raises(ValueError):
            network.add_link("r0", "r1", mbps(1))

    def test_hosts_and_routers_partitioned(self):
        topo = linear_topology(num_routers=3, bandwidth_bps=mbps(1), hosts_per_end=2)
        _, _, network = build(topo)
        assert len(network.hosts()) == 4
        assert len(network.routers()) == 3
        with pytest.raises(TypeError):
            network.host("r0")

    def test_full_duplex_ports_created(self):
        topo = linear_topology(num_routers=2, bandwidth_bps=mbps(1))
        _, _, network = build(topo)
        assert "r1" in network.nodes["r0"].ports
        assert "r0" in network.nodes["r1"].ports


class TestStoreAndForwardTiming:
    def test_single_packet_latency_equals_tmin(self):
        topo = linear_topology(num_routers=2, bandwidth_bps=mbps(10))
        sim, tracer, network = build(topo)
        packet = Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000)
        sim.schedule_at(0.0, network.host("src0").send, packet)
        sim.run()
        assert packet.egress_time == pytest.approx(network.tmin(1000, "src0", "dst0"))
        assert packet.total_queueing_delay == pytest.approx(0.0, abs=1e-12)

    def test_back_to_back_packets_queue_at_source_port(self):
        topo = linear_topology(num_routers=2, bandwidth_bps=mbps(10))
        sim, tracer, network = build(topo)
        packets = [
            Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000) for _ in range(3)
        ]
        for packet in packets:
            sim.schedule_at(0.0, network.host("src0").send, packet)
        sim.run()
        tx = transmission_delay(1000, mbps(10))
        # Packets are serialized one after the other on the access link, then
        # pipeline through the empty downstream links.
        exits = sorted(p.egress_time for p in packets)
        assert exits[1] - exits[0] == pytest.approx(tx)
        assert exits[2] - exits[1] == pytest.approx(tx)

    def test_propagation_delay_adds_to_latency(self):
        topo = Topology("two-hosts")
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b", mbps(10), propagation_delay=0.005)
        sim, _, network = build(topo)
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        sim.schedule_at(0.0, network.host("a").send, packet)
        sim.run()
        assert packet.egress_time == pytest.approx(
            transmission_delay(1000, mbps(10)) + 0.005
        )

    def test_hop_records_cover_path(self):
        topo = linear_topology(num_routers=3, bandwidth_bps=mbps(10))
        sim, _, network = build(topo)
        packet = Packet(flow_id=1, src="src0", dst="dst0", size_bytes=500)
        sim.schedule_at(0.0, network.host("src0").send, packet)
        sim.run()
        assert packet.path_taken == ["src0", "r0", "r1", "r2"]
        for hop in packet.hops:
            assert hop.start_service_time is not None
            assert hop.departure_time is not None


class TestTracer:
    def test_tracer_counts_ingress_and_egress(self):
        topo = single_switch_topology(num_hosts=3, bandwidth_bps=mbps(10))
        sim, tracer, network = build(topo)
        for i in range(4):
            packet = Packet(flow_id=i, src="h0", dst="h1", size_bytes=500)
            sim.schedule_at(0.0, network.host("h0").send, packet)
        sim.run()
        assert len(tracer.sent) == 4
        assert len(tracer.delivered) == 4
        assert tracer.delivery_ratio() == 1.0
        assert not tracer.dropped


class TestFiniteBuffersAndDrops:
    def test_drop_tail_when_fifo_buffer_full(self):
        topo = single_switch_topology(num_hosts=2, bandwidth_bps=mbps(1))
        # Buffer that holds only two 1000-byte packets at the switch/host ports.
        sim, tracer, network = build(topo, scheduler="fifo", buffer_bytes=2000)
        packets = [
            Packet(flow_id=1, src="h0", dst="h1", size_bytes=1000) for _ in range(6)
        ]
        for packet in packets:
            sim.schedule_at(0.0, network.host("h0").send, packet)
        sim.run()
        assert len(tracer.dropped) > 0
        assert len(tracer.delivered) + len(tracer.dropped) == 6
        for packet in tracer.dropped:
            assert packet.dropped
            assert packet.drop_node is not None

    def test_lstf_drops_highest_slack_packet(self):
        topo = single_switch_topology(num_hosts=2, bandwidth_bps=mbps(1))
        sim, tracer, network = build(topo, scheduler="lstf", buffer_bytes=2500)
        # A low-slack packet occupies the transmitter; the queued high-slack
        # packet should be the drop victim when the buffer overflows, even
        # though it arrived before the later low-slack packets.
        size = 1000
        def make(slack):
            packet = Packet(flow_id=1, src="h0", dst="h1", size_bytes=size)
            packet.header.slack = slack
            return packet

        in_service = make(0.001)
        high_slack = make(100.0)
        later_low = [make(0.001), make(0.001)]
        for packet in [in_service, high_slack] + later_low:
            sim.schedule_at(0.0, network.host("h0").send, packet)
        sim.run()
        assert high_slack in tracer.dropped
        assert in_service not in tracer.dropped
        assert all(packet not in tracer.dropped for packet in later_low)

    def test_infinite_buffer_never_drops(self):
        topo = single_switch_topology(num_hosts=2, bandwidth_bps=mbps(1))
        sim, tracer, network = build(topo, scheduler="fifo", buffer_bytes=None)
        for _ in range(50):
            packet = Packet(flow_id=1, src="h0", dst="h1", size_bytes=1000)
            sim.schedule_at(0.0, network.host("h0").send, packet)
        sim.run()
        assert not tracer.dropped
        assert len(tracer.delivered) == 50


class TestSourceRouting:
    def test_packet_follows_explicit_route(self):
        # A diamond where the explicit route takes the longer branch.
        topo = Topology("diamond")
        for name in ("a", "b"):
            topo.add_host(name)
        for name in ("r1", "r2", "r3"):
            topo.add_router(name)
        topo.add_link("a", "r1", mbps(10))
        topo.add_link("r1", "r2", mbps(10))
        topo.add_link("r2", "b", mbps(10))
        topo.add_link("r1", "r3", mbps(10))
        topo.add_link("r3", "r2", mbps(10))
        sim, _, network = build(topo)
        packet = Packet(
            flow_id=1,
            src="a",
            dst="b",
            size_bytes=500,
            route=["a", "r1", "r3", "r2", "b"],
        )
        sim.schedule_at(0.0, network.host("a").send, packet)
        sim.run()
        assert packet.path_taken == ["a", "r1", "r3", "r2"]

    def test_misrouted_packet_raises(self):
        topo = single_switch_topology(num_hosts=3, bandwidth_bps=mbps(10))
        sim, _, network = build(topo)
        packet = Packet(
            flow_id=1, src="h0", dst="h1", size_bytes=500, route=["h0", "switch", "h2"]
        )
        sim.schedule_at(0.0, network.host("h0").send, packet)
        with pytest.raises(RuntimeError):
            sim.run()
