"""Tests for links, routing tables, and tmin computation."""

import networkx as nx
import pytest

from repro.schedulers import uniform_factory
from repro.sim import Simulator
from repro.sim.link import Link
from repro.sim.routing import RoutingError, RoutingTable
from repro.topology import linear_topology
from repro.utils import mbps, transmission_delay


class TestLink:
    def test_transmission_and_latency(self):
        link = Link("a", "b", bandwidth_bps=mbps(10), propagation_delay=0.001)
        assert link.transmission_delay(1250) == pytest.approx(0.001)
        assert link.latency(1250) == pytest.approx(0.002)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth_bps=1e6, propagation_delay=-1)

    def test_name(self):
        assert Link("a", "b", 1e6).name == "a->b"


class TestRoutingTable:
    def _graph(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")])
        return graph

    def test_shortest_path_and_next_hop(self):
        table = RoutingTable(self._graph())
        assert table.path("a", "c") in (["a", "b", "c"], ["a", "d", "c"])
        assert table.next_hop("a", "c") in ("b", "d")
        assert table.hop_count("a", "c") == 2

    def test_path_to_self(self):
        table = RoutingTable(self._graph())
        assert table.path("a", "a") == ["a"]
        with pytest.raises(RoutingError):
            table.next_hop("a", "a")

    def test_missing_route_raises(self):
        graph = self._graph()
        graph.add_node("isolated")
        table = RoutingTable(graph)
        with pytest.raises(RoutingError):
            table.path("a", "isolated")

    def test_paths_are_cached_and_deterministic(self):
        table = RoutingTable(self._graph())
        assert table.path("a", "c") is table.path("a", "c")


class TestNetworkTmin:
    def test_tmin_matches_hand_computation(self):
        topo = linear_topology(num_routers=2, bandwidth_bps=mbps(10), hosts_per_end=1)
        sim = Simulator()
        network = topo.build(sim, uniform_factory("fifo"))
        size = 1000.0
        # Path: src0 -> r0 -> r1 -> dst0, three links all at 10 Mbps, no
        # propagation delay.
        expected = 3 * transmission_delay(size, mbps(10))
        assert network.tmin(size, "src0", "dst0") == pytest.approx(expected)

    def test_tmin_single_node_path_is_zero(self):
        topo = linear_topology(num_routers=2, bandwidth_bps=mbps(10))
        network = topo.build(Simulator(), uniform_factory("fifo"))
        assert network.tmin_along(1000.0, ["r0"]) == 0.0

    def test_bottleneck_transmission_time_uses_slowest_link(self):
        topo = linear_topology(
            num_routers=2, bandwidth_bps=mbps(1), access_bandwidth_bps=mbps(100)
        )
        network = topo.build(Simulator(), uniform_factory("fifo"))
        assert network.bottleneck_transmission_time(1460) == pytest.approx(
            transmission_delay(1460, mbps(1))
        )

    def test_tmin_remaining_honours_source_route(self):
        topo = linear_topology(num_routers=3, bandwidth_bps=mbps(10))
        network = topo.build(Simulator(), uniform_factory("fifo"))
        from repro.sim.packet import Packet

        packet = Packet(
            flow_id=1,
            src="src0",
            dst="dst0",
            size_bytes=1000,
            route=["src0", "r0", "r1", "r2", "dst0"],
        )
        remaining = network.tmin_remaining(packet, "r1")
        expected = network.tmin_along(1000, ["r1", "r2", "dst0"])
        assert remaining == pytest.approx(expected)
