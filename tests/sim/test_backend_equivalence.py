"""Cross-backend equivalence: every backend must match the reference engine.

The ``SimBackend`` contract (``docs/backends.md``) is bit-identity: a replay
run under any registered backend must produce the *exact* rows the reference
python engine produces — same floats, same tie-breaks, same record order.
These tests hold the vectorized backend to that contract on a recorded
fixture schedule (the golden test) and on adversarial synthetic record sets
(the hypothesis property test), and check the seam itself: fallback for
unsupported configurations, clean configuration errors, and the
cancel-then-peek lazy-discard semantics every backend's simulator must obey.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.replay import (
    ReplayExperiment,
    evaluate_replay,
    replay_schedule,
)
from repro.core.replay_compiled import CompiledBackend
from repro.core.replay_vectorized import VectorizedBackend
from repro.core.schedule import HopTiming, PacketRecord, Schedule
from repro.pipeline.scenario import PipelineConfigError
from repro.sim.backend import backend_names, get_backend, resolve_backend
from repro.sim.compiled import kernel_available
from repro.topology import dumbbell_topology
from repro.topology.base import LinkSpec, NodeSpec, Topology
from repro.traffic import WorkloadSpec, paper_default_workload
from repro.utils import mbps

#: Modes the flat-kernel backends implement (lstf-preemptive falls back).
VECTORIZED_MODES = ("lstf", "edf", "priority", "omniscient")

#: Backend classes under equivalence test, keyed by registry name.  The
#: compiled backend is skip-marked — not silently dropped — when its kernel
#: extension is not built, so a toolchain-less environment reports the gap.
OPTIMIZED_BACKEND_CLASSES = {
    "vectorized": VectorizedBackend,
    "compiled": CompiledBackend,
}

OPTIMIZED_BACKENDS = (
    pytest.param("vectorized", id="vectorized"),
    pytest.param(
        "compiled",
        id="compiled",
        marks=pytest.mark.skipif(
            not kernel_available(),
            reason="compiled kernel extension not built; build it with "
            "`python tools/build_compiled.py` (requires a C toolchain)",
        ),
    ),
)


def small_workload(duration=0.25, utilization=0.6):
    return WorkloadSpec(
        utilization=utilization,
        reference_bandwidth_bps=mbps(10),
        size_distribution=paper_default_workload(),
        transport="udp",
        duration=duration,
    )


@pytest.fixture(scope="module")
def fixture_topology():
    return dumbbell_topology(4, mbps(10), mbps(100))


@pytest.fixture(scope="module")
def recorded_schedule(fixture_topology):
    """A real recorded schedule: the golden fixture for bit-identity."""
    experiment = ReplayExperiment(
        fixture_topology,
        "random",
        small_workload(),
        seed=5,
        sources=[f"src{i}" for i in range(4)],
        destinations=[f"dst{i}" for i in range(4)],
    )
    return experiment.record()


def rows(schedule: Schedule):
    return [record.to_dict() for record in schedule.records()]


# --------------------------------------------------------------------- #
# Golden fixture: bit-identical rows on a real recorded schedule
# --------------------------------------------------------------------- #
class TestGoldenEquivalence:
    @pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
    @pytest.mark.parametrize("mode", VECTORIZED_MODES)
    def test_rows_bit_identical(
        self, fixture_topology, recorded_schedule, mode, backend
    ):
        backend_cls = OPTIMIZED_BACKEND_CLASSES[backend]
        assert backend_cls().supports_replay(mode, topology=fixture_topology)
        reference = replay_schedule(
            fixture_topology, recorded_schedule, mode=mode, backend="python"
        )
        candidate = replay_schedule(
            fixture_topology, recorded_schedule, mode=mode, backend=backend
        )
        # Exact equality, not approx: the contract is bit-identity.
        assert rows(candidate) == rows(reference)

    @pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
    def test_metrics_identical(self, fixture_topology, recorded_schedule, backend):
        reference = evaluate_replay(
            fixture_topology, recorded_schedule, mode="lstf", backend="python"
        )
        candidate = evaluate_replay(
            fixture_topology, recorded_schedule, mode="lstf", backend=backend
        )
        assert candidate.overdue_fraction == reference.overdue_fraction
        assert (
            candidate.overdue_beyond_threshold_fraction
            == reference.overdue_beyond_threshold_fraction
        )

    @pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
    def test_empty_schedule(self, fixture_topology, backend):
        replayed = replay_schedule(
            fixture_topology, Schedule(), mode="lstf", backend=backend
        )
        assert len(replayed) == 0

    @pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
    def test_max_events_budget_bit_identical(
        self, fixture_topology, recorded_schedule, backend
    ):
        """An exhausted event budget must strand the same in-flight packets."""
        reference = replay_schedule(
            fixture_topology,
            recorded_schedule,
            mode="lstf",
            backend="python",
            max_events=500,
        )
        candidate = replay_schedule(
            fixture_topology,
            recorded_schedule,
            mode="lstf",
            backend=backend,
            max_events=500,
        )
        assert rows(candidate) == rows(reference)
        assert len(reference) < len(recorded_schedule)


# --------------------------------------------------------------------- #
# Property test: synthetic record sets, adversarial ties included
# --------------------------------------------------------------------- #
@st.composite
def record_sets(draw, paths):
    """A list of synthetic PacketRecords routed over ``paths``.

    Ingress times are drawn from a tiny grid so identical timestamps — the
    tie-breaking cases the ``(time, seq)`` contract exists for — occur
    constantly rather than never.
    """
    count = draw(st.integers(min_value=0, max_value=12))
    records = []
    for packet_id in range(count):
        path = list(draw(st.sampled_from(paths)))
        ingress = draw(st.sampled_from([0.0, 1e-4, 2e-4, 1e-3]))
        span = draw(st.floats(min_value=1e-6, max_value=0.5, allow_nan=False))
        size = draw(st.floats(min_value=40.0, max_value=9000.0, allow_nan=False))
        hops = []
        t = ingress
        for node in path[:-1]:
            wait = draw(st.sampled_from([0.0, 1e-5]))
            start = draw(st.sampled_from([True, True, False]))
            hops.append(
                HopTiming(
                    node=node,
                    arrival_time=t,
                    start_service_time=t + wait if start else None,
                    departure_time=t + wait + 1e-5,
                )
            )
            t += wait + 1e-5
        records.append(
            PacketRecord(
                packet_id=packet_id,
                flow_id=draw(st.integers(min_value=0, max_value=3)),
                src=path[0],
                dst=path[-1],
                size_bytes=size,
                ingress_time=ingress,
                output_time=ingress + span,
                path=path,
                hops=hops,
                flow_size_bytes=draw(
                    st.one_of(
                        st.none(),
                        st.floats(min_value=40.0, max_value=1e6, allow_nan=False),
                    )
                ),
                deadline=draw(
                    st.one_of(
                        st.none(),
                        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    )
                ),
            )
        )
    return records


class TestPropertyEquivalence:
    @pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
    @pytest.mark.parametrize("mode", VECTORIZED_MODES)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_record_sets(
        self, fixture_topology, recorded_schedule, mode, backend, data
    ):
        # Harvest real source-routed paths so every synthetic record is
        # routable on the fixture topology.
        paths = sorted({tuple(r.path) for r in recorded_schedule.records()})
        records = data.draw(record_sets(paths))
        schedule = Schedule()
        for record in records:
            schedule.add(record)
        reference = replay_schedule(
            fixture_topology, schedule, mode=mode, backend="python"
        )
        candidate = replay_schedule(
            fixture_topology, schedule, mode=mode, backend=backend
        )
        assert rows(candidate) == rows(reference)


# --------------------------------------------------------------------- #
# The seam: fallback, selection, and configuration errors
# --------------------------------------------------------------------- #
class TestBackendSeam:
    @pytest.mark.parametrize("backend", OPTIMIZED_BACKENDS)
    def test_unsupported_mode_falls_back(
        self, fixture_topology, recorded_schedule, backend
    ):
        instance = OPTIMIZED_BACKEND_CLASSES[backend]()
        assert not instance.supports_replay(
            "lstf-preemptive", topology=fixture_topology
        )
        # replay_schedule silently routes the run to the reference engine.
        reference = replay_schedule(
            fixture_topology, recorded_schedule, mode="lstf-preemptive",
            backend="python",
        )
        candidate = replay_schedule(
            fixture_topology, recorded_schedule, mode="lstf-preemptive",
            backend=backend,
        )
        assert rows(candidate) == rows(reference)

    @pytest.mark.parametrize("name", sorted(OPTIMIZED_BACKEND_CLASSES))
    def test_finite_buffers_decline(self, name):
        topo = Topology(
            name="finite-buffers",
            nodes=[NodeSpec("a", "host"), NodeSpec("r", "router"), NodeSpec("b", "host")],
            links=[
                LinkSpec("a", "r", mbps(10), 0.001, buffer_bytes=15000),
                LinkSpec("r", "b", mbps(10), 0.001),
            ],
        )
        assert not OPTIMIZED_BACKEND_CLASSES[name]().supports_replay(
            "lstf", topology=topo
        )

    @pytest.mark.parametrize("name", sorted(OPTIMIZED_BACKEND_CLASSES))
    def test_finite_default_buffer_declines(self, fixture_topology, name):
        backend = OPTIMIZED_BACKEND_CLASSES[name]()
        assert not backend.supports_replay(
            "lstf", default_buffer_bytes=15000.0, topology=fixture_topology
        )

    def test_unknown_backend_raises(self, fixture_topology, recorded_schedule):
        with pytest.raises(PipelineConfigError, match="unknown backend"):
            replay_schedule(
                fixture_topology, recorded_schedule, mode="lstf", backend="nope"
            )

    def test_scenario_backend_threads_through(self, monkeypatch):
        """``Scenario.backend`` reaches the backend seam on the replay leg."""
        import dataclasses

        from repro.experiments.config import ExperimentScale
        from repro.experiments.table1 import default_scenario
        from repro.pipeline.experiment import replay_scenario

        calls = []
        original = VectorizedBackend.replay

        def spy(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VectorizedBackend, "replay", spy)
        scenario = dataclasses.replace(
            default_scenario(ExperimentScale.quick()), backend="vectorized"
        )
        result = replay_scenario(scenario)
        assert calls, "scenario.backend never reached the vectorized backend"
        assert result.metrics.total_packets > 0


# --------------------------------------------------------------------- #
# Engine contract: cancel-then-peek across every backend's simulator
# --------------------------------------------------------------------- #
class TestSimulatorContract:
    @pytest.mark.parametrize("name", sorted(backend_names()))
    def test_cancel_then_peek(self, name):
        """A directly cancelled event must not shadow live ones (lazy-discard
        reconciliation — the PR's contract addition)."""
        try:
            sim = get_backend(name).make_simulator()
        except PipelineConfigError as error:
            pytest.skip(f"backend {name!r} unavailable in this environment: {error}")
        fired = []
        first = sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(2.0, lambda: fired.append("second"))
        first.cancel()
        assert sim.peek_next_time() == 2.0
        sim.run()
        assert fired == ["second"]
        assert sim.now == 2.0

    def test_resolve_backend_passthrough(self):
        backend = resolve_backend("python")
        assert resolve_backend(backend) is backend
