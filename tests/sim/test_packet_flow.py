"""Tests for the packet and flow models."""

import pytest

from repro.sim.flow import Flow
from repro.sim.packet import HopRecord, Packet, PacketHeader, PacketType


class TestPacket:
    def test_packet_ids_are_unique_and_increasing(self):
        first = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        second = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        assert second.packet_id > first.packet_id

    def test_hop_records_accumulate_queueing_delay(self):
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        hop = packet.record_arrival("r1", 1.0)
        hop.start_service_time = 1.5
        hop.departure_time = 1.6
        hop2 = packet.record_arrival("r2", 2.0)
        hop2.start_service_time = 2.0
        assert packet.total_queueing_delay == pytest.approx(0.5)
        assert packet.path_taken == ["r1", "r2"]

    def test_end_to_end_delay_requires_both_timestamps(self):
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        assert packet.end_to_end_delay is None
        packet.ingress_time = 1.0
        packet.egress_time = 3.5
        assert packet.end_to_end_delay == pytest.approx(2.5)

    def test_ack_flag(self):
        data = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        ack = Packet(flow_id=1, src="b", dst="a", size_bytes=40, ptype=PacketType.ACK)
        assert not data.is_ack
        assert ack.is_ack

    def test_header_copy_is_independent(self):
        from collections import deque

        header = PacketHeader(slack=1.0, hop_output_times=deque([1.0, 2.0]))
        copy = header.copy()
        copy.slack = 9.0
        copy.hop_output_times.popleft()
        assert header.slack == 1.0
        assert list(header.hop_output_times) == [1.0, 2.0]

    def test_hop_record_queueing_delay_without_service(self):
        hop = HopRecord(node="r1", arrival_time=2.0)
        assert hop.queueing_delay == 0.0


class TestFlow:
    def test_num_packets_rounds_up(self):
        assert Flow(src="a", dst="b", size_bytes=1460, start_time=0).num_packets == 1
        assert Flow(src="a", dst="b", size_bytes=1461, start_time=0).num_packets == 2
        assert Flow(src="a", dst="b", size_bytes=14600, start_time=0).num_packets == 10

    def test_packet_sizes_sum_to_flow_size(self):
        flow = Flow(src="a", dst="b", size_bytes=5000, start_time=0)
        sizes = flow.packet_sizes()
        assert sum(sizes) == pytest.approx(5000)
        assert all(size <= flow.mss for size in sizes)
        assert len(sizes) == flow.num_packets

    def test_zero_size_flow_has_no_packets(self):
        flow = Flow(src="a", dst="b", size_bytes=0, start_time=0)
        assert flow.num_packets == 0
        assert flow.packet_sizes() == []

    def test_fct_requires_completion(self):
        flow = Flow(src="a", dst="b", size_bytes=1000, start_time=1.0)
        assert flow.fct is None
        assert not flow.completed
        flow.completion_time = 3.0
        assert flow.completed
        assert flow.fct == pytest.approx(2.0)

    def test_flow_ids_are_unique(self):
        flows = [Flow(src="a", dst="b", size_bytes=1, start_time=0) for _ in range(5)]
        assert len({flow.flow_id for flow in flows}) == 5
