"""The ``"compiled"`` backend: availability, fallback, and error surfaces.

Complements ``test_backend_equivalence.py`` (which holds the compiled
backend to the bit-identity contract when its kernel is built): these tests
pin the *other* half of the acceptance criteria — environments without the
built extension degrade gracefully.  The unbuilt state is simulated by
monkeypatching :mod:`repro.sim.compiled`'s module state, so both halves run
regardless of whether this environment has the toolchain.
"""

import json

import pytest

import repro.sim.compiled as compiled_mod
from repro.__main__ import main
from repro.core.replay import ReplayExperiment, replay_schedule
from repro.core.replay_compiled import CompiledBackend
from repro.pipeline.scenario import PipelineConfigError
from repro.sim.backend import (
    backend_names,
    describe_backends,
    get_backend,
    resolve_backend,
)
from repro.sim.compiled import kernel_available
from repro.topology import dumbbell_topology
from repro.traffic import WorkloadSpec, paper_default_workload
from repro.utils import mbps

needs_kernel = pytest.mark.skipif(
    not kernel_available(),
    reason="compiled kernel extension not built; build it with "
    "`python tools/build_compiled.py` (requires a C toolchain)",
)


@pytest.fixture
def unbuilt_kernel(monkeypatch):
    """Simulate a pure-python install: the kernel extension is absent."""
    monkeypatch.setattr(compiled_mod, "_KERNEL", None)
    monkeypatch.setattr(
        compiled_mod, "_IMPORT_ERROR", "No module named 'repro.sim._kernel'"
    )
    # get_backend caches available instances; drop any cached compiled
    # backend so availability is re-evaluated under the patched state.
    from repro.sim import backend as backend_mod

    monkeypatch.delitem(backend_mod._INSTANCES, "compiled", raising=False)
    yield
    backend_mod._INSTANCES.pop("compiled", None)


@pytest.fixture(scope="module")
def fixture_topology():
    return dumbbell_topology(2, mbps(10), mbps(100))


@pytest.fixture(scope="module")
def recorded_schedule(fixture_topology):
    experiment = ReplayExperiment(
        fixture_topology,
        "fifo",
        WorkloadSpec(
            utilization=0.5,
            reference_bandwidth_bps=mbps(10),
            size_distribution=paper_default_workload(),
            transport="udp",
            duration=0.1,
        ),
        seed=11,
        sources=["src0", "src1"],
        destinations=["dst0", "dst1"],
    )
    return experiment.record()


class TestPurePythonInstallPath:
    """`pip install -e .` with no toolchain: everything still works."""

    def test_compiled_module_imports_without_kernel(self, unbuilt_kernel):
        # The backend module itself must import cleanly (it is a builtin
        # registry entry, resolved lazily on every `list --backends`).
        assert compiled_mod.kernel_available() is False
        assert "not built" in compiled_mod.unavailable_reason()
        assert compiled_mod.kernel_build_info() is None

    def test_python_and_vectorized_still_resolve(self, unbuilt_kernel):
        assert resolve_backend("python").name == "python"
        assert resolve_backend("vectorized").name == "vectorized"

    def test_compiled_is_registered_but_unavailable(self, unbuilt_kernel):
        assert "compiled" in backend_names()
        with pytest.raises(PipelineConfigError, match="unavailable"):
            get_backend("compiled")

    def test_supports_replay_declines_without_kernel(
        self, unbuilt_kernel, fixture_topology
    ):
        assert not CompiledBackend().supports_replay(
            "lstf", topology=fixture_topology
        )

    def test_replay_schedule_falls_back_to_reference(
        self, unbuilt_kernel, fixture_topology, recorded_schedule
    ):
        """The seam contract: an unbuilt kernel declines, results unchanged."""
        reference = replay_schedule(
            fixture_topology, recorded_schedule, mode="lstf", backend="python"
        )
        fallback = replay_schedule(
            fixture_topology,
            recorded_schedule,
            mode="lstf",
            backend=CompiledBackend(),
        )
        assert [r.to_dict() for r in fallback.records()] == [
            r.to_dict() for r in reference.records()
        ]

    def test_describe_backends_reports_reason(self, unbuilt_kernel):
        entries = {entry["name"]: entry for entry in describe_backends()}
        assert entries["python"]["available"] is True
        assert entries["compiled"]["available"] is False
        assert "tools/build_compiled.py" in entries["compiled"]["reason"]
        assert entries["compiled"]["build"] is None


class TestErrorDistinction:
    """Unknown names and unavailable backends are different errors (both exit 2)."""

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(PipelineConfigError) as excinfo:
            get_backend("no-such-backend")
        message = str(excinfo.value)
        assert "unknown backend" in message
        for name in ("python", "vectorized", "compiled"):
            assert name in message

    def test_unavailable_backend_names_itself_and_the_fix(self, unbuilt_kernel):
        with pytest.raises(PipelineConfigError) as excinfo:
            get_backend("compiled")
        message = str(excinfo.value)
        assert "unknown backend" not in message
        assert "compiled" in message and "unavailable" in message
        assert "tools/build_compiled.py" in message

    def test_cli_unknown_backend_exits_2(self, capsys):
        code = main(["run", "table1", "--backend", "no-such-backend", "--no-cache"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_cli_unavailable_backend_exits_2(self, unbuilt_kernel, capsys):
        code = main(["run", "table1", "--backend", "compiled", "--no-cache"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unavailable" in err and "unknown backend" not in err


class TestListBackendsCli:
    def test_table_lists_every_backend(self, capsys):
        assert main(["list", "--backends"]) == 0
        out = capsys.readouterr().out
        for name in ("python", "vectorized", "compiled"):
            assert name in out

    def test_json_carries_availability_and_notes(self, capsys):
        assert main(["list", "--backends", "--json"]) == 0
        entries = {e["name"]: e for e in json.loads(capsys.readouterr().out)}
        assert set(entries) >= {"python", "vectorized", "compiled"}
        assert entries["python"]["available"] is True
        for entry in entries.values():
            assert entry["replay_note"]
            assert ("reason" in entry) and ("build" in entry)

    def test_unavailable_backend_shows_reason_not_error(self, unbuilt_kernel, capsys):
        assert main(["list", "--backends"]) == 0
        out = capsys.readouterr().out
        assert "UNAVAILABLE" in out
        assert "tools/build_compiled.py" in out


@needs_kernel
class TestCompiledKernel:
    """Built-kernel specifics not covered by the equivalence suite."""

    def test_build_info_names_the_toolchain(self):
        info = get_backend("compiled").build_info()
        assert info["toolchain"] == "cpython-c-api"
        assert info["compiler"]
        assert info["kernel_version"] >= 1

    def test_kernel_validates_array_lengths(self):
        from repro.sim.compiled import kernel_run_flat_replay

        kernel = kernel_run_flat_replay()
        with pytest.raises(ValueError, match="off"):
            kernel([0.0], [0], [], [], [], [], 1, [0.0], None)

    def test_kernel_requires_keys_for_static_modes(self):
        from repro.sim.compiled import kernel_run_flat_replay

        kernel = kernel_run_flat_replay()
        with pytest.raises(ValueError, match="hop_key"):
            kernel([0.0], [0, 1], [0], [0], [1e-4], [1e-3], 1, None, None)

    def test_kernel_empty_input(self):
        from repro.sim.compiled import kernel_run_flat_replay

        kernel = kernel_run_flat_replay()
        arr, start, dep, egress, executed = kernel([], [0], [], [], [], [], 0, [])
        assert (arr, start, dep, egress, executed) == ([], [], [], [], 0)

    def test_zero_budget_executes_nothing(self, fixture_topology, recorded_schedule):
        replayed = replay_schedule(
            fixture_topology,
            recorded_schedule,
            mode="lstf",
            backend="compiled",
            max_events=0,
        )
        assert len(replayed) == 0
