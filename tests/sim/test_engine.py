"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.25]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in-window")
    sim.schedule(5.0, fired.append, "after-window")
    sim.run(until=2.0)
    assert fired == ["in-window"]
    assert sim.now == 2.0
    # The remaining event still fires if we continue.
    sim.run()
    assert fired == ["in-window", "after-window"]


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    sim.cancel(event)
    sim.run()
    assert fired == ["kept"]


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == pytest.approx(3.0)


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(first)
    assert sim.peek_next_time() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_empty_run_leaves_clock_at_until():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.cancel(first)
    assert sim.pending_events == 1
    # Cancelling twice must not decrement the live counter again.
    sim.cancel(first)
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_fire_is_a_counter_safe_noop():
    sim = Simulator()
    fired_handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.pending_events == 0
    # The event already fired: cancelling the stale handle must not push the
    # live counter negative (via run() or step()).
    sim.cancel(fired_handle)
    assert sim.pending_events == 0
    stepped_handle = sim.schedule(1.0, lambda: None)
    assert sim.step()
    sim.cancel(stepped_handle)
    assert sim.pending_events == 0


def test_pending_events_decrements_as_events_fire():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run(max_events=3)
    assert sim.pending_events == 1


def test_peek_next_time_does_not_change_live_events():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(first)
    before = sim.pending_events
    assert sim.peek_next_time() == 2.0
    assert sim.pending_events == before
    # Peeking again returns the same answer (idempotent).
    assert sim.peek_next_time() == 2.0


def test_schedule_at_front_precedes_same_time_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, fired.append, "normal-early")
    sim.schedule_at_front(1.0, fired.append, "front")
    sim.schedule_at(1.0, fired.append, "normal-late")
    sim.run()
    # The front event beats even normally scheduled events created *before*
    # it, which is what lets the streaming replay cursor keep the upfront
    # injector's injections-first ordering.
    assert fired == ["front", "normal-early", "normal-late"]


def test_schedule_at_front_orders_among_themselves():
    sim = Simulator()
    fired = []
    sim.schedule_at_front(1.0, fired.append, "first")
    sim.schedule_at_front(1.0, fired.append, "second")
    sim.schedule_at_front(0.5, fired.append, "earlier")
    sim.run()
    assert fired == ["earlier", "first", "second"]


def test_schedule_at_front_rejects_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at_front(0.5, lambda: None)


def test_events_executed_total_accumulates_across_simulators():
    before = Simulator.events_executed_total
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i), lambda: None)
    sim.run()
    other = Simulator()
    other.schedule(0.0, lambda: None)
    assert other.step()
    assert Simulator.events_executed_total - before == 4


# --------------------------------------------------------------------- #
# Lazy-discard invariant: cancel-then-peek (docs/architecture.md and the
# engine docstrings promise this exact behaviour)
# --------------------------------------------------------------------- #
def test_cancel_then_peek_discards_dead_head_but_preserves_live_set():
    sim = Simulator()
    doomed = [sim.schedule(1.0, lambda: None), sim.schedule(1.5, lambda: None)]
    survivor_fired = []
    sim.schedule(2.0, survivor_fired.append, "live")
    for event in doomed:
        sim.cancel(event)
    assert sim.pending_events == 1
    # The heap still physically holds the cancelled entries (lazy discard):
    # its length is an upper bound on pending_events, not equal to it.
    assert len(sim._heap) == 3
    # Peek skips both dead heads, reporting the next *live* time...
    assert sim.peek_next_time() == 2.0
    # ...and structurally drops the dead entries in passing, without
    # touching the live-event counter.
    assert len(sim._heap) == 1
    assert sim.pending_events == 1
    sim.run()
    assert survivor_fired == ["live"]
    assert sim.pending_events == 0


def test_cancel_then_peek_then_front_scheduling_keeps_ordering():
    """After a cancel-then-peek, schedule_at_front events must still fire
    ahead of previously scheduled same-time normal events (the ordering the
    streaming replay injector depends on)."""
    sim = Simulator()
    fired = []
    head = sim.schedule_at(1.0, fired.append, "cancelled-head")
    sim.schedule_at(2.0, fired.append, "normal")
    sim.cancel(head)
    assert sim.peek_next_time() == 2.0  # structurally pops the dead head
    sim.schedule_at_front(2.0, fired.append, "front")
    assert sim.peek_next_time() == 2.0
    sim.run()
    assert fired == ["front", "normal"]


def test_cancel_every_event_then_peek_returns_none():
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(3)]
    for event in events:
        sim.cancel(event)
    assert sim.pending_events == 0
    assert sim.peek_next_time() is None
    assert len(sim._heap) == 0  # peek drained every dead entry
    sim.run()  # nothing left to execute
    assert sim.events_processed == 0


def test_direct_event_cancel_reconciles_on_peek():
    """Cancelling via ``event.cancel()`` (bypassing ``Simulator.cancel``) must
    not leave the live counter permanently stale: peek never reports the dead
    head, and discarding it settles the counter charge."""
    sim = Simulator()
    fired = []
    head = sim.schedule(1.0, fired.append, "dead")
    sim.schedule(2.0, fired.append, "live")
    head.cancel()  # the direct path: live counter not yet charged
    assert sim.pending_events == 2  # stale until the dead entry surfaces
    assert sim.peek_next_time() == 2.0  # never a cancelled event's time
    assert sim.pending_events == 1  # discard settled the charge
    assert sim.peek_next_time() == 2.0  # idempotent; no double decrement
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["live"]
    assert sim.pending_events == 0


def test_direct_event_cancel_reconciles_in_run_and_step():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a").cancel()
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["b"]
    assert sim.pending_events == 0
    # Same through step(): the dead head is skipped and accounted exactly once.
    sim.schedule(3.0, fired.append, "c").cancel()
    sim.schedule(4.0, fired.append, "d")
    assert sim.step()
    assert fired == ["b", "d"]
    assert sim.pending_events == 0


def test_mixed_direct_and_engine_cancel_charges_counter_once():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    sim.cancel(event)  # no-op on an already-cancelled event
    assert sim.pending_events == 2  # direct cancel: not yet reconciled
    assert sim.peek_next_time() == 2.0
    assert sim.pending_events == 1  # charged exactly once
    sim.run()
    assert sim.pending_events == 0
