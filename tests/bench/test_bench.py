"""Tests for the bench subsystem: harness, payload format, regression gate,
and the ``python -m repro bench`` CLI verb."""

import json

import pytest

from repro.bench import (
    BENCH_FORMAT,
    BenchReport,
    ExperimentBench,
    bench_experiment,
    bench_payload,
    find_regressions,
    load_bench,
    rows_digest,
    run_bench,
    save_bench,
    speedup_vs_baseline,
)
from repro.__main__ import main


def _bench(name="table1", wall=1.0, digest="aa", events=1000):
    return ExperimentBench(
        experiment=name,
        wall_time=wall,
        events=events,
        events_per_sec=events / wall,
        cells=2,
        cells_per_sec=2 / wall,
        rows=2,
        rows_digest=digest,
        repeats=[wall],
    )


def _report(**benches):
    report = BenchReport(scale="smoke", repeat=1)
    for name, bench in benches.items():
        report.results[name] = bench
    return report


class TestRowsDigest:
    def test_stable_across_calls(self):
        rows = [{"a": 1.5, "b": "x"}, {"a": 2.5, "b": "y"}]
        assert rows_digest(rows) == rows_digest(list(rows))

    def test_sensitive_to_float_changes(self):
        base = [{"value": 0.1}]
        same_bits = [{"value": 0.1 + 1e-18}]  # rounds back to the same double
        one_ulp_off = [{"value": 0.1 + 2e-17}]  # the neighbouring double
        assert rows_digest(base) == rows_digest(same_bits)
        assert one_ulp_off[0]["value"] != base[0]["value"]
        assert rows_digest(base) != rows_digest(one_ulp_off)

    def test_sensitive_to_row_order(self):
        rows = [{"a": 1}, {"a": 2}]
        assert rows_digest(rows) != rows_digest(rows[::-1])


class TestHarness:
    def test_bench_experiment_smoke(self):
        bench = bench_experiment("table1-priority", scale="smoke", repeat=2)
        assert bench.experiment == "table1-priority"
        assert bench.wall_time > 0
        assert bench.events > 0
        assert bench.events_per_sec > 0
        assert bench.cells == 2
        assert bench.rows == 2
        assert len(bench.repeats) == 2
        assert bench.wall_time == min(bench.repeats)

    def test_repeats_are_deterministic(self):
        first = bench_experiment("table1-priority", scale="smoke", repeat=1)
        second = bench_experiment("table1-priority", scale="smoke", repeat=1)
        assert first.rows_digest == second.rows_digest
        assert first.events == second.events

    def test_run_bench_report_roundtrip(self):
        report = run_bench(["table1-priority"], scale="smoke", repeat=1)
        clone = BenchReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert "table1-priority" in report.format()

    def test_rejects_bad_repeat(self):
        with pytest.raises(ValueError):
            bench_experiment("table1-priority", scale="smoke", repeat=0)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            bench_experiment("no-such-experiment", scale="smoke")


class TestPayloadAndGate:
    def test_payload_save_load_roundtrip(self, tmp_path):
        payload = bench_payload(_report(table1=_bench()), label="test")
        path = tmp_path / "bench.json"
        save_bench(path, payload)
        loaded = load_bench(path)
        assert loaded["format"] == BENCH_FORMAT
        assert loaded["label"] == "test"
        assert loaded["results"]["table1"]["wall_time"] == 1.0

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            load_bench(path)

    def test_speedup_vs_baseline(self):
        current = _report(table1=_bench(wall=1.0, events=1000))
        baseline = {"table1": {"wall_time": 2.0, "events_per_sec": 500.0}}
        speedups = speedup_vs_baseline(current, baseline)
        assert speedups["table1"]["wall_time"] == pytest.approx(2.0)
        assert speedups["table1"]["events_per_sec"] == pytest.approx(2.0)

    def test_gate_passes_within_threshold(self):
        current = _report(table1=_bench(wall=1.2))
        reference = {"results": {"table1": {"wall_time": 1.0, "rows_digest": "aa"}}}
        regressions, mismatches = find_regressions(current, reference, max_slowdown=0.25)
        assert regressions == []
        assert mismatches == []

    def test_gate_flags_slowdown_beyond_threshold(self):
        current = _report(table1=_bench(wall=1.5))
        reference = {"results": {"table1": {"wall_time": 1.0, "rows_digest": "aa"}}}
        regressions, _ = find_regressions(current, reference, max_slowdown=0.25)
        assert len(regressions) == 1
        assert regressions[0].experiment == "table1"
        assert regressions[0].slowdown == pytest.approx(0.5)
        assert "table1" in regressions[0].describe()

    def test_gate_reports_digest_drift_separately(self):
        current = _report(table1=_bench(wall=1.0, digest="bb"))
        reference = {"results": {"table1": {"wall_time": 1.0, "rows_digest": "aa"}}}
        regressions, mismatches = find_regressions(current, reference)
        assert regressions == []
        assert len(mismatches) == 1
        assert "bb" in mismatches[0]

    def test_gate_ignores_experiments_missing_from_reference(self):
        current = _report(table1=_bench(wall=9.0))
        regressions, mismatches = find_regressions(current, {"results": {}})
        assert regressions == [] and mismatches == []


class TestBackendAndRss:
    def test_peak_rss_reported(self):
        from repro.bench import peak_rss_bytes

        observed = peak_rss_bytes()
        assert observed is None or observed > 0
        bench = bench_experiment("table1-priority", scale="smoke", repeat=1)
        assert bench.peak_rss_bytes == pytest.approx(observed, rel=0.5)
        assert bench.to_dict()["peak_rss_bytes"] == bench.peak_rss_bytes

    def test_backend_field_roundtrips(self):
        bench = _bench()
        bench.backend = "vectorized"
        bench.peak_rss_bytes = 12345
        clone = ExperimentBench.from_dict(bench.to_dict())
        assert clone.backend == "vectorized"
        assert clone.peak_rss_bytes == 12345

    def test_from_dict_tolerates_pre_pr6_payloads(self):
        data = _bench().to_dict()
        del data["backend"]
        del data["peak_rss_bytes"]
        clone = ExperimentBench.from_dict(data)
        assert clone.backend is None and clone.peak_rss_bytes is None

    def test_replay_path_summary_in_payload(self):
        report = _report(**{
            "table1:replay@python": _bench(
                name="table1:replay@python", wall=4.0, events=4000, digest="cc"
            ),
            "table1:replay@vectorized": _bench(
                name="table1:replay@vectorized", wall=1.0, events=4000, digest="cc"
            ),
        })
        payload = bench_payload(report)
        summary = payload["replay_path"]
        entry = summary["backends"]["table1:replay@vectorized"]
        assert entry["events_per_sec_ratio"] == pytest.approx(4.0)
        assert entry["rows_bit_identical"] is True
        # Below the 10x target: the gap analysis must be embedded.
        assert "dispatch" in entry["notes"]

    def test_replay_path_summary_absent_without_groups(self):
        payload = bench_payload(_report(table1=_bench()))
        assert "replay_path" not in payload

    def test_run_bench_includes_replay_groups_and_matches_digests(self):
        report = run_bench(
            ["table1-priority"], scale="smoke", repeat=1, backend="vectorized"
        )
        reference = report.results["table1:replay@python"]
        candidate = report.results["table1:replay@vectorized"]
        assert candidate.rows_digest == reference.rows_digest
        assert candidate.events == reference.events
        assert candidate.backend == "vectorized"

    def test_run_bench_rejects_unknown_backend(self):
        from repro.pipeline.scenario import PipelineConfigError

        with pytest.raises(PipelineConfigError):
            run_bench(["table1-priority"], scale="smoke", backend="nope")


class TestThreeWayReplayComparison:
    """The replay-path bench compares every backend this environment can run."""

    def test_available_replay_backends_reference_first(self):
        from repro.bench.harness import available_replay_backends

        names = available_replay_backends()
        assert names[0] == "python"
        assert "vectorized" in names
        # compiled appears exactly when its kernel is built — never errors.
        from repro.sim.compiled import kernel_available

        assert ("compiled" in names) == kernel_available()

    def test_compiled_gap_note_reflects_native_loop(self):
        """The gap analysis is per backend: compiled's remaining wall time is
        Python orchestration, not interpreter dispatch in the event loop."""
        report = _report(**{
            "table1:replay@python": _bench(
                name="table1:replay@python", wall=8.0, events=8000, digest="cc"
            ),
            "table1:replay@compiled": _bench(
                name="table1:replay@compiled", wall=1.0, events=8000, digest="cc"
            ),
        })
        payload = bench_payload(report)
        entry = payload["replay_path"]["backends"]["table1:replay@compiled"]
        assert entry["events_per_sec_ratio"] == pytest.approx(8.0)
        assert "native" in entry["notes"]
        assert "dispatch" not in entry["notes"]

    def test_replay_path_summary_carries_build_metadata_when_built(self):
        from repro.sim.compiled import kernel_available

        if not kernel_available():
            pytest.skip(
                "compiled kernel extension not built; build it with "
                "`python tools/build_compiled.py` (requires a C toolchain)"
            )
        report = _report(**{
            "table1:replay@python": _bench(
                name="table1:replay@python", wall=2.0, events=2000, digest="cc"
            ),
            "table1:replay@compiled": _bench(
                name="table1:replay@compiled", wall=1.0, events=2000, digest="cc"
            ),
        })
        entry = bench_payload(report)["replay_path"]["backends"][
            "table1:replay@compiled"
        ]
        assert entry["build"]["toolchain"] == "cpython-c-api"
        assert entry["build"]["compiler"]

    def test_run_bench_compiled_group_bit_identical(self):
        from repro.sim.compiled import kernel_available

        if not kernel_available():
            pytest.skip(
                "compiled kernel extension not built; build it with "
                "`python tools/build_compiled.py` (requires a C toolchain)"
            )
        report = run_bench(["table1-priority"], scale="smoke", repeat=1)
        reference = report.results["table1:replay@python"]
        candidate = report.results["table1:replay@compiled"]
        assert candidate.rows_digest == reference.rows_digest
        assert candidate.events == reference.events
        assert candidate.backend == "compiled"


class TestCli:
    def test_bench_verb_writes_payload(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            ["bench", "table1-priority", "--scale", "smoke", "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == BENCH_FORMAT
        assert "table1-priority" in payload["results"]
        assert "events/s" in capsys.readouterr().out

    def test_bench_verb_check_passes_against_fresh_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "table1-priority", "--scale", "smoke", "--out", str(out)]) == 0
        code = main(
            [
                "bench",
                "table1-priority",
                "--scale",
                "smoke",
                "--baseline",
                str(out),
                "--check",
                "--max-slowdown",
                "10.0",  # generous: CI machines are noisy
            ]
        )
        assert code == 0
        assert "perf gate OK" in capsys.readouterr().out

    def test_bench_verb_check_fails_on_regression(self, tmp_path, capsys):
        # Fabricate an impossibly fast baseline: any real run regresses.
        baseline = bench_payload(
            _report(**{"table1-priority": _bench(name="table1-priority", wall=1e-9)})
        )
        path = tmp_path / "baseline.json"
        save_bench(path, baseline)
        code = main(
            [
                "bench",
                "table1-priority",
                "--scale",
                "smoke",
                "--baseline",
                str(path),
                "--check",
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_bench_verb_check_requires_baseline(self, capsys):
        code = main(["bench", "table1-priority", "--scale", "smoke", "--check"])
        assert code == 2

    def test_bench_verb_json_output(self, capsys):
        code = main(["bench", "table1-priority", "--scale", "smoke", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == BENCH_FORMAT

    def test_bench_verb_unknown_experiment(self, capsys):
        assert main(["bench", "nope", "--scale", "smoke"]) == 2


class TestDigestDivergenceReport:
    """A cross-backend digest mismatch raises with a first-divergence report."""

    @staticmethod
    def _schedule(perturb=None):
        from repro.core.schedule import HopTiming, PacketRecord, Schedule

        records = []
        for i in range(4):
            base = 0.01 * i
            hops = [
                HopTiming("sw0", base, base + 1e-3, base + 2e-3),
                HopTiming("sw1", base + 3e-3, base + 4e-3, base + 5e-3),
            ]
            records.append(
                PacketRecord(
                    packet_id=i,
                    flow_id=0,
                    src="h0",
                    dst="h1",
                    size_bytes=1000.0,
                    ingress_time=base,
                    output_time=base + 6e-3,
                    path=["sw0", "sw1", "h1"],
                    hops=hops,
                )
            )
        schedule = Schedule(records)
        if perturb is not None:
            schedule.record(perturb).hops[1].departure_time += 1e-6
        return schedule

    def test_report_names_first_divergent_packet_and_field(self, monkeypatch):
        import repro.core.replay as replay_module
        from repro.bench.harness import _digest_divergence_report
        from types import SimpleNamespace

        pair = (self._schedule(), self._schedule(perturb=2))
        monkeypatch.setattr(replay_module, "replay_pair", lambda *a, **k: pair)
        scenario = SimpleNamespace(name="I2-test", replay_mode="lstf")
        message = _digest_divergence_report(
            [(scenario, None, None, pair[0])], "python", "vectorized", "aa", "bb"
        )
        assert "bit-identity contract broken" in message
        assert "I2-test" in message
        assert "packet 2" in message
        assert "hops[1].departure_time" in message
        assert "'vectorized'" in message

    def test_fallback_when_re_replay_is_clean(self, monkeypatch):
        import repro.core.replay as replay_module
        from repro.bench.harness import _digest_divergence_report
        from types import SimpleNamespace

        same = self._schedule()
        monkeypatch.setattr(replay_module, "replay_pair", lambda *a, **k: (same, same))
        scenario = SimpleNamespace(name="I2-test", replay_mode="lstf")
        message = _digest_divergence_report(
            [(scenario, None, None, same)], "python", "vectorized", "aa", "bb"
        )
        assert "not deterministic" in message

    def test_run_bench_raises_the_report(self, monkeypatch):
        import repro.bench.harness as harness

        def fake_group(prepared, backend="python", repeat=1):
            return _bench(
                name=f"table1:replay@{backend}",
                digest="ref" if backend == "python" else "bad",
            )

        monkeypatch.setattr(harness, "bench_replay_path", fake_group)
        monkeypatch.setattr(harness, "prepare_replay_cells", lambda scale: [])
        monkeypatch.setattr(
            harness, "available_replay_backends", lambda: ["python", "vectorized"]
        )
        monkeypatch.setattr(
            harness,
            "_digest_divergence_report",
            lambda *args: "DIVERGENCE REPORT SENTINEL",
        )
        monkeypatch.setattr(
            harness, "bench_experiment", lambda *a, **k: _bench(name="table1")
        )
        with pytest.raises(RuntimeError, match="DIVERGENCE REPORT SENTINEL"):
            harness.run_bench(["table1"], scale="smoke")

    def test_cli_bench_reports_divergence_and_exits_1(self, monkeypatch, capsys):
        import repro.bench

        def exploding_run_bench(*args, **kwargs):
            raise RuntimeError("first divergence: packet 7 ...")

        monkeypatch.setattr(repro.bench, "run_bench", exploding_run_bench)
        assert main(["bench", "table1", "--quick"]) == 1
        err = capsys.readouterr().err
        assert "first divergence: packet 7" in err
