"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.schedulers import uniform_factory
from repro.sim import Simulator, Tracer, reset_flow_ids, reset_packet_ids
from repro.sim.flow import Flow
from repro.sim.packet import Packet
from repro.topology import dumbbell_topology, linear_topology, single_switch_topology
from repro.traffic import WorkloadSpec, paper_default_workload
from repro.utils import RandomState, mbps


@pytest.fixture(autouse=True)
def _reset_global_counters():
    """Keep packet and flow ids deterministic within each test."""
    reset_packet_ids()
    reset_flow_ids()
    yield


@pytest.fixture
def rng() -> RandomState:
    """A deterministic random source."""
    return RandomState(123)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulation engine."""
    return Simulator()


@pytest.fixture
def dumbbell():
    """A 4-pair dumbbell topology with a 10 Mbps bottleneck."""
    return dumbbell_topology(
        num_pairs=4,
        bottleneck_bandwidth_bps=mbps(10),
        access_bandwidth_bps=mbps(100),
    )


@pytest.fixture
def small_line():
    """A 3-router linear topology with one host pair."""
    return linear_topology(num_routers=3, bandwidth_bps=mbps(10), hosts_per_end=1)


@pytest.fixture
def star():
    """A single-switch star with 4 hosts."""
    return single_switch_topology(num_hosts=4, bandwidth_bps=mbps(10))


@pytest.fixture
def udp_workload():
    """A small UDP workload at 60% utilization of a 10 Mbps reference link."""
    return WorkloadSpec(
        utilization=0.6,
        reference_bandwidth_bps=mbps(10),
        size_distribution=paper_default_workload(),
        transport="udp",
        duration=0.3,
    )


@pytest.fixture
def fifo_network(sim, dumbbell):
    """A built dumbbell network with FIFO everywhere and a tracer."""
    tracer = Tracer()
    network = dumbbell.build(sim, uniform_factory("fifo"), tracer=tracer)
    return network


def make_packet(
    src: str = "src0",
    dst: str = "dst0",
    size_bytes: float = 1000.0,
    flow_id: int = 1,
    **header_fields,
) -> Packet:
    """Helper to build a packet with optional header fields pre-set."""
    packet = Packet(flow_id=flow_id, src=src, dst=dst, size_bytes=size_bytes)
    for name, value in header_fields.items():
        setattr(packet.header, name, value)
    return packet


def make_flow(
    src: str = "src0",
    dst: str = "dst0",
    size_bytes: float = 14600.0,
    start_time: float = 0.0,
) -> Flow:
    """Helper to build a flow."""
    return Flow(src=src, dst=dst, size_bytes=size_bytes, start_time=start_time)
