"""Tests for the faults experiment group (universality under failure).

Covers the acceptance criteria of the fault-injection PR:

* the ``faults`` experiment is registered and its cell grid is the expected
  (baseline + sweep) x modes matrix;
* the fault-free baseline delivers every packet, fault-bearing cells lose a
  deterministic nonzero fraction;
* reruns and parallel runs are row-for-row identical to serial runs (fault
  injection is fully deterministic given the fault seed);
* the ``--fault`` override pins the whole group onto one schedule, and
  experiments that do not support faults decline the override with a note
  rather than silently replaying fault-free.
"""

import json

from repro.__main__ import main as cli_main
from repro.experiments import ExperimentScale
from repro.experiments.faults import FAULT_MODES, FAULT_SWEEP, fault_scenarios
from repro.pipeline import default_registry, run_pipeline

SMOKE = ExperimentScale.smoke()

EXPECTED_CELLS = (1 + len(FAULT_SWEEP)) * len(FAULT_MODES)


def faults_rows(**kwargs):
    kwargs.setdefault("workers", 1)
    summary = run_pipeline(["faults"], scale=SMOKE, **kwargs)
    return summary.results["faults"].rows


class TestFaultsExperiment:
    def test_registered_with_expected_grid(self):
        registry = default_registry()
        assert "faults" in registry
        cells = registry.get("faults").cells(SMOKE)
        assert len(cells) == EXPECTED_CELLS
        assert {cell.mode for cell in cells} == set(FAULT_MODES)

    def test_scenarios_are_baseline_plus_sweep(self):
        scenarios = fault_scenarios(SMOKE)
        assert scenarios[0].faults is None
        assert [s.faults for s in scenarios[1:]] == list(FAULT_SWEEP)
        # All scenarios share the workload and seed: only the fault differs,
        # so every sweep entry replays the *same* recorded schedule.
        assert len({(s.workload_name, s.seed, s.utilization) for s in scenarios}) == 1

    def test_baseline_delivers_everything_and_faults_degrade(self):
        rows = faults_rows()
        assert len(rows) == EXPECTED_CELLS
        baseline = [row for row in rows if row["fault"] == "none"]
        faulty = [row for row in rows if row["fault"] != "none"]
        assert baseline and faulty
        assert all(row["delivered_fraction"] == 1.0 for row in baseline)
        assert any(row["delivered_fraction"] < 1.0 for row in faulty)
        assert all(0.0 <= row["delivered_fraction"] <= 1.0 for row in rows)
        # deadline-met-over-delivered is conditioned on survivors, so it can
        # only meet or exceed the unconditional replay deadline fraction.
        for row in rows:
            if row["deadline_flows"]:
                assert (
                    row["deadline_met_over_delivered"]
                    >= row["deadline_met_replay"] - 1e-12
                )

    def test_rows_are_deterministic_and_parallel_matches_serial(self, tmp_path):
        serial = faults_rows(cache_dir=tmp_path / "a")
        again = faults_rows(cache_dir=tmp_path / "a")
        parallel = faults_rows(workers=2, cache_dir=tmp_path / "b")
        assert again == serial
        assert parallel == serial

    def test_fault_override_pins_whole_sweep(self):
        registry = default_registry()
        definition = registry.get("faults").with_faults("loss-5pct", 7)
        scenarios = definition.scenarios(SMOKE)
        assert all(s.faults == "loss-5pct" for s in scenarios)
        assert all(s.fault_seed == 7 for s in scenarios)

    def test_unsupporting_experiment_declines_override_with_note(self, tmp_path):
        summary = run_pipeline(
            ["figure3"], scale=SMOKE, faults="loss-5pct",
            cache_dir=tmp_path / "cache",
        )
        assert not summary.errors
        assert any("fault-free" in note for note in summary.notes)


class TestFaultsCli:
    def test_list_faults_renders_registry(self, capsys):
        assert cli_main(["list", "--faults"]) == 0
        out = capsys.readouterr().out
        for name in ("empty",) + FAULT_SWEEP:
            assert name in out

    def test_run_faults_json_carries_fault_columns(self, tmp_path, capsys):
        code = cli_main(
            [
                "run", "faults", "--scale", "smoke",
                "--cache-dir", str(tmp_path / "cache"), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["faults"]["rows"]
        assert len(rows) == EXPECTED_CELLS
        assert payload["errors"] == []
        assert {"fault", "fault_seed", "delivered_fraction"} <= set(rows[0])

    def test_run_with_fault_override(self, tmp_path, capsys):
        code = cli_main(
            [
                "run", "faults", "--scale", "smoke",
                "--fault", "loss-5pct", "--fault-seed", "3",
                "--cache-dir", str(tmp_path / "cache"), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["faults"]["rows"]
        assert all(row["fault"] == "loss-5pct" for row in rows)
        assert all(row["fault_seed"] == 3 for row in rows)
        assert any(row["delivered_fraction"] < 1.0 for row in rows)
