"""Tests for the experiment harness (scaled-down versions of every table/figure)."""

import json

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentScale,
    default_scenario,
    format_result,
    results_to_json,
    run_all,
    run_edf_equivalence,
    run_omniscient_ablation,
    run_priority_comparison,
    run_scenario,
    table1_scenarios,
)
from repro.experiments.figure2 import FIGURE2_SCHEDULERS, figure2_size_distribution
from repro.experiments.figure4 import build_long_lived_flows, fairness_scale
from repro.utils import gbps


SMOKE = ExperimentScale.smoke()


class TestScalePresets:
    def test_quick_and_paper_presets_differ(self):
        quick, paper = ExperimentScale.quick(), ExperimentScale.paper()
        assert paper.bandwidth_scale == 1.0
        assert quick.bandwidth_scale > 1.0
        assert paper.edge_routers_per_core == 10

    def test_scaled_bandwidth(self):
        scale = ExperimentScale(bandwidth_scale=100.0)
        assert scale.scaled_bandwidth(1.0) == pytest.approx(gbps(1) / 100.0)

    def test_topology_builders_produce_expected_sizes(self):
        scale = SMOKE
        i2 = scale.internet2()
        assert len(i2.router_names()) == 10 + 10 * scale.edge_routers_per_core
        rocket = scale.rocketfuel()
        assert len([r for r in rocket.router_names() if r.startswith("core")]) == scale.rocketfuel_routers
        fattree = scale.fattree()
        assert len(fattree.host_names()) == scale.fattree_k ** 3 // 4

    def test_fairness_scale_caps_bandwidth_reduction(self):
        capped = fairness_scale(ExperimentScale(bandwidth_scale=1000.0), max_bandwidth_scale=50.0)
        assert capped.bandwidth_scale == 50.0
        untouched = fairness_scale(ExperimentScale(bandwidth_scale=10.0), max_bandwidth_scale=50.0)
        assert untouched.bandwidth_scale == 10.0


class TestTable1Harness:
    def test_scenarios_cover_every_paper_row_group(self):
        scenarios = table1_scenarios(SMOKE)
        names = [s.name for s in scenarios]
        assert any("@70" in n or n == "I2-1G-10G@70" for n in names)
        assert any("@10" in n for n in names)  # utilization sweep
        assert "I2-1G-1G" in names and "I2-10G-10G" in names
        assert "RocketFuel" in names and "Datacenter" in names
        originals = {s.original for s in scenarios}
        assert {"random", "fifo", "fq", "sjf", "lifo", "fq+fifo+"} <= originals

    def test_run_scenario_produces_table_row(self):
        row = run_scenario(default_scenario(SMOKE, utilization=0.6))
        assert set(row) >= {
            "scenario", "utilization", "original", "fraction_overdue",
            "fraction_overdue_beyond_T", "packets", "threshold",
        }
        assert row["packets"] > 0
        assert 0.0 <= row["fraction_overdue"] <= 1.0
        assert row["fraction_overdue_beyond_T"] <= row["fraction_overdue"]

    def test_priority_comparison_shows_lstf_advantage(self):
        result = run_priority_comparison(SMOKE)
        by_mode = {row["replay_mode"]: row for row in result.rows}
        assert by_mode["lstf"]["fraction_overdue"] <= by_mode["priority"]["fraction_overdue"]


class TestAblations:
    def test_omniscient_ablation_is_perfect(self):
        result = run_omniscient_ablation(SMOKE)
        by_mode = {row["replay_mode"]: row for row in result.rows}
        assert by_mode["omniscient"]["fraction_overdue"] == 0.0

    def test_edf_equivalence_rows_match(self):
        result = run_edf_equivalence(SMOKE)
        by_mode = {row["replay_mode"]: row for row in result.rows}
        assert by_mode["edf"]["fraction_overdue"] == pytest.approx(
            by_mode["lstf"]["fraction_overdue"], abs=1e-9
        )


class TestFigureHelpers:
    def test_figure2_configuration_covers_paper_schedulers(self):
        assert set(FIGURE2_SCHEDULERS) == {"fifo", "srpt", "sjf", "lstf"}
        assert figure2_size_distribution().mean() > 1460

    def test_build_long_lived_flows_pins_src_and_dst_groups(self):
        topo = SMOKE.internet2(edge_core_gbps=10.0, host_edge_gbps=10.0)
        from repro.utils import RandomState

        flows = build_long_lived_flows(topo, 8, jitter=0.005, rng=RandomState(1))
        assert len(flows) == 8
        assert all(flow.src.startswith("host-seattle") for flow in flows)
        assert all(flow.dst.startswith("host-newyork") for flow in flows)
        assert all(0.0 <= flow.start_time <= 0.005 for flow in flows)


class TestRunnerFormatting:
    def test_format_result_renders_all_rows(self):
        result = ExperimentResult(name="demo", scale_label="quick")
        result.add_row(metric="a", value=1.0)
        result.add_row(metric="b", value=None)
        text = format_result(result)
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "-" in text  # None rendered as a dash

    def test_results_to_json_round_trips(self):
        result = ExperimentResult(name="demo", scale_label="quick", notes="n")
        result.add_row(x=1, y=2.5)
        payload = json.loads(results_to_json({"demo": result}))
        assert payload["demo"]["rows"] == [{"x": 1, "y": 2.5}]

    def test_run_all_rejects_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_all(SMOKE, names=["tableX"])
