"""Golden-row pinning for the registry-driven Figure 2-4 experiments.

The slack-policy unification rewired Figures 2-4 from ad-hoc
``SlackPolicy`` instantiation to registry-materialized live policies
(``SlackPolicyDef.build_live``).  The fixture below was captured *before*
that refactor, so these tests prove the unified path is a pure refactor:
every row — floats included — must match bit for bit.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import ExperimentScale
from repro.pipeline import run_pipeline

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_figure_rows.json"
SMOKE = ExperimentScale.smoke()


@pytest.fixture(scope="module")
def golden():
    rows = json.loads(GOLDEN_PATH.read_text())
    assert rows, "golden figure fixture is empty"
    return rows


@pytest.mark.parametrize("experiment", ["figure2", "figure3", "figure4"])
def test_registry_driven_rows_match_pre_refactor_fixture(experiment, golden):
    """Rows produced via the unified slack-policy registry path must be
    bit-identical to the rows the pre-refactor code produced."""
    summary = run_pipeline([experiment], scale=SMOKE, workers=1)
    rows = summary.results[experiment].rows
    assert rows == golden[experiment]


def test_fixture_covers_every_figure(golden):
    assert set(golden) == {"figure2", "figure3", "figure4"}
    # The policy-bearing rows are present: figure2's LSTF deployment,
    # figure3's LSTF-as-FIFO+ row, and figure4's rest sweep.
    assert any(row["scheduler"] == "lstf" for row in golden["figure2"])
    assert any(row["scheduler"] == "lstf" for row in golden["figure3"])
    assert any(row["scheduler"].startswith("lstf@") for row in golden["figure4"])
