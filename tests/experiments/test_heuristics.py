"""Tests for the heuristics experiment group (the paper's Section-3 story).

Covers the acceptance criteria of the slack-policy PR:

* the ``heuristics`` experiment is registered, runs end to end, and its rows
  are rectangular (every scheme reports the same column set);
* the ``deadline`` slack policy strictly improves the deadline-met fraction
  over FIFO on the deadline-tagged adversarial workloads (quick scale — the
  scale the acceptance criterion names);
* one cell's rows are pinned bit-identically against a committed golden
  fixture, so refactors cannot silently drift the heuristic results;
* parallel runs are row-for-row identical to serial runs;
* the CLI exposes the slack-policy registry and the ``--slack-policy``
  override.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import ExperimentScale
from repro.experiments.heuristics import (
    HEURISTIC_WORKLOADS,
    SCHEME_BY_LABEL,
    SCHEMES,
    heuristics_scenarios,
)
from repro.pipeline import default_registry, run_pipeline
from repro.traffic import WORKLOADS

SMOKE = ExperimentScale.smoke()
GOLDEN_ROWS_PATH = Path(__file__).parent.parent / "data" / "golden_heuristics_rows.json"


def heuristics_rows(scale, **kwargs):
    summary = run_pipeline(["heuristics"], scale=scale, workers=1, **kwargs)
    return summary.results["heuristics"].rows


class TestHeuristicsExperiment:
    def test_registered_with_full_scheme_by_workload_matrix(self):
        registry = default_registry()
        assert "heuristics" in registry
        cells = registry.get("heuristics").cells(SMOKE)
        assert len(cells) == len(SCHEMES) * len(HEURISTIC_WORKLOADS)
        assert {cell.mode for cell in cells} == set(SCHEME_BY_LABEL)
        for workload in HEURISTIC_WORKLOADS:
            assert workload in WORKLOADS

    def test_scenarios_cover_deadline_tagged_workloads(self):
        workloads = {s.workload_name for s in heuristics_scenarios(SMOKE)}
        assert "deadline-tagged" in workloads  # the adversarial-group one
        assert WORKLOADS.get("deadline-tagged").group == "adversarial"

    def test_rows_are_rectangular_and_sane(self):
        rows = heuristics_rows(SMOKE)
        assert len(rows) == len(SCHEMES) * len(HEURISTIC_WORKLOADS)
        columns = set(rows[0])
        for row in rows:
            assert set(row) == columns
            assert row["packets"] > 0
            assert row["mean_delay"] > 0.0
            assert row["p99_delay"] >= row["mean_delay"] * 0.0
            assert row["deadline_flows"] >= 0
            assert 0.0 <= row["deadline_met_fraction"] <= 1.0
            scheme = SCHEME_BY_LABEL[row["scheme"]]
            if scheme.kind in ("direct", "live"):
                # Measured on their own schedules, not against a baseline.
                assert row["fraction_overdue"] is None
            else:
                assert 0.0 <= row["fraction_overdue"] <= 1.0

    def test_all_schemes_schedule_the_same_offered_traffic(self):
        rows = heuristics_rows(SMOKE)
        for workload in HEURISTIC_WORKLOADS:
            group = [r for r in rows if r["workload"] == workload]
            assert len({r["packets"] for r in group}) == 1
            assert len({r["deadline_flows"] for r in group}) == 1

    def test_live_deployment_matches_replay_for_stateless_policies(self):
        """Replay fidelity, measured: for a constant (stateless) slack
        policy on open-loop UDP traffic, replaying the FIFO baseline under
        LSTF stamps the same packets with the same slack at the same
        ingress times as a genuine live deployment — so the live and
        replay columns must agree bit for bit.  This is the paper's
        replay-methodology claim made executable; a divergence means the
        replay harness no longer reproduces deployment dynamics."""
        rows = heuristics_rows(SMOKE)
        by = {(r["workload"], r["scheme"]): r for r in rows}
        for workload in HEURISTIC_WORKLOADS:
            for policy in ("zero", "static-delay"):
                live = by[(workload, f"lstf-live-{policy}")]
                replay = by[(workload, f"lstf-{policy}")]
                for column in (
                    "packets", "mean_delay", "p99_delay",
                    "deadline_flows", "deadline_met_fraction",
                ):
                    assert live[column] == replay[column], (workload, policy, column)

    def test_omniscient_replay_is_perfect(self):
        rows = heuristics_rows(SMOKE)
        for row in rows:
            if row["scheme"] == "omniscient":
                assert row["fraction_overdue"] == 0.0

    def test_parallel_heuristics_identical_to_serial(self, tmp_path):
        serial = run_pipeline(["heuristics"], scale=SMOKE, workers=1)
        parallel = run_pipeline(
            ["heuristics"], scale=SMOKE, workers=2, cache_dir=str(tmp_path / "cache")
        )
        assert parallel.workers == 2
        assert serial.results["heuristics"].rows == parallel.results["heuristics"].rows

    def test_workload_override_pins_the_matrix_to_one_workload(self):
        rows = heuristics_rows(SMOKE, workload="deadline-tagged-tight")
        assert len(rows) == len(SCHEMES)
        assert all(row["workload"] == "deadline-tagged-tight" for row in rows)

    def test_replicates_expand_every_scheme(self):
        summary = run_pipeline(
            ["heuristics"], scale=SMOKE, workers=1, replicates=2,
            workload="deadline-tagged",
        )
        result = summary.results["heuristics"]
        assert len(result.rows) == 2 * len(SCHEMES)
        assert result.aggregates
        assert all(a["replicates"] == 2 for a in result.aggregates)


class TestGoldenHeuristicsRows:
    def test_pinned_cells_are_bit_identical(self):
        """The committed fixture pins the FIFO baseline and the
        deadline-policy LSTF cell of the deadline-tagged workload at smoke
        scale — floats must match bit for bit."""
        golden = json.loads(GOLDEN_ROWS_PATH.read_text())
        assert golden, "golden heuristics fixture is empty"
        rows = {row["scenario"]: row for row in heuristics_rows(SMOKE)}
        for pinned in golden:
            assert pinned["scenario"] in rows, pinned["scenario"]
            assert rows[pinned["scenario"]] == pinned


class TestDeadlinePolicyBeatsFifo:
    def test_deadline_slack_strictly_improves_deadline_met_over_fifo_quick(self):
        """The PR's headline acceptance criterion, at the scale it names:
        on the deadline-tagged adversarial workloads, deadline-driven slack
        must strictly beat FIFO's deadline-met fraction."""
        rows = heuristics_rows(ExperimentScale.quick())
        for workload in HEURISTIC_WORKLOADS:
            by_scheme = {
                r["scheme"]: r for r in rows if r["workload"] == workload
            }
            fifo = by_scheme["fifo"]["deadline_met_fraction"]
            deadline = by_scheme["lstf-deadline"]["deadline_met_fraction"]
            assert deadline > fifo, (
                f"{workload}: lstf-deadline ({deadline}) must strictly beat "
                f"fifo ({fifo})"
            )
            # The heuristic may not beat the omniscient replay of a better
            # schedule, but it must not lose to plain zero-slack LSTF either.
            assert deadline >= by_scheme["lstf-zero"]["deadline_met_fraction"]


class TestSlackPolicyCli:
    def test_list_slack_policies(self, capsys):
        assert cli_main(["list", "--slack-policies"]) == 0
        out = capsys.readouterr().out
        for name in ("replay", "zero", "deadline", "static-delay"):
            assert name in out

    def test_list_slack_policies_json(self, capsys):
        assert cli_main(["list", "--slack-policies", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["deadline"]["kind"] == "deadline"
        assert "no_deadline_slack" in by_name["deadline"]["params"]

    def test_list_slack_policies_pins_capability_column(self, capsys):
        """The live/replay capability of every built-in policy, as shown by
        ``list --slack-policies`` — the CLI face of the policy contract
        (docs/slack-policies.md).  A capability change is a contract change
        and must update this table deliberately."""
        assert cli_main(["list", "--slack-policies", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        modes = {entry["name"]: entry["modes"] for entry in entries}
        assert modes == {
            "replay": "replay",
            "zero": "live+replay",
            "deadline": "replay",
            "static-delay": "live+replay",
            "flow-size": "live",
            "fairness": "live",
            "null": "live",
        }

    def test_list_slack_policies_table_shows_modes(self, capsys):
        assert cli_main(["list", "--slack-policies"]) == 0
        lines = {
            line.split()[0]: line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("  ")
        }
        # Per-row capability rendering, not just a crash check: the
        # live-only row must NOT say live+replay, the both-capable row must.
        assert " live " in lines["flow-size"]
        assert "live+replay" not in lines["flow-size"]
        assert "live+replay" in lines["static-delay"]
        assert " replay " in lines["deadline"]

    def test_run_heuristics_via_cli(self, tmp_path, capsys):
        code = cli_main(
            [
                "run", "heuristics", "--scale", "smoke",
                "--cache-dir", str(tmp_path / "cache"), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["heuristics"]["rows"]
        assert len(rows) == len(SCHEMES) * len(HEURISTIC_WORKLOADS)

    def test_run_slack_policy_override(self, tmp_path, capsys):
        code = cli_main(
            [
                "run", "table1-priority", "--scale", "smoke",
                "--slack-policy", "zero",
                "--cache-dir", str(tmp_path / "cache"), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # table1-priority replays the priority mode too, so it cannot honor
        # the override; the runner must say so instead of silently ignoring.
        notes = payload["_summary"]["notes"]
        assert any("slack_policy" in note for note in notes)

    def test_run_adversarial_with_slack_policy_override(self, tmp_path, capsys):
        code = cli_main(
            [
                "run", "adversarial", "--scale", "smoke",
                "--slack-policy", "deadline",
                "--cache-dir", str(tmp_path / "cache"), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["adversarial"]["rows"]
        assert rows and all(row["scenario"].endswith("+slack:deadline") for row in rows)

    def test_record_then_replay_with_slack_policy(self, tmp_path, capsys):
        out = tmp_path / "sched.jsonl.gz"
        assert cli_main(
            ["record", "HEU-deadline-tagged/fifo", "--scale", "smoke", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert cli_main(
            ["replay", str(out), "--slack-policy", "deadline", "--json"]
        ) == 0
        row = json.loads(capsys.readouterr().out)
        assert row["slack_policy"] == "deadline"
        assert 0.0 <= row["fraction_overdue"] <= 1.0

    def test_replay_rejects_policy_incompatible_mode(self, tmp_path, capsys):
        out = tmp_path / "sched.jsonl.gz"
        assert cli_main(
            ["record", "HEU-deadline-tagged/fifo", "--scale", "smoke", "--out", str(out)]
        ) == 0
        code = cli_main(
            ["replay", str(out), "--mode", "omniscient", "--slack-policy", "zero"]
        )
        assert code == 2
        assert "cannot drive replay mode" in capsys.readouterr().err

    def test_run_rejects_unknown_slack_policy(self, tmp_path):
        with pytest.raises(KeyError, match="unknown slack policy"):
            run_pipeline(["adversarial"], scale=SMOKE, slack_policy="nope")

    def test_run_live_experiment_with_slack_policy_override(self, capsys):
        """`run figure3 --slack-policy zero` deploys LSTF with the zero
        policy stamped at send time; the overridden row says so."""
        code = cli_main(
            ["run", "figure3", "--scale", "smoke", "--no-cache",
             "--slack-policy", "zero", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = {row["scheduler"]: row for row in payload["figure3"]["rows"]}
        assert rows["lstf"]["slack_policy"] == "zero"
        assert "slack_policy" not in rows["fifo"]  # policy-less cell untouched
        assert "figure3" not in " ".join(payload["_summary"]["notes"])

    def test_run_live_experiment_rejects_replay_only_policy(self, capsys):
        code = cli_main(
            ["run", "figure2", "--scale", "smoke", "--no-cache",
             "--slack-policy", "deadline"]
        )
        assert code == 2
        assert "cannot stamp live packets" in capsys.readouterr().err

    def test_run_replay_experiment_rejects_live_only_policy(self, capsys):
        code = cli_main(
            ["run", "adversarial", "--scale", "smoke", "--no-cache",
             "--slack-policy", "flow-size"]
        )
        assert code == 2
        assert "cannot drive scenario" in capsys.readouterr().err

    def test_live_columns_ride_the_heuristics_matrix(self, tmp_path, capsys):
        """The live lstf deployments are first-class heuristics columns and
        see the same offered traffic as the FIFO baseline."""
        code = cli_main(
            ["run", "heuristics", "--scale", "smoke",
             "--cache-dir", str(tmp_path / "cache"), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["heuristics"]["rows"]
        for workload in HEURISTIC_WORKLOADS:
            group = {r["scheme"]: r for r in rows if r["workload"] == workload}
            for live in ("lstf-live-zero", "lstf-live-static-delay", "lstf-live-flow-size"):
                assert group[live]["packets"] == group["fifo"]["packets"]
                assert group[live]["fraction_overdue"] is None
