"""Tests for fault definitions and the fault-schedule registry."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import (
    FAULT_KINDS,
    FAULTS,
    BernoulliLoss,
    FaultPlan,
    FaultScheduleDef,
    GilbertElliottLoss,
    JammingIntervals,
    LinkOutage,
    fault_from_dict,
)
from repro.utils.rng import RandomState


class TestFaultKinds:
    def test_all_kinds_registered(self):
        assert set(FAULT_KINDS) == {
            "link-outage", "bernoulli-loss", "gilbert-loss", "jamming"
        }

    def test_round_trip_every_kind(self):
        for fault in (
            LinkOutage(start=0.3, duration=0.1, links=("a->b",)),
            LinkOutage(start=0.1, duration=0.05, period=0.2, count=3),
            BernoulliLoss(rate=0.03),
            GilbertElliottLoss(p_enter_bad=0.05, p_exit_bad=0.5),
            JammingIntervals(start=0.2, duration=0.05, period=0.25, count=2),
        ):
            rebuilt = fault_from_dict(fault.to_dict())
            assert rebuilt == fault
            assert pickle.loads(pickle.dumps(fault)) == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_from_dict({"kind": "meteor-strike"})

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            BernoulliLoss(rate=1.5)
        with pytest.raises(ValueError, match="start"):
            LinkOutage(start=1.0, duration=0.1)
        with pytest.raises(ValueError, match="period"):
            JammingIntervals(start=0.1, duration=0.1, count=2)  # no period
        with pytest.raises(ValueError, match="links"):
            BernoulliLoss(rate=0.1, links=["a->b"])  # list, not tuple
        with pytest.raises(ValueError, match="p_enter_bad"):
            GilbertElliottLoss(p_enter_bad=-0.1)

    def test_link_selector(self):
        assert BernoulliLoss(rate=0.1).matches("any->link")
        assert BernoulliLoss(rate=0.1, links=("*",)).matches("any->link")
        scoped = BernoulliLoss(rate=0.1, links=("a->b",))
        assert scoped.matches("a->b")
        assert not scoped.matches("b->a")

    def test_outage_windows_scale_with_horizon(self):
        outage = LinkOutage(start=0.4, duration=0.1, period=0.3, count=2)
        assert outage.outage_windows(10.0) == [(4.0, 5.0), (7.0, 8.0)]
        assert outage.outage_windows(1.0) == [
            (0.4, pytest.approx(0.5)), (pytest.approx(0.7), pytest.approx(0.8))
        ]

    def test_jamming_filter_is_window_pure(self):
        jam = JammingIntervals(start=0.2, duration=0.1)
        drop = jam.make_drop_filter(10.0, None)
        assert drop(None, 2.5) and not drop(None, 1.0) and not drop(None, 3.0)

    def test_zero_rate_loss_has_no_filter(self):
        assert BernoulliLoss(rate=0.0).make_drop_filter(1.0, RandomState(1)) is None

    def test_gilbert_chain_is_deterministic_per_seed(self):
        ge = GilbertElliottLoss(p_enter_bad=0.2, p_exit_bad=0.3)

        def pattern(seed):
            drop = ge.make_drop_filter(1.0, RandomState(seed))
            return [drop(None, 0.0) for _ in range(200)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7))  # the chain does enter the bad state


class TestFaultScheduleRegistry:
    def test_builtin_schedules_registered(self):
        assert {
            "empty", "loss-0.1pct", "loss-1pct", "loss-5pct",
            "burst-loss", "outage-short", "outage-long", "jam-bursts",
        } <= set(FAULTS.names())

    def test_unknown_schedule_lists_known_names(self):
        with pytest.raises(KeyError, match="loss-5pct"):
            FAULTS.get("nope")

    def test_schedules_round_trip_and_pickle(self):
        for name in FAULTS.names():
            definition = FAULTS.get(name)
            assert FaultScheduleDef.from_dict(definition.to_dict()) == definition
            assert pickle.loads(pickle.dumps(definition)) == definition

    def test_empty_schedule_is_empty(self):
        empty = FAULTS.get("empty")
        assert empty.is_empty()
        assert empty.fingerprint() == []

    def test_fingerprint_excludes_name_and_description(self):
        a = FaultScheduleDef(name="a", faults=(BernoulliLoss(rate=0.1),))
        b = FaultScheduleDef(name="b", faults=(BernoulliLoss(rate=0.1),),
                             description="renamed")
        assert a.fingerprint() == b.fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            FaultScheduleDef(name="")
        with pytest.raises(ValueError, match="FaultDef"):
            FaultScheduleDef(name="x", faults=("not-a-fault",))


class TestFaultPlan:
    def test_empty_plan_fingerprint_is_none(self):
        """The cache-key contract: empty plans hash as absent."""
        assert FaultPlan(FAULTS.get("empty")).fingerprint() is None
        assert FaultPlan(FAULTS.get("empty"), seed=99).fingerprint() is None

    def test_nonempty_plan_fingerprint_carries_seed(self):
        plan = FaultPlan(FAULTS.get("loss-1pct"), seed=3)
        fingerprint = plan.fingerprint()
        assert fingerprint["seed"] == 3
        assert fingerprint["faults"] == FAULTS.get("loss-1pct").fingerprint()
        assert FaultPlan(FAULTS.get("loss-1pct"), seed=4).fingerprint() != fingerprint

    def test_plan_round_trip_and_pickle(self):
        plan = FaultPlan(FAULTS.get("jam-bursts"), seed=11)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert pickle.loads(pickle.dumps(plan)) == plan

    @given(st.text(min_size=1, max_size=30), st.text(max_size=30),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_every_faultless_schedule_fingerprints_as_absent(
        self, name, description, seed
    ):
        """Property: no matter how an empty schedule is named, described, or
        seeded, its plan fingerprint is ``None`` — so it can never perturb a
        cache key (bit-identity with no fault layer at all)."""
        definition = FaultScheduleDef(name=name, faults=(), description=description)
        assert definition.is_empty()
        assert FaultPlan(definition, seed=seed).fingerprint() is None
