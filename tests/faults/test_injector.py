"""Behavioral tests for the fault injector, end-to-end through replay."""

import pytest

from repro.core.replay import evaluate_replay, original_scheduler_factory, record_schedule
from repro.faults import (
    FAULTS,
    BernoulliLoss,
    FaultPlan,
    FaultScheduleDef,
    GilbertElliottLoss,
    JammingIntervals,
    LinkOutage,
)
from repro.topology import dumbbell_topology
from repro.traffic import WorkloadSpec, paper_default_workload
from repro.utils import mbps


def topology():
    return dumbbell_topology(4, mbps(10), mbps(100))


def recorded_schedule(seed=5):
    topo = topology()
    return record_schedule(
        topo,
        original_scheduler_factory("random", topo),
        WorkloadSpec(
            utilization=0.6,
            reference_bandwidth_bps=mbps(10),
            size_distribution=paper_default_workload(),
            transport="udp",
            duration=0.25,
        ),
        seed=seed,
        sources=[f"src{i}" for i in range(4)],
        destinations=[f"dst{i}" for i in range(4)],
    )


def plan_of(*faults, seed=0, name="test"):
    return FaultPlan(FaultScheduleDef(name=name, faults=tuple(faults)), seed=seed)


def replay(schedule, faults=None, mode="lstf", backend=None):
    return evaluate_replay(topology(), schedule, mode=mode, faults=faults, backend=backend)


@pytest.fixture(scope="module")
def schedule():
    return recorded_schedule()


class TestLossFaults:
    def test_certain_loss_destroys_everything(self, schedule):
        result = replay(schedule, faults=plan_of(BernoulliLoss(rate=1.0)))
        assert result.metrics.delivered_fraction == 0.0
        assert result.metrics.missing_packets == result.metrics.total_packets

    def test_zero_rate_loss_is_harmless(self, schedule):
        clean = replay(schedule)
        result = replay(schedule, faults=plan_of(BernoulliLoss(rate=0.0)))
        assert result.metrics.delivered_fraction == 1.0
        assert result.overdue_fraction == clean.overdue_fraction

    def test_partial_loss_is_partial(self, schedule):
        result = replay(schedule, faults=plan_of(BernoulliLoss(rate=0.05)))
        assert 0.0 < result.metrics.delivered_fraction < 1.0

    def test_gilbert_loss_is_bursty_and_deterministic(self, schedule):
        plan = plan_of(GilbertElliottLoss(p_enter_bad=0.05, p_exit_bad=0.25), seed=2)
        first = replay(schedule, faults=plan)
        second = replay(schedule, faults=plan)
        assert first.metrics.delivered_fraction < 1.0
        assert first.metrics.missing_packets == second.metrics.missing_packets
        assert {r.packet_id for r in first.replayed} == {
            r.packet_id for r in second.replayed
        }

    def test_fault_seed_changes_which_packets_die(self, schedule):
        loss = BernoulliLoss(rate=0.1)
        survivors = [
            {r.packet_id for r in replay(schedule, faults=plan_of(loss, seed=s)).replayed}
            for s in (1, 2)
        ]
        assert survivors[0] != survivors[1]

    def test_scoped_loss_spares_other_links(self, schedule):
        # Certain loss pinned to one access link: exactly src0's packets die.
        scoped = plan_of(BernoulliLoss(rate=1.0, links=("src0->left",)))
        result = replay(schedule, faults=scoped)
        assert 0.0 < result.metrics.delivered_fraction < 1.0
        src0_packets = sum(1 for r in schedule if r.src == "src0")
        assert src0_packets > 0
        assert result.metrics.missing_packets == src0_packets


class TestOutages:
    def test_outage_drops_some_and_resumes_service(self, schedule):
        result = replay(schedule, faults=plan_of(LinkOutage(start=0.3, duration=0.2)))
        # Some packets die (in-flight aborts), but service resumes: packets
        # ingressing after the window still arrive.
        assert 0.0 < result.metrics.delivered_fraction < 1.0
        horizon = max(r.ingress_time for r in schedule)
        late_survivors = [
            r for r in result.replayed if r.ingress_time > 0.6 * horizon
        ]
        assert late_survivors

    def test_repeated_outages_hurt_more(self, schedule):
        one = replay(schedule, faults=plan_of(LinkOutage(start=0.2, duration=0.05)))
        many = replay(
            schedule,
            faults=plan_of(
                LinkOutage(start=0.2, duration=0.05, period=0.2, count=4)
            ),
        )
        assert many.metrics.delivered_fraction <= one.metrics.delivered_fraction


class TestJamming:
    def test_jam_windows_destroy_in_window_completions(self, schedule):
        result = replay(
            schedule,
            faults=plan_of(JammingIntervals(start=0.2, duration=0.05, period=0.25, count=3)),
        )
        assert 0.0 < result.metrics.delivered_fraction < 1.0
        # Deterministic (no RNG): reruns are bit-identical.
        again = replay(
            schedule,
            faults=plan_of(JammingIntervals(start=0.2, duration=0.05, period=0.25, count=3)),
        )
        assert again.metrics.missing_packets == result.metrics.missing_packets


class TestEmptyPlanAndComposition:
    def test_empty_plan_is_bit_identical_to_no_plan(self, schedule):
        clean = replay(schedule)
        empty = replay(schedule, faults=FaultPlan(FAULTS.get("empty"), seed=42))
        assert empty.metrics.delivered_fraction == 1.0
        assert empty.overdue_fraction == clean.overdue_fraction
        assert [
            (r.packet_id, r.output_time) for r in empty.replayed
        ] == [(r.packet_id, r.output_time) for r in clean.replayed]

    def test_composed_faults_are_deterministic(self, schedule):
        plan = plan_of(
            BernoulliLoss(rate=0.05),
            GilbertElliottLoss(p_enter_bad=0.03, p_exit_bad=0.3),
            JammingIntervals(start=0.5, duration=0.1),
            seed=9,
        )
        first = replay(schedule, faults=plan)
        second = replay(schedule, faults=plan)
        assert first.metrics.missing_packets == second.metrics.missing_packets
        assert first.metrics.delivered_fraction < 1.0


class TestBackendFallback:
    def test_vectorized_declines_faults_and_falls_back_bit_identically(self, schedule):
        pytest.importorskip("numpy")
        from repro.core.replay_vectorized import VectorizedBackend

        plan = plan_of(BernoulliLoss(rate=0.05), seed=1)
        assert VectorizedBackend().supports_replay("lstf")
        assert not VectorizedBackend().supports_replay("lstf", faults=plan)
        # An empty plan must NOT trigger the fallback.
        assert VectorizedBackend().supports_replay(
            "lstf", faults=FaultPlan(FAULTS.get("empty"))
        )
        reference = replay(schedule, faults=plan)
        fallback = replay(schedule, faults=plan, backend="vectorized")
        assert fallback.metrics.missing_packets == reference.metrics.missing_packets
        assert fallback.overdue_fraction == reference.overdue_fraction


class TestInstallGuards:
    def test_double_install_rejected(self, schedule):
        from repro.sim.simulation import Simulation
        from repro.schedulers.fifo import FifoScheduler

        simulation = Simulation(topology(), lambda name, node: FifoScheduler())
        plan = plan_of(BernoulliLoss(rate=0.5))
        simulation.network.install_faults(plan, horizon=1.0)
        with pytest.raises(RuntimeError, match="already"):
            simulation.network.install_faults(plan, horizon=1.0)

    def test_nonpositive_horizon_rejected(self, schedule):
        from repro.sim.simulation import Simulation
        from repro.schedulers.fifo import FifoScheduler

        simulation = Simulation(topology(), lambda name, node: FifoScheduler())
        with pytest.raises(ValueError, match="horizon"):
            simulation.network.install_faults(plan_of(BernoulliLoss(rate=0.5)), horizon=0.0)
