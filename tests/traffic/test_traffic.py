"""Tests for flow-size distributions, utilization sizing, and Poisson flow generation."""

import pytest

from repro.schedulers import uniform_factory
from repro.sim import Simulation
from repro.topology import dumbbell_topology
from repro.traffic import (
    BoundedParetoSize,
    ConstantSize,
    EmpiricalSize,
    ExponentialSize,
    PoissonFlowGenerator,
    StaticFlowSet,
    WorkloadSpec,
    arrival_rate_for_utilization,
    paper_default_workload,
    utilization_of_rate,
    web_search_workload,
)
from repro.traffic.distributions import data_mining_workload
from repro.utils import RandomState, mbps


class TestDistributions:
    def test_constant_size(self):
        dist = ConstantSize(5000)
        rng = RandomState(0)
        assert dist.sample(rng) == 5000
        assert dist.mean() == 5000
        with pytest.raises(ValueError):
            ConstantSize(0)

    def test_exponential_respects_minimum(self):
        dist = ExponentialSize(mean_bytes=2000, minimum_bytes=1460)
        rng = RandomState(1)
        samples = [dist.sample(rng) for _ in range(500)]
        assert min(samples) >= 1460

    def test_bounded_pareto_within_bounds(self):
        dist = BoundedParetoSize(alpha=1.2, minimum_bytes=1460, maximum_bytes=1e6)
        rng = RandomState(2)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert min(samples) >= 1460
        assert max(samples) <= 1e6

    def test_bounded_pareto_empirical_mean_close_to_analytic(self):
        dist = BoundedParetoSize(alpha=1.3, minimum_bytes=1000, maximum_bytes=1e6)
        rng = RandomState(3)
        samples = [dist.sample(rng) for _ in range(40000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(dist.mean(), rel=0.1)

    def test_bounded_pareto_is_heavy_tailed(self):
        """Most flows are small but most bytes are in the tail."""
        dist = paper_default_workload()
        rng = RandomState(4)
        samples = sorted(dist.sample(rng) for _ in range(5000))
        small_half = samples[: len(samples) // 2]
        total = sum(samples)
        assert sum(small_half) / total < 0.25

    def test_bounded_pareto_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            BoundedParetoSize(alpha=1.2, minimum_bytes=100, maximum_bytes=50)
        with pytest.raises(ValueError):
            BoundedParetoSize(alpha=0, minimum_bytes=1, maximum_bytes=2)

    def test_empirical_distribution_normalizes_and_samples(self):
        dist = EmpiricalSize([(1000, 2.0), (10000, 2.0)])
        rng = RandomState(5)
        samples = {dist.sample(rng) for _ in range(200)}
        assert samples <= {1000.0, 10000.0}
        assert dist.mean() == pytest.approx(5500.0)

    def test_empirical_validates_input(self):
        with pytest.raises(ValueError):
            EmpiricalSize([])
        with pytest.raises(ValueError):
            EmpiricalSize([(-5, 1.0)])

    def test_named_workloads_are_heavy_tailed(self):
        for workload in (web_search_workload(), data_mining_workload()):
            assert workload.mean() > min(workload.sizes)
            assert max(workload.sizes) / min(workload.sizes) > 100


class TestWorkloadSizing:
    def test_rate_and_utilization_roundtrip(self):
        rate = arrival_rate_for_utilization(0.7, mbps(10), 10000)
        assert utilization_of_rate(rate, mbps(10), 10000) == pytest.approx(0.7)

    def test_rate_formula(self):
        # 50% of 8 Mbps with 1000-byte flows = 500 flows/second.
        assert arrival_rate_for_utilization(0.5, 8e6, 1000) == pytest.approx(500.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            arrival_rate_for_utilization(0.0, mbps(10), 1000)
        with pytest.raises(ValueError):
            arrival_rate_for_utilization(0.5, -1, 1000)

    def test_workload_spec_expected_flows(self):
        spec = WorkloadSpec(
            utilization=0.5,
            reference_bandwidth_bps=mbps(8),
            size_distribution=ConstantSize(1000),
            duration=2.0,
        )
        assert spec.per_host_arrival_rate() == pytest.approx(500.0)
        assert spec.expected_flows_per_host() == pytest.approx(1000.0)


class TestPoissonFlowGenerator:
    def _run(self, utilization=0.5, duration=0.5, seed=1):
        topo = dumbbell_topology(3, mbps(10), mbps(100))
        simulation = Simulation(topo, uniform_factory("fifo"), seed=seed)
        workload = WorkloadSpec(
            utilization=utilization,
            reference_bandwidth_bps=mbps(10),
            size_distribution=ConstantSize(5000),
            transport="udp",
            duration=duration,
        )
        generator = simulation.add_poisson_traffic(
            workload,
            sources=["src0", "src1", "src2"],
            destinations=["dst0", "dst1", "dst2"],
        )
        result = simulation.run(until=duration * 4)
        return generator, result

    def test_flow_count_close_to_expectation(self):
        generator, _ = self._run(utilization=0.5, duration=0.5)
        # Expected: rate = 0.5 * 10e6 / (5000*8) = 125 flows/s/host, 3 hosts, 0.5 s.
        expected = 125 * 3 * 0.5
        assert len(generator.flows) == pytest.approx(expected, rel=0.25)

    def test_flows_have_valid_endpoints_and_sizes(self):
        generator, _ = self._run()
        for flow in generator.flows:
            assert flow.src.startswith("src")
            assert flow.dst.startswith("dst")
            assert flow.src != flow.dst
            assert flow.size_bytes == 5000

    def test_generation_stops_at_stop_time(self):
        generator, _ = self._run(duration=0.3)
        assert all(flow.start_time <= 0.3 + 1e-6 for flow in generator.flows)

    def test_same_seed_same_flows(self):
        gen1, _ = self._run(seed=42)
        gen2, _ = self._run(seed=42)
        assert [(f.src, f.dst, f.size_bytes, round(f.start_time, 9)) for f in gen1.flows] == [
            (f.src, f.dst, f.size_bytes, round(f.start_time, 9)) for f in gen2.flows
        ]

    def test_most_flows_complete_under_light_load(self):
        generator, _ = self._run(utilization=0.3)
        assert generator.completion_ratio() > 0.9

    def test_invalid_configuration_rejected(self):
        topo = dumbbell_topology(2, mbps(10), mbps(100))
        simulation = Simulation(topo, uniform_factory("fifo"))
        with pytest.raises(ValueError):
            PoissonFlowGenerator(
                simulation.sim, simulation.network, arrival_rate_per_source=0,
                size_distribution=ConstantSize(1000),
            )
        with pytest.raises(ValueError):
            PoissonFlowGenerator(
                simulation.sim, simulation.network, arrival_rate_per_source=1.0,
                size_distribution=ConstantSize(1000), transport="quic",
            )


class TestStaticFlowSet:
    def test_flows_start_at_their_start_times(self):
        from tests.conftest import make_flow

        topo = dumbbell_topology(2, mbps(10), mbps(100))
        simulation = Simulation(topo, uniform_factory("fifo"), seed=0)
        flows = [
            make_flow(src="src0", dst="dst0", size_bytes=5000, start_time=0.0),
            make_flow(src="src1", dst="dst1", size_bytes=5000, start_time=0.1),
        ]
        simulation.add_flows(flows, transport="udp")
        result = simulation.run(until=1.0)
        assert all(flow.completed for flow in flows)
        assert flows[0].completion_time < flows[1].completion_time
        assert len(result.flows) == 2
