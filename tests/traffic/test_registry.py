"""Tests for the workload registry and the adversarial perturbation layer."""

import pickle

import pytest

from repro.pipeline.cache import distribution_fingerprint
from repro.schedulers import uniform_factory
from repro.sim import Simulation
from repro.topology import dumbbell_topology
from repro.traffic import (
    WORKLOADS,
    ConstantSize,
    DeadlineTagging,
    DistributionSpec,
    HeavyTailInflation,
    IncastBurst,
    OnOffJamming,
    Perturbation,
    PerturbationContext,
    WorkloadDef,
    WorkloadSpec,
    data_mining_workload,
    paper_default_workload,
    web_search_workload,
)
from repro.utils import RandomState, mbps


def context(duration=1.0, bandwidth=mbps(10), mss=1460):
    return PerturbationContext(
        duration=duration,
        reference_bandwidth_bps=bandwidth,
        sources=("src0", "src1", "src2"),
        destinations=("dst0", "dst1", "dst2"),
        mss=mss,
    )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestWorkloadRegistry:
    def test_paper_workloads_registered(self):
        assert {"paper-default", "web-search", "data-mining"} <= set(WORKLOADS.names())
        for definition in WORKLOADS.group("paper"):
            assert definition.perturbations == ()

    def test_adversarial_group_has_at_least_four_workloads(self):
        adversarial = WORKLOADS.group("adversarial")
        assert len(adversarial) >= 4
        assert all(d.perturbations for d in adversarial)

    def test_unknown_workload_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown workload"):
            WORKLOADS.get("nope")

    def test_definitions_are_picklable_and_hashable(self):
        for definition in WORKLOADS:
            assert pickle.loads(pickle.dumps(definition)) == definition
            hash(definition)

    def test_registry_distributions_match_legacy_factories(self):
        """The registry must build byte-identical distributions to the old
        factory functions — their fingerprints feed the schedule cache."""
        legacy = {
            "paper-default": paper_default_workload,
            "web-search": web_search_workload,
            "data-mining": data_mining_workload,
        }
        for name, factory in legacy.items():
            built = WORKLOADS.get(name).build_distribution()
            assert distribution_fingerprint(built) == distribution_fingerprint(factory())

    def test_mean_flow_size_positive(self):
        for definition in WORKLOADS:
            assert definition.mean_flow_size() > 0


# --------------------------------------------------------------------- #
# Serialization round-trips
# --------------------------------------------------------------------- #
class TestRoundTrips:
    def test_workload_def_to_from_dict_identity(self):
        for definition in WORKLOADS:
            assert WorkloadDef.from_dict(definition.to_dict()) == definition

    def test_perturbation_to_from_dict_identity(self):
        perturbations = [
            IncastBurst(bursts=2, fanin=5, flow_bytes=1e4, victim_index=1),
            OnOffJamming(cycles=3, on_fraction=0.5, on_multiplier=2.0, off_multiplier=0.1),
            HeavyTailInflation(probability=0.1, factor=4.0, max_bytes=1e6),
            DeadlineTagging(fraction=0.3, slack_factor=1.5, extra_seconds=0.01),
        ]
        for perturbation in perturbations:
            assert Perturbation.from_dict(perturbation.to_dict()) == perturbation

    def test_unknown_perturbation_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown perturbation"):
            Perturbation.from_dict({"kind": "cosmic-rays"})

    def test_distribution_spec_to_from_dict_identity(self):
        spec = DistributionSpec("empirical", (("points", ((1000.0, 0.5), (2000.0, 0.5))),))
        assert DistributionSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_distribution_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown distribution kind"):
            DistributionSpec("zipf")


# --------------------------------------------------------------------- #
# Perturbation behavior
# --------------------------------------------------------------------- #
class TestPerturbationHooks:
    def test_incast_injects_fanin_flows_per_burst_at_one_victim(self):
        burst = IncastBurst(bursts=2, fanin=3, flow_bytes=5000.0)
        flows = burst.extra_flows(RandomState(0), context(duration=1.0))
        assert len(flows) == 6
        assert {flow.dst for flow in flows} == {"dst0"}
        assert sorted({flow.start_time for flow in flows}) == [
            pytest.approx(1 / 3),
            pytest.approx(2 / 3),
        ]
        assert all(flow.size_bytes == 5000.0 for flow in flows)

    def test_jamming_multiplier_and_transitions(self):
        jam = OnOffJamming(cycles=2, on_fraction=0.5, on_multiplier=3.0, off_multiplier=0.0)
        ctx = context(duration=1.0)  # cycles of 0.5s: ON [0,0.25), OFF [0.25,0.5)
        assert jam.rate_multiplier(0.1, ctx) == 3.0
        assert jam.rate_multiplier(0.3, ctx) == 0.0
        assert jam.next_transition(0.1, ctx) == pytest.approx(0.25)
        assert jam.next_transition(0.3, ctx) == pytest.approx(0.5)
        assert jam.rate_multiplier(0.6, ctx) == 3.0  # second cycle's ON window

    def test_inflation_caps_at_max_bytes(self):
        inflate = HeavyTailInflation(probability=1.0, factor=100.0, max_bytes=50_000.0)
        assert inflate.transform_size(1000.0, RandomState(0), context()) == 50_000.0
        never = HeavyTailInflation(probability=0.0, factor=100.0)
        assert never.transform_size(1000.0, RandomState(0), context()) == 1000.0

    def test_deadline_tagging_scales_with_flow_size(self):
        from repro.sim.flow import Flow

        tag = DeadlineTagging(fraction=1.0, slack_factor=2.0)
        ctx = context(bandwidth=8e6)  # ideal transfer = size / 1e6 seconds
        flow = Flow(src="a", dst="b", size_bytes=1e6, start_time=0.5)
        tag.annotate_flow(flow, RandomState(0), ctx)
        assert flow.deadline == pytest.approx(0.5 + 2.0)
        untagged = DeadlineTagging(fraction=0.0)
        flow2 = Flow(src="a", dst="b", size_bytes=1e6, start_time=0.5)
        untagged.annotate_flow(flow2, RandomState(0), ctx)
        assert flow2.deadline is None


# --------------------------------------------------------------------- #
# Perturbed generation through the simulator
# --------------------------------------------------------------------- #
class TestPerturbedGeneration:
    def _run(self, perturbations, seed=7, utilization=0.5, duration=0.5):
        topo = dumbbell_topology(3, mbps(10), mbps(100))
        simulation = Simulation(topo, uniform_factory("fifo"), seed=seed)
        workload = WorkloadSpec(
            utilization=utilization,
            reference_bandwidth_bps=mbps(10),
            size_distribution=ConstantSize(5000),
            transport="udp",
            duration=duration,
            perturbations=tuple(perturbations),
        )
        generator = simulation.add_poisson_traffic(
            workload,
            sources=["src0", "src1", "src2"],
            destinations=["dst0", "dst1", "dst2"],
        )
        simulation.run(until=duration * 6)
        return generator

    def test_incast_flows_ride_on_top_of_poisson(self):
        plain = self._run([])
        incast = self._run([IncastBurst(bursts=2, fanin=4, flow_bytes=5000.0)])
        extra = [flow for flow in incast.flows if flow.dst == "dst0" and flow.src.startswith("src")]
        assert len(incast.flows) >= len(plain.flows)
        assert len(extra) >= 8  # 2 bursts x 4 lanes all aim at the victim

    def test_silent_jamming_windows_produce_no_arrivals(self):
        jam = OnOffJamming(cycles=2, on_fraction=0.5, on_multiplier=2.0, off_multiplier=0.0)
        generator = self._run([jam], duration=0.4)
        # OFF windows are [0.1, 0.2) and [0.3, 0.4): no Poisson arrivals there.
        for flow in generator.flows:
            phase = (flow.start_time % 0.2) / 0.2
            assert phase < 0.5 or flow.start_time >= 0.4
        # Sources waking from an OFF window resample a fresh gap — they must
        # not all fire a synchronized flow exactly on the window boundary.
        boundaries = {0.0, 0.1, 0.2, 0.3, 0.4}
        assert not any(
            round(flow.start_time, 12) in boundaries for flow in generator.flows
        )

    def test_deadline_tagging_marks_roughly_the_requested_fraction(self):
        generator = self._run(
            [DeadlineTagging(fraction=0.5, slack_factor=3.0)], utilization=0.8, duration=1.0
        )
        tagged = [flow for flow in generator.flows if flow.deadline is not None]
        assert 0.2 < len(tagged) / len(generator.flows) < 0.8
        assert all(flow.deadline > flow.start_time for flow in tagged)

    def test_perturbed_arrivals_deterministic_under_fixed_seed(self):
        perturbations = [
            OnOffJamming(cycles=4, on_fraction=0.25, on_multiplier=4.0, off_multiplier=0.25),
            IncastBurst(bursts=2, fanin=3, flow_bytes=5000.0),
            HeavyTailInflation(probability=0.2, factor=3.0, max_bytes=1e6),
            DeadlineTagging(fraction=0.5, slack_factor=2.0),
        ]
        first = self._run(perturbations, seed=42)
        second = self._run(perturbations, seed=42)
        signature = lambda gen: [
            (f.src, f.dst, f.size_bytes, round(f.start_time, 12), f.deadline)
            for f in gen.flows
        ]
        assert signature(first) == signature(second)
