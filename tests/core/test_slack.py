"""Tests for slack initialization: replay initializers and practical heuristics."""

import pytest

from repro.core.schedule import PacketRecord
from repro.core.slack import (
    BlackBoxSlackInitializer,
    ConstantSlackPolicy,
    FairnessSlackPolicy,
    FlowSizeSlackPolicy,
    NullSlackPolicy,
    OmniscientInitializer,
    OutputTimePriorityInitializer,
)
from repro.schedulers import uniform_factory
from repro.sim import Simulator
from repro.sim.packet import Packet, PacketType
from repro.topology import linear_topology
from repro.utils import mbps


@pytest.fixture
def line_network():
    topo = linear_topology(2, mbps(10))
    return topo.build(Simulator(), uniform_factory("fifo"))


def make_record(network, ingress=0.0, output=0.05, size=1000.0):
    path = network.path("src0", "dst0")
    return PacketRecord(
        packet_id=1,
        flow_id=1,
        src="src0",
        dst="dst0",
        size_bytes=size,
        ingress_time=ingress,
        output_time=output,
        path=path,
    )


class TestReplayInitializers:
    def test_blackbox_slack_is_output_minus_ingress_minus_tmin(self, line_network):
        record = make_record(line_network, ingress=0.01, output=0.05)
        packet = Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000)
        BlackBoxSlackInitializer().initialize(packet, record, line_network)
        tmin = line_network.tmin_along(1000, record.path)
        assert packet.header.slack == pytest.approx(0.05 - 0.01 - tmin)
        assert packet.header.deadline == pytest.approx(0.05)

    def test_blackbox_slack_zero_for_uncongested_packet(self, line_network):
        tmin = line_network.tmin(1000, "src0", "dst0")
        record = make_record(line_network, ingress=0.0, output=tmin)
        packet = Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000)
        BlackBoxSlackInitializer().initialize(packet, record, line_network)
        assert packet.header.slack == pytest.approx(0.0, abs=1e-12)

    def test_priority_initializer_uses_output_time(self, line_network):
        record = make_record(line_network, output=0.123)
        packet = Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000)
        OutputTimePriorityInitializer().initialize(packet, record, line_network)
        assert packet.header.priority == pytest.approx(0.123)

    def test_omniscient_initializer_copies_hop_vector(self, line_network):
        record = make_record(line_network)
        from repro.core.schedule import HopTiming

        record.hops = [
            HopTiming("src0", 0.0, 0.001, 0.002),
            HopTiming("r0", 0.002, 0.003, 0.004),
        ]
        packet = Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000)
        OmniscientInitializer().initialize(packet, record, line_network)
        assert list(packet.header.hop_output_times) == [0.001, 0.003]


class TestFlowSizeSlackPolicy:
    def test_slack_proportional_to_flow_size(self):
        policy = FlowSizeSlackPolicy(scale=2.0)
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        packet.header.flow_size_bytes = 5000
        policy.on_packet_sent(packet, now=0.0)
        assert packet.header.slack == pytest.approx(10000.0)

    def test_falls_back_to_packet_size(self):
        policy = FlowSizeSlackPolicy(scale=1.0)
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=1460)
        policy.on_packet_sent(packet, now=0.0)
        assert packet.header.slack == pytest.approx(1460.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            FlowSizeSlackPolicy(scale=0.0)


class TestConstantSlackPolicy:
    def test_every_packet_gets_same_slack(self):
        policy = ConstantSlackPolicy(slack=1.0)
        packets = [Packet(flow_id=i, src="a", dst="b", size_bytes=100) for i in range(3)]
        for packet in packets:
            policy.on_packet_sent(packet, now=float(packet.flow_id))
        assert {p.header.slack for p in packets} == {1.0}

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            ConstantSlackPolicy(slack=-1.0)


class TestFairnessSlackPolicy:
    def test_first_packet_gets_zero_slack(self):
        policy = FairnessSlackPolicy(rate_estimate_bps=1e6)
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        policy.on_packet_sent(packet, now=0.0)
        assert packet.header.slack == 0.0

    def test_fast_sender_accumulates_slack(self):
        """Packets sent faster than the fair rate accumulate slack (they can wait)."""
        policy = FairnessSlackPolicy(rate_estimate_bps=1e6)
        credit = 1000 * 8 / 1e6  # seconds per 1000-byte packet at the fair rate
        slacks = []
        for index in range(4):
            packet = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
            policy.on_packet_sent(packet, now=index * credit / 10)
            slacks.append(packet.header.slack)
        assert slacks[0] == 0.0
        assert all(b > a for a, b in zip(slacks, slacks[1:]))

    def test_slow_sender_keeps_zero_slack(self):
        """Packets sent slower than the fair rate never accumulate slack."""
        policy = FairnessSlackPolicy(rate_estimate_bps=1e6)
        credit = 1000 * 8 / 1e6
        for index in range(4):
            packet = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
            policy.on_packet_sent(packet, now=index * credit * 5)
            assert packet.header.slack == 0.0

    def test_flows_tracked_independently(self):
        policy = FairnessSlackPolicy(rate_estimate_bps=1e6)
        a1 = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        b1 = Packet(flow_id=2, src="a", dst="b", size_bytes=1000)
        a2 = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        policy.on_packet_sent(a1, now=0.0)
        policy.on_packet_sent(b1, now=0.004)
        policy.on_packet_sent(a2, now=0.004)
        # Flow 2's first packet starts from zero even though flow 1 has state.
        assert b1.header.slack == 0.0
        assert a2.header.slack >= 0.0

    def test_acks_get_constant_slack(self):
        policy = FairnessSlackPolicy(rate_estimate_bps=1e6, ack_slack=0.5)
        ack = Packet(flow_id=1, src="b", dst="a", size_bytes=40, ptype=PacketType.ACK)
        policy.on_packet_sent(ack, now=0.0)
        assert ack.header.slack == 0.5

    def test_reset_clears_state(self):
        policy = FairnessSlackPolicy(rate_estimate_bps=1e6)
        first = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        policy.on_packet_sent(first, now=0.0)
        policy.reset()
        again = Packet(flow_id=1, src="a", dst="b", size_bytes=1000)
        policy.on_packet_sent(again, now=10.0)
        assert again.header.slack == 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            FairnessSlackPolicy(rate_estimate_bps=0.0)


class TestNullPolicy:
    def test_leaves_header_untouched(self):
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        NullSlackPolicy().on_packet_sent(packet, now=0.0)
        assert packet.header.slack is None
        assert packet.header.priority is None
