"""Golden equivalence: streaming metrics reproduce the record-list metrics.

One representative scenario from each current experiment group (table1,
adversarial, heuristics, faults) is recorded and replayed, then summarized by
both implementation paths:

* the **reference** path (:func:`compare_schedules`,
  :func:`schedule_statistics`) that every golden row fixture pins;
* the **streaming** path (:class:`StreamingReplayComparison`,
  :class:`StreamingScheduleStatistics`) the scale tier runs.

The equivalence contract under test (docs/scale.md): every count, sum-derived
mean, and max field is reproduced **bit-identically** when both paths fold
the records in the same order, and sketch-based percentiles land within the
documented ε of the exact value's bracketing order statistics.  The same
assertions are repeated after splitting the record stream into chunks and
merging the per-chunk partials — the shard runner's exact code shape.
"""

from __future__ import annotations

import math

import pytest

from repro.core.metrics import (
    StreamingReplayComparison,
    StreamingScheduleStatistics,
    compare_schedules,
    compare_schedules_streaming,
    schedule_statistics,
    streaming_schedule_statistics,
)
from repro.utils.stats import percentile


def _replay_cases():
    """One (label, scenario, mode) per replay-style experiment group."""
    from repro.experiments.adversarial import adversarial_scenarios
    from repro.experiments.config import ExperimentScale
    from repro.experiments.faults import FAULT_MODES, fault_scenarios
    from repro.experiments.table1 import default_scenario

    scale = ExperimentScale.smoke()
    fault_scenario = next(
        scenario for scenario in fault_scenarios(scale) if scenario.faults
    )
    return [
        ("table1", default_scenario(scale, name="streq-table1"), "lstf"),
        ("adversarial", adversarial_scenarios(scale)[0], "lstf"),
        ("faults", fault_scenario, FAULT_MODES[0]),
    ]


@pytest.fixture(scope="module")
def replay_results(tmp_path_factory):
    """Replay one scenario per group once; every test reuses the schedules."""
    from repro.pipeline.cache import ScheduleCache
    from repro.pipeline.experiment import replay_scenario
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    cache = ScheduleCache(tmp_path_factory.mktemp("streq-cache"))
    results = {}
    for label, scenario, mode in _replay_cases():
        reset_packet_ids()
        reset_flow_ids()
        results[label] = replay_scenario(scenario, mode=mode, cache=cache)
    return results


@pytest.fixture(scope="module")
def heuristics_schedule():
    """A heuristic-scheduler schedule (the heuristics group's direct cells)."""
    from repro.experiments.config import ExperimentScale
    from repro.experiments.heuristics import SCHEME_BY_LABEL, heuristic_scenario
    from repro.pipeline.experiment import record_scenario_schedule
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    scale = ExperimentScale.smoke()
    scenario = heuristic_scenario(scale, "deadline-tagged", SCHEME_BY_LABEL["srpt"])
    reset_packet_ids()
    reset_flow_ids()
    return record_scenario_schedule(scenario)


def _assert_sketch_brackets(sketch, values, q):
    """Sketch quantile within ε of the exact percentile's order-statistic bracket."""
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    lo = ordered[int(math.floor(rank))]
    hi = ordered[int(math.ceil(rank))]
    assert lo <= percentile(values, q) <= hi
    alpha = sketch.alpha
    value = sketch.quantile(q)
    assert lo - abs(lo) * alpha <= value <= hi + abs(hi) * alpha


def _assert_statistics_equivalent(schedule):
    """Streaming schedule statistics == reference, field by field."""
    reference = schedule_statistics(schedule)
    streaming = streaming_schedule_statistics(schedule.records())
    # Exact fields are bit-identical (== on floats, not approx).
    assert streaming.packets == reference.packets
    assert streaming.mean_delay == reference.mean_delay
    assert streaming.max_delay == reference.max_delay
    assert streaming.deadline_total == reference.deadline_total
    assert streaming.deadline_met == reference.deadline_met
    assert streaming.deadline_met_fraction == reference.deadline_met_fraction
    # p99 is sketch-based: within ε of the exact percentile's bracket.
    delays = [record.network_delay for record in schedule.records()]
    accumulator = StreamingScheduleStatistics()
    accumulator.extend(schedule.records())
    _assert_sketch_brackets(accumulator.delays, delays, 99)
    return reference


def _assert_comparison_equivalent(original, replayed, threshold):
    """Streaming replay comparison == reference, field by field."""
    reference = compare_schedules(original, replayed, threshold)
    streaming = compare_schedules_streaming(
        iter(original), replayed, threshold
    )
    assert streaming.total_packets == reference.total_packets
    assert streaming.missing_packets == reference.missing_packets
    assert streaming.overdue_count == reference.overdue_count
    assert (
        streaming.overdue_beyond_threshold_count
        == reference.overdue_beyond_threshold_count
    )
    assert streaming.mean_lateness == reference.mean_lateness
    assert streaming.max_lateness == reference.max_lateness
    assert streaming.deadline_total == reference.deadline_total
    assert streaming.deadline_met_original == reference.deadline_met_original
    assert streaming.deadline_met_replay == reference.deadline_met_replay
    assert streaming.deadline_flows_delivered == reference.deadline_flows_delivered
    assert streaming.overdue_fraction == reference.overdue_fraction
    assert streaming.delivered_fraction == reference.delivered_fraction
    # The ratio list is the one thing streaming does NOT materialize; its
    # sketch reproduces the list's count/sum/min/max exactly (same fold
    # order) and its percentiles within ε.
    assert streaming.queueing_delay_ratios == []
    comparison = StreamingReplayComparison(replayed, threshold)
    comparison.extend(iter(original))
    ratios = reference.queueing_delay_ratios
    assert comparison.ratios.count == len(ratios)
    if ratios:
        assert comparison.ratios.total == sum(ratios)
        assert comparison.ratios.minimum == min(ratios)
        assert comparison.ratios.maximum == max(ratios)
        _assert_sketch_brackets(comparison.ratios, ratios, 50)
        _assert_sketch_brackets(comparison.ratios, ratios, 99)
    return reference


class TestGroupEquivalence:
    @pytest.mark.parametrize("label", ["table1", "adversarial", "faults"])
    def test_replay_groups_bit_identical(self, replay_results, label):
        result = replay_results[label]
        metrics = _assert_comparison_equivalent(
            result.original, result.replayed, result.metrics.threshold
        )
        # Sanity: the comparison under test is the one the group's row used.
        assert metrics.overdue_fraction == result.metrics.overdue_fraction
        assert metrics.total_packets == result.metrics.total_packets

    def test_missing_packets_branch_equivalent(self, replay_results):
        """Dropped packets (the fault-injection case) compare identically.

        Smoke-scale fault plans do not always destroy a packet, so the
        missing branch is exercised deterministically: every third replay
        record is withheld and both paths must agree on the damage.
        """
        from repro.core.schedule import Schedule

        result = replay_results["faults"]
        survivors = [
            record
            for index, record in enumerate(result.replayed.records())
            if index % 3
        ]
        truncated = Schedule(survivors)
        metrics = _assert_comparison_equivalent(
            result.original, truncated, result.metrics.threshold
        )
        assert metrics.missing_packets > 0

    @pytest.mark.parametrize("label", ["table1", "adversarial", "faults"])
    def test_schedule_statistics_bit_identical(self, replay_results, label):
        result = replay_results[label]
        _assert_statistics_equivalent(result.original)
        _assert_statistics_equivalent(result.replayed)

    def test_heuristics_group_bit_identical(self, heuristics_schedule):
        reference = _assert_statistics_equivalent(heuristics_schedule)
        assert reference.packets > 0


class TestShardedMerge:
    """Chunked fold + shard-index-order merge: the shard runner's contract.

    Integer counts, maxima, and sketch bins are *bit-identical* to the
    single pass (integer/max arithmetic is associative).  Float running
    sums are associative only up to rounding, so the contract for them is
    **determinism** — the same shard partition merged in shard-index order
    yields the same bits on every run — plus agreement with the single pass
    to ~1 ulp-scale relative tolerance.
    """

    @pytest.mark.parametrize("chunks", [2, 3, 7])
    def test_statistics_merge_matches_single_pass(self, replay_results, chunks):
        schedule = replay_results["table1"].original
        records = list(schedule.records())
        single = StreamingScheduleStatistics()
        single.extend(records)
        size = max(1, math.ceil(len(records) / chunks))

        def fold():
            merged = StreamingScheduleStatistics()
            for start in range(0, len(records), size):
                partial = StreamingScheduleStatistics()
                partial.extend(records[start : start + size])
                merged = merged.merge(partial)
            return merged

        merged = fold()
        final_single = single.finalize()
        final_merged = merged.finalize()
        # Exact fields: bit-identical to the single pass.
        assert merged.delays.to_dict()["bins"] == single.delays.to_dict()["bins"]
        assert final_merged.packets == final_single.packets
        assert final_merged.max_delay == final_single.max_delay
        assert final_merged.p99_delay == final_single.p99_delay
        assert final_merged.deadline_total == final_single.deadline_total
        assert final_merged.deadline_met == final_single.deadline_met
        # Float sums: deterministic across runs, ~exact vs the single pass.
        assert final_merged.mean_delay == pytest.approx(
            final_single.mean_delay, rel=1e-12
        )
        assert fold().finalize() == final_merged

    @pytest.mark.parametrize("chunks", [2, 5])
    def test_comparison_merge_matches_single_pass(self, replay_results, chunks):
        result = replay_results["faults"]
        records = list(result.original.records())
        threshold = result.metrics.threshold
        single = StreamingReplayComparison(result.replayed, threshold)
        single.extend(records)
        size = max(1, math.ceil(len(records) / chunks))

        def fold():
            merged = StreamingReplayComparison(result.replayed, threshold)
            for start in range(0, len(records), size):
                partial = StreamingReplayComparison(result.replayed, threshold)
                partial.extend(records[start : start + size])
                merged = merged.merge(partial)
            return merged

        merged = fold()
        final_single = single.finalize()
        final_merged = merged.finalize()
        assert merged.ratios.to_dict()["bins"] == single.ratios.to_dict()["bins"]
        assert final_merged.total_packets == final_single.total_packets
        assert final_merged.missing_packets == final_single.missing_packets
        assert final_merged.overdue_count == final_single.overdue_count
        assert final_merged.max_lateness == final_single.max_lateness
        assert final_merged.deadline_total == final_single.deadline_total
        assert final_merged.deadline_met_replay == final_single.deadline_met_replay
        assert final_merged.mean_lateness == pytest.approx(
            final_single.mean_lateness, rel=1e-12
        )
        assert fold().finalize() == final_merged

    def test_comparison_merge_rejects_mismatched_settings(self, replay_results):
        result = replay_results["table1"]
        a = StreamingReplayComparison(result.replayed, threshold=1.0)
        b = StreamingReplayComparison(result.replayed, threshold=2.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_statistics_roundtrip_through_dict(self, replay_results):
        """Shard partials cross process boundaries as dicts, losslessly."""
        schedule = replay_results["table1"].original
        accumulator = StreamingScheduleStatistics()
        accumulator.extend(schedule.records())
        loaded = StreamingScheduleStatistics.from_dict(accumulator.to_dict())
        assert loaded.to_dict() == accumulator.to_dict()
        assert loaded.finalize() == accumulator.finalize()
