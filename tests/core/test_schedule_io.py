"""Schedule persistence: the JSON-lines round-trip must be lossless."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.replay import evaluate_replay
from repro.core.schedule import (
    SCHEDULE_FORMAT,
    HopTiming,
    PacketRecord,
    Schedule,
    load_schedule,
    save_schedule,
)
from repro.pipeline.experiment import record_scenario_schedule
from repro.pipeline.scenario import Scenario
from repro.experiments import ExperimentScale
from repro.topology.base import Topology, dumbbell_topology

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
node_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)


@st.composite
def hop_timings(draw):
    arrival = draw(finite)
    start = draw(st.one_of(st.none(), finite))
    departure = draw(st.one_of(st.none(), finite))
    return HopTiming(
        node=draw(node_names),
        arrival_time=arrival,
        start_service_time=start,
        departure_time=departure,
    )


@st.composite
def packet_records(draw, packet_id):
    hops = draw(st.lists(hop_timings(), max_size=4))
    path = [hop.node for hop in hops] + [draw(node_names)]
    return PacketRecord(
        packet_id=packet_id,
        flow_id=draw(st.integers(min_value=0, max_value=2**31)),
        src=draw(node_names),
        dst=draw(node_names),
        size_bytes=draw(st.floats(min_value=1.0, max_value=1e9, allow_nan=False)),
        ingress_time=draw(finite),
        output_time=draw(finite),
        path=path,
        hops=hops,
        flow_size_bytes=draw(st.one_of(st.none(), finite)),
        deadline=draw(st.one_of(st.none(), finite)),
    )


@st.composite
def schedules(draw):
    ids = draw(st.lists(st.integers(min_value=0, max_value=2**40), unique=True, max_size=12))
    return Schedule([draw(packet_records(packet_id)) for packet_id in ids])


# --------------------------------------------------------------------- #
# Property: to_jsonl -> from_jsonl is the identity
# --------------------------------------------------------------------- #
class TestRoundTripProperty:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(schedule=schedules(), compressed=st.booleans())
    def test_round_trip_is_lossless(self, schedule, compressed, tmp_path):
        path = tmp_path / ("s.jsonl.gz" if compressed else "s.jsonl")
        schedule.to_jsonl(path, meta={"n": len(schedule)})
        loaded, meta = load_schedule(path)
        assert meta == {"n": len(schedule)}
        assert sorted(loaded.packet_ids()) == sorted(schedule.packet_ids())
        for record in schedule:
            copy = loaded.record(record.packet_id)
            # Dataclass equality covers every field, including the full hop
            # vector with exact float values.
            assert copy == record

    @settings(max_examples=15, deadline=None)
    @given(schedule=schedules())
    def test_records_sorted_identically_after_reload(self, schedule):
        # records() ordering (ingress, packet id) is what replay injection
        # uses; it must be stable across a round-trip.
        import os
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "s.jsonl")
            save_schedule(path, schedule)
            loaded, _ = load_schedule(path)
        assert [r.packet_id for r in loaded.records()] == [
            r.packet_id for r in schedule.records()
        ]


class TestPreDeadlineCompatibility:
    def test_records_without_deadline_field_load_as_none(self):
        """Schedule files written before deadlines existed must still load."""
        data = PacketRecord(
            packet_id=1,
            flow_id=1,
            src="a",
            dst="b",
            size_bytes=100.0,
            ingress_time=0.0,
            output_time=1.0,
            path=["a", "b"],
        ).to_dict()
        del data["deadline"]  # the pre-refactor on-disk shape
        assert PacketRecord.from_dict(data).deadline is None


# --------------------------------------------------------------------- #
# File-format edge cases
# --------------------------------------------------------------------- #
class TestFileFormat:
    def test_rejects_non_schedule_files(self, tmp_path):
        path = tmp_path / "nope.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro-schedule/1 file"):
            load_schedule(path)

    def test_rejects_empty_files(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty schedule file"):
            load_schedule(path)

    def test_detects_truncation(self, tmp_path):
        schedule = Schedule(
            [
                PacketRecord(i, 0, "a", "b", 100.0, 0.0, 1.0, ["a", "b"])
                for i in range(3)
            ]
        )
        path = tmp_path / "s.jsonl"
        save_schedule(path, schedule)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last record
        with pytest.raises(ValueError, match="truncated"):
            load_schedule(path)

    def test_header_carries_format_tag(self, tmp_path):
        path = tmp_path / "s.jsonl"
        save_schedule(path, Schedule())
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == SCHEDULE_FORMAT
        assert header["packets"] == 0


# --------------------------------------------------------------------- #
# Topology spec round-trip (carried in schedule-file metadata)
# --------------------------------------------------------------------- #
class TestTopologySpecRoundTrip:
    def test_round_trip(self):
        topo = dumbbell_topology(
            num_pairs=2, bottleneck_bandwidth_bps=1e7, access_bandwidth_bps=1e8
        )
        clone = Topology.from_dict(topo.to_dict())
        assert clone == topo

    def test_bottleneck_transmission_time_matches_specs(self):
        topo = dumbbell_topology(
            num_pairs=2, bottleneck_bandwidth_bps=1e7, access_bandwidth_bps=1e8
        )
        assert topo.bottleneck_bandwidth_bps() == 1e7
        assert topo.bottleneck_transmission_time(1460) == pytest.approx(1460 * 8 / 1e7)


# --------------------------------------------------------------------- #
# End to end: a recorded schedule replays identically after a round-trip
# --------------------------------------------------------------------- #
class TestRecordedScheduleRoundTrip:
    def test_loaded_schedule_replays_identically(self, tmp_path):
        scale = ExperimentScale.smoke()
        scenario = Scenario(
            name="io-test",
            scale=scale,
            topology="internet2",
            topology_args=(("edge_core_gbps", 1.0), ("host_edge_gbps", 10.0)),
            utilization=0.5,
        )
        topology = scenario.build_topology()
        schedule = record_scenario_schedule(scenario, topology)
        path = tmp_path / "recorded.jsonl.gz"
        schedule.to_jsonl(path, meta={"topology": topology.to_dict()})
        loaded, meta = load_schedule(path)
        assert len(loaded) == len(schedule)
        for record in schedule:
            assert loaded.record(record.packet_id) == record
        rebuilt = Topology.from_dict(meta["topology"])
        fresh = evaluate_replay(topology, schedule, mode="lstf")
        reloaded = evaluate_replay(rebuilt, loaded, mode="lstf")
        assert reloaded.metrics.overdue_count == fresh.metrics.overdue_count
        assert reloaded.metrics.threshold == fresh.metrics.threshold


class TestCanonicalRecords:
    """`canonical_records` is the comparator's walk order, pinned here."""

    def test_sorted_by_ingress_time_then_packet_id(self):
        def rec(packet_id, ingress):
            return PacketRecord(
                packet_id=packet_id,
                flow_id=0,
                src="a",
                dst="b",
                size_bytes=100.0,
                ingress_time=ingress,
                output_time=ingress + 1.0,
                path=["a", "b"],
                hops=[],
            )

        # Inserted deliberately out of order, with an ingress tie on 7/3.
        schedule = Schedule([rec(7, 0.5), rec(1, 0.9), rec(3, 0.5), rec(2, 0.1)])
        order = [
            (r.ingress_time, r.packet_id) for r in schedule.canonical_records()
        ]
        assert order == [(0.1, 2), (0.5, 3), (0.5, 7), (0.9, 1)]
        assert order == sorted(order)
