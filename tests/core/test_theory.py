"""Tests for the executable theory results (the paper's appendix)."""

import pytest

from repro.core.replay import evaluate_replay
from repro.core.theory import (
    add_congestion_segment,
    appendix_c_example,
    appendix_f_example,
    appendix_g_example,
    bandwidth_for_transmission_time,
    blackbox_attributes,
    has_priority_cycle,
    identical_blackbox_views,
    priority_order_constraints,
)
from repro.topology import Topology


def overdue(example, schedule, mode):
    result = evaluate_replay(example.topology, schedule, mode=mode, threshold=1e-6)
    return result.metrics.overdue_count


class TestHelpers:
    def test_bandwidth_for_transmission_time(self):
        assert bandwidth_for_transmission_time(1.0, size_bytes=1.0) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            bandwidth_for_transmission_time(0.0)

    def test_congestion_segment_structure(self):
        topo = Topology("t")
        in_name, out_name = add_congestion_segment(topo, "alpha", 1.0)
        assert in_name == "alpha-in"
        assert out_name == "alpha-out"
        assert topo.num_links == 1
        assert topo.links[0].bandwidth_bps == pytest.approx(8.0)


class TestAppendixC:
    """No UPS exists under black-box initialization."""

    def test_two_cases_share_blackbox_views_for_a_and_x(self):
        example = appendix_c_example()
        case1, case2 = example.schedules
        for name in ("a", "x"):
            pid = example.packet_names[name]
            assert identical_blackbox_views(case1, case2, pid)

    def test_cases_are_genuinely_different_schedules(self):
        example = appendix_c_example()
        case1, case2 = example.schedules
        differing = [
            pid for pid in case1.packet_ids()
            if blackbox_attributes(case1.record(pid)) != blackbox_attributes(case2.record(pid))
        ]
        assert differing  # packets from flows B and Y have different output times

    @pytest.mark.parametrize("mode", ["lstf", "lstf-preemptive", "edf", "priority"])
    def test_every_deterministic_blackbox_candidate_fails_some_case(self, mode):
        example = appendix_c_example()
        failures = [overdue(example, schedule, mode) for schedule in example.schedules]
        assert max(failures) > 0

    def test_packets_a_and_x_cross_three_congestion_points(self):
        example = appendix_c_example()
        for name in ("a", "x"):
            record = example.schedules[0].record(example.packet_names[name])
            assert record.congestion_points() >= 1
            # Their paths traverse three congestion segments.
            segment_hops = [node for node in record.path if node.endswith("-in")]
            assert len(segment_hops) == 3


class TestAppendixF:
    """Simple priorities fail at two congestion points; LSTF does not."""

    def test_schedule_has_at_most_two_congestion_points_per_packet(self):
        example = appendix_f_example()
        for record in example.schedule:
            segment_hops = [node for node in record.path if node.endswith("-in")]
            assert len(segment_hops) <= 2

    def test_priority_cycle_detected(self):
        example = appendix_f_example()
        assert has_priority_cycle(example.schedule)
        graph = priority_order_constraints(example.schedule)
        a, b, c = (example.packet_names[k] for k in ("a", "b", "c"))
        assert graph.has_edge(a, b)
        assert graph.has_edge(b, c)
        assert graph.has_edge(c, a)

    def test_priority_replay_fails(self):
        example = appendix_f_example()
        assert overdue(example, example.schedule, "priority") > 0

    def test_preemptive_lstf_replays_perfectly(self):
        example = appendix_f_example()
        assert overdue(example, example.schedule, "lstf-preemptive") == 0

    def test_nonpreemptive_lstf_is_at_worst_slightly_late(self):
        """Without preemption the only violations are same-instant ties."""
        example = appendix_f_example()
        result = evaluate_replay(example.topology, example.schedule, mode="lstf", threshold=1e-6)
        assert result.metrics.max_lateness <= 0.5 + 1e-6


class TestAppendixG:
    """LSTF fails once a packet crosses three congestion points."""

    def test_flow_a_crosses_three_congestion_points(self):
        example = appendix_g_example()
        record = example.schedule.record(example.packet_names["a"])
        segment_hops = [node for node in record.path if node.endswith("-in")]
        assert len(segment_hops) == 3

    @pytest.mark.parametrize("mode", ["lstf", "lstf-preemptive", "priority", "edf"])
    def test_no_candidate_replays_the_schedule(self, mode):
        example = appendix_g_example()
        assert overdue(example, example.schedule, mode) > 0

    def test_schedule_has_no_priority_cycle(self):
        """The failure is not a trivial priority cycle; it is a slack-allocation dilemma."""
        example = appendix_g_example()
        assert not has_priority_cycle(example.schedule)
