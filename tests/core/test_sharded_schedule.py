"""Sharded schedule persistence: round trips, diff parity, failure modes.

The shard layout contract (docs/scale.md): sharding is *storage, never
content* — a schedule saved as ``<key>.shard-<i>.jsonl.gz`` chunks plus a
manifest loads back identical to the single-file form, preserves canonical
``(ingress_time, packet_id)`` order across arbitrary shard boundaries, and
``repro diff`` reports the two forms bit-clean.  A truncated or missing
shard fails loudly with the same exit-2 CLI behaviour as every other
malformed schedule file.
"""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.core.schedule import (
    MANIFEST_FORMAT,
    MANIFEST_SUFFIX,
    HopTiming,
    PacketRecord,
    Schedule,
    iter_schedule_records,
    load_manifest,
    load_schedule,
    save_schedule,
    save_schedule_sharded,
    shard_file_name,
)


def make_record(pid: int, ingress: float) -> PacketRecord:
    return PacketRecord(
        packet_id=pid,
        flow_id=pid % 5,
        src="a",
        dst="b",
        size_bytes=1500.0,
        ingress_time=ingress,
        output_time=ingress + 0.25,
        path=["a", "r", "b"],
        hops=[HopTiming(node="r", arrival_time=ingress, start_service_time=ingress + 0.1, departure_time=ingress + 0.2)],
        deadline=ingress + 1.0 if pid % 3 == 0 else None,
    )


@pytest.fixture()
def schedule() -> Schedule:
    # Deliberately scrambled insertion order and ties on ingress_time, so
    # canonical ordering (ingress, then packet id) actually has work to do.
    records = [make_record(pid, ingress=float((pid * 7) % 10) / 10.0) for pid in range(23)]
    records.reverse()
    return Schedule(records)


def record_dicts(records) -> list:
    return [record.to_dict() for record in records]


class TestRoundTrip:
    @pytest.mark.parametrize("shard_packets", [1, 2, 3, 7, 1000])
    def test_round_trip_preserves_canonical_order(self, tmp_path, schedule, shard_packets):
        path = tmp_path / f"sched{MANIFEST_SUFFIX}"
        shards = save_schedule_sharded(
            path, schedule, meta={"origin": "test"}, shard_packets=shard_packets
        )
        assert len(shards) == -(-len(schedule) // shard_packets)
        loaded, meta = load_schedule(path)
        assert meta == {"origin": "test"}
        assert record_dicts(loaded.records()) == record_dicts(schedule.records())
        # The streaming cursor yields the same records in the same order
        # without ever building a Schedule.
        cursor = list(iter_schedule_records(path))
        assert record_dicts(cursor) == record_dicts(schedule.records())

    def test_sharded_equals_single_file_form(self, tmp_path, schedule):
        single = tmp_path / "sched.jsonl.gz"
        manifest = tmp_path / f"sched{MANIFEST_SUFFIX}"
        save_schedule(single, schedule)
        save_schedule_sharded(manifest, schedule, shard_packets=4)
        loaded_single, _ = load_schedule(single)
        loaded_sharded, _ = load_schedule(manifest)
        assert record_dicts(loaded_sharded.records()) == record_dicts(
            loaded_single.records()
        )
        assert list(
            json.dumps(r.to_dict()) for r in iter_schedule_records(single)
        ) == list(json.dumps(r.to_dict()) for r in iter_schedule_records(manifest))

    def test_empty_schedule_round_trips(self, tmp_path):
        path = tmp_path / f"empty{MANIFEST_SUFFIX}"
        assert save_schedule_sharded(path, Schedule()) == []
        loaded, _ = load_schedule(path)
        assert len(loaded) == 0
        assert list(iter_schedule_records(path)) == []

    def test_manifest_describes_ingress_chunks(self, tmp_path, schedule):
        path = tmp_path / f"sched{MANIFEST_SUFFIX}"
        save_schedule_sharded(path, schedule, shard_packets=5)
        manifest = load_manifest(path)
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["packets"] == len(schedule)
        ordered = schedule.records()
        start = 0
        previous_max = float("-inf")
        for index, shard in enumerate(manifest["shards"]):
            assert shard["file"] == shard_file_name(path, index)
            chunk = ordered[start : start + shard["packets"]]
            assert shard["ingress_min"] == chunk[0].ingress_time
            assert shard["ingress_max"] == chunk[-1].ingress_time
            # Chunks are contiguous slices of the canonical order, so their
            # ingress ranges are non-decreasing across shards.
            assert shard["ingress_min"] >= previous_max
            previous_max = shard["ingress_max"]
            start += shard["packets"]
        assert start == len(schedule)

    def test_each_shard_is_a_valid_schedule_file(self, tmp_path, schedule):
        path = tmp_path / f"sched{MANIFEST_SUFFIX}"
        names = save_schedule_sharded(path, schedule, shard_packets=6)
        total = 0
        for name in names:
            shard_schedule, shard_meta = load_schedule(tmp_path / name)
            total += len(shard_schedule)
            assert shard_meta == {"shard_index": names.index(name)}
        assert total == len(schedule)

    def test_bad_manifest_path_rejected(self, tmp_path, schedule):
        with pytest.raises(ValueError):
            save_schedule_sharded(tmp_path / "sched.jsonl.gz", schedule)
        with pytest.raises(ValueError):
            save_schedule_sharded(
                tmp_path / f"s{MANIFEST_SUFFIX}", schedule, shard_packets=0
            )


class TestFailureModes:
    def _sharded(self, tmp_path, schedule, shard_packets=5):
        path = tmp_path / f"sched{MANIFEST_SUFFIX}"
        save_schedule_sharded(path, schedule, shard_packets=shard_packets)
        return path

    def test_missing_shard_raises_oserror(self, tmp_path, schedule):
        path = self._sharded(tmp_path, schedule)
        os.unlink(tmp_path / shard_file_name(path, 1))
        with pytest.raises(OSError):
            load_schedule(path)

    def test_truncated_shard_raises_valueerror(self, tmp_path, schedule):
        path = self._sharded(tmp_path, schedule)
        victim = tmp_path / shard_file_name(path, 0)
        lines = gzip.open(victim, "rt", encoding="utf-8").readlines()
        with gzip.open(victim, "wt", encoding="utf-8") as stream:
            stream.writelines(lines[:-2])
        with pytest.raises(ValueError):
            load_schedule(path)
        with pytest.raises(ValueError):
            list(iter_schedule_records(path))

    def test_foreign_manifest_format_rejected(self, tmp_path):
        path = tmp_path / f"bogus{MANIFEST_SUFFIX}"
        path.write_text(json.dumps({"format": "something-else/1", "shards": []}) + "\n")
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_manifest_shard_count_mismatch_rejected(self, tmp_path, schedule):
        path = self._sharded(tmp_path, schedule)
        manifest = json.loads(path.read_text())
        manifest["packets"] += 1
        path.write_text(json.dumps(manifest) + "\n")
        with pytest.raises(ValueError):
            load_schedule(path)

    def test_empty_manifest_file_rejected(self, tmp_path):
        path = tmp_path / f"empty{MANIFEST_SUFFIX}"
        path.write_text("")
        with pytest.raises(ValueError):
            load_manifest(path)


class TestCliDiffParity:
    @pytest.fixture(scope="class")
    def forms(self, tmp_path_factory):
        """The same recorded schedule in single-file and sharded form."""
        tmp_path = tmp_path_factory.mktemp("diff-shards")
        single = tmp_path / "sched.jsonl.gz"
        code = cli_main(
            ["record", "I2-1G-10G@70", "--scale", "smoke", "--out", str(single)]
        )
        assert code == 0
        schedule, meta = load_schedule(single)
        manifest = tmp_path / f"sched{MANIFEST_SUFFIX}"
        save_schedule_sharded(manifest, schedule, meta=meta, shard_packets=7)
        return str(single), str(manifest)

    def test_diff_reports_sharded_vs_single_bit_clean(self, forms, capsys):
        single, manifest = forms
        assert cli_main(["diff", single, manifest]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_diff_replay_accepts_sharded_schedule(self, forms, capsys):
        _, manifest = forms
        assert cli_main(["diff", "--replay", manifest]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_truncated_shard_exits_2(self, forms, tmp_path, capsys):
        single, manifest = forms
        schedule, _ = load_schedule(single)
        broken = tmp_path / f"broken{MANIFEST_SUFFIX}"
        save_schedule_sharded(broken, schedule, shard_packets=9)
        victim = tmp_path / shard_file_name(broken, 1)
        lines = gzip.open(victim, "rt", encoding="utf-8").readlines()
        with gzip.open(victim, "wt", encoding="utf-8") as stream:
            stream.writelines(lines[:-3])
        assert cli_main(["diff", single, str(broken)]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_missing_shard_exits_2(self, forms, tmp_path, capsys):
        single, manifest = forms
        schedule, _ = load_schedule(single)
        broken = tmp_path / f"gone{MANIFEST_SUFFIX}"
        save_schedule_sharded(broken, schedule, shard_packets=9)
        os.unlink(tmp_path / shard_file_name(broken, 0))
        assert cli_main(["diff", single, str(broken)]) == 2
        assert "cannot load" in capsys.readouterr().err

    @pytest.mark.parametrize("backend", ["python", "vectorized"])
    def test_replay_kernels_consume_sharded_entries(self, forms, backend):
        """The replay injector and the flat-array kernels see manifest-loaded
        schedules exactly as single-file ones: replaying either form of the
        same recording is bit-identical."""
        from repro.core.replay import replay_schedule
        from repro.sim.backend import get_backend
        from repro.sim.flow import reset_flow_ids
        from repro.sim.packet import reset_packet_ids
        from repro.topology.base import Topology

        try:
            get_backend(backend)
        except Exception as error:
            pytest.skip(f"{backend} backend unavailable: {error}")
        single, manifest = forms
        replayed = {}
        for path in (single, manifest):
            schedule, meta = load_schedule(path)
            topology = Topology.from_dict(meta["topology"])
            reset_packet_ids()
            reset_flow_ids()
            result = replay_schedule(
                topology, schedule, mode="lstf", backend=backend
            )
            replayed[path] = record_dicts(result.records())
        assert replayed[single] == replayed[manifest]
        assert len(replayed[single]) > 0


class TestCacheSharding:
    def _workload_bits(self):
        from repro.experiments.config import ExperimentScale
        from repro.experiments.table1 import default_scenario

        scenario = default_scenario(ExperimentScale.smoke(), name="shard-cache")
        return scenario.build_topology(), scenario.workload(), scenario

    def test_large_entries_shard_and_reload_identically(self, tmp_path):
        from repro.pipeline.cache import ScheduleCache
        from repro.pipeline.experiment import record_scenario_schedule

        topology, workload, scenario = self._workload_bits()
        recorded = record_scenario_schedule(scenario)
        sharding = ScheduleCache(tmp_path / "sharded", shard_packets=10)
        plain = ScheduleCache(tmp_path / "plain")
        schedule_a, key_a = sharding.get_or_record(
            topology, scenario.original, workload, scenario.seed, lambda: recorded
        )
        schedule_b, key_b = plain.get_or_record(
            topology, scenario.original, workload, scenario.seed, lambda: recorded
        )
        # Shard layout is storage, never key material.
        assert key_a == key_b
        manifest = sharding.manifest_path_for(key_a)
        assert manifest.exists()
        assert not sharding.path_for(key_a).exists()
        assert plain.path_for(key_b).exists()
        assert sharding.entry_path(key_a) == manifest
        assert sharding.disk_entries() == 1
        # A cold cache loads the sharded entry back bit-identically.
        cold = ScheduleCache(tmp_path / "sharded", shard_packets=10)
        reloaded, _ = cold.get_or_record(
            topology,
            scenario.original,
            workload,
            scenario.seed,
            lambda: pytest.fail("sharded entry missed"),
        )
        assert cold.hits == 1 and cold.misses == 0
        assert record_dicts(reloaded.records()) == record_dicts(recorded.records())

    def test_corrupt_manifest_quarantined_and_rerecorded(self, tmp_path):
        from repro.pipeline.cache import ScheduleCache
        from repro.pipeline.experiment import record_scenario_schedule

        topology, workload, scenario = self._workload_bits()
        recorded = record_scenario_schedule(scenario)
        cache = ScheduleCache(tmp_path, shard_packets=10)
        _, key = cache.get_or_record(
            topology, scenario.original, workload, scenario.seed, lambda: recorded
        )
        manifest = cache.manifest_path_for(key)
        manifest.write_text("{ not json\n")
        cold = ScheduleCache(tmp_path, shard_packets=10)
        reloaded, _ = cold.get_or_record(
            topology, scenario.original, workload, scenario.seed, lambda: recorded
        )
        assert cold.corrupt_entries == 1 and cold.misses == 1
        assert manifest.with_name(manifest.name + ".corrupt").exists()
        assert record_dicts(reloaded.records()) == record_dicts(recorded.records())
