"""Tests for schedule records, congestion-point analysis, and replay metrics."""

import pytest

from repro.core.metrics import compare_schedules, fraction_overdue, lateness_distribution
from repro.core.schedule import HopTiming, PacketRecord, Schedule
from repro.schedulers import uniform_factory
from repro.sim import Simulation, Simulator
from repro.sim.flow import Flow
from repro.sim.packet import Packet
from repro.topology import linear_topology
from repro.transport import start_udp_flow
from repro.utils import mbps


def record(
    pid, ingress=0.0, output=1.0, queueing=(), path=("a", "r", "b"), deadline=None, flow=None
):
    hops = [
        HopTiming(node=f"n{i}", arrival_time=0.0, start_service_time=q, departure_time=None)
        for i, q in enumerate(queueing)
    ]
    return PacketRecord(
        packet_id=pid,
        flow_id=flow if flow is not None else pid,
        src=path[0],
        dst=path[-1],
        size_bytes=1000,
        ingress_time=ingress,
        output_time=output,
        path=list(path),
        hops=hops,
        deadline=deadline,
    )


class TestPacketRecord:
    def test_from_packet_requires_delivery(self):
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=100)
        with pytest.raises(ValueError):
            PacketRecord.from_packet(packet)

    def test_from_simulated_packet_captures_path_and_times(self):
        topo = linear_topology(2, mbps(10))
        simulation = Simulation(topo, uniform_factory("fifo"))
        flow = Flow(src="src0", dst="dst0", size_bytes=2920, start_time=0.0)
        start_udp_flow(simulation.sim, simulation.network, flow)
        simulation.sim.run()
        packet = simulation.tracer.delivered_data_packets()[0]
        rec = PacketRecord.from_packet(packet)
        assert rec.path == ["src0", "r0", "r1", "dst0"]
        assert rec.output_time > rec.ingress_time
        assert rec.network_delay == pytest.approx(packet.end_to_end_delay)

    def test_congestion_points_count_waiting_hops(self):
        rec = record(1, queueing=(0.0, 0.5, 0.0, 0.2))
        # Hops are built with arrival 0 and service time = the given value, so
        # nonzero values are congestion points.
        assert rec.congestion_points() == 2

    def test_hop_output_times_skips_missing(self):
        rec = record(1, queueing=(0.1, 0.2))
        assert rec.hop_output_times() == [0.1, 0.2]


class TestSchedule:
    def test_duplicate_packet_ids_rejected(self):
        schedule = Schedule([record(1)])
        with pytest.raises(ValueError):
            schedule.add(record(1))

    def test_records_sorted_by_ingress(self):
        schedule = Schedule([record(1, ingress=5.0), record(2, ingress=1.0)])
        assert [r.packet_id for r in schedule.records()] == [2, 1]

    def test_lookup_and_membership(self):
        schedule = Schedule([record(7)])
        assert 7 in schedule
        assert schedule.get(8) is None
        with pytest.raises(KeyError):
            schedule.record(8)

    def test_time_span_and_totals(self):
        schedule = Schedule([record(1, ingress=1.0, output=2.0), record(2, ingress=0.5, output=4.0)])
        assert schedule.time_span() == (0.5, 4.0)
        assert schedule.total_bytes() == 2000
        assert len(schedule) == 2

    def test_congestion_point_histogram(self):
        schedule = Schedule(
            [record(1, queueing=(0.1,)), record(2, queueing=(0.1, 0.1)), record(3, queueing=())]
        )
        assert schedule.congestion_point_histogram() == {0: 1, 1: 1, 2: 1}
        assert schedule.max_congestion_points() == 2

    def test_from_packets_with_replay_ids(self):
        packet = Packet(flow_id=1, src="a", dst="b", size_bytes=100, replay_of=99)
        packet.ingress_time = 0.0
        packet.egress_time = 1.0
        schedule = Schedule.from_packets([packet], use_replay_ids=True)
        assert 99 in schedule


class TestReplayMetrics:
    def test_perfect_replay_has_no_overdue(self):
        original = Schedule([record(1, output=1.0), record(2, output=2.0)])
        replay = Schedule([record(1, output=1.0), record(2, output=1.5)])
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.overdue_fraction == 0.0
        assert metrics.overdue_beyond_threshold_fraction == 0.0
        assert metrics.mean_lateness == 0.0

    def test_overdue_and_threshold_counting(self):
        original = Schedule([record(i, output=1.0) for i in range(4)])
        replay = Schedule(
            [
                record(0, output=1.0),     # on time
                record(1, output=1.05),    # overdue, within threshold
                record(2, output=1.5),     # overdue beyond threshold
                record(3, output=0.9),     # early
            ]
        )
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.total_packets == 4
        assert metrics.overdue_count == 2
        assert metrics.overdue_beyond_threshold_count == 1
        assert metrics.overdue_fraction == pytest.approx(0.5)
        assert metrics.max_lateness == pytest.approx(0.5)

    def test_missing_replay_packet_counts_as_overdue(self):
        original = Schedule([record(1), record(2)])
        replay = Schedule([record(1)])
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.missing_packets == 1
        assert metrics.overdue_count == 1
        assert metrics.overdue_beyond_threshold_count == 1

    def test_tiny_lateness_below_tolerance_ignored(self):
        original = Schedule([record(1, output=1.0)])
        replay = Schedule([record(1, output=1.0 + 1e-12)])
        assert fraction_overdue(original, replay) == 0.0

    def test_deadline_metrics_default_to_zero_without_deadlines(self):
        original = Schedule([record(1), record(2)])
        replay = Schedule([record(1), record(2)])
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.deadline_total == 0
        assert metrics.deadline_met_fraction_original == 0.0
        assert metrics.deadline_met_fraction_replay == 0.0

    def test_deadline_met_fractions_for_original_and_replay(self):
        original = Schedule(
            [
                record(1, output=1.0, deadline=2.0),  # met in both runs
                record(2, output=1.0, deadline=1.5),  # met originally, missed in replay
                record(3, output=2.0, deadline=1.0),  # missed in both
                record(4, output=1.0),                # no deadline: not counted
            ]
        )
        replay = Schedule(
            [
                record(1, output=1.5),
                record(2, output=1.8),
                record(3, output=2.0),
                record(4, output=1.0),
            ]
        )
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.deadline_total == 3
        assert metrics.deadline_met_original == 2
        assert metrics.deadline_met_replay == 1
        assert metrics.deadline_met_fraction_original == pytest.approx(2 / 3)
        assert metrics.deadline_met_fraction_replay == pytest.approx(1 / 3)

    def test_deadline_packet_missing_from_replay_counts_as_missed(self):
        original = Schedule([record(1, output=1.0, deadline=5.0)])
        metrics = compare_schedules(original, Schedule(), threshold=0.1)
        assert metrics.deadline_total == 1
        assert metrics.deadline_met_original == 1
        assert metrics.deadline_met_replay == 0

    def test_flow_deadline_judged_by_its_last_packet(self):
        """A multi-packet flow meets its deadline only if every packet —
        i.e. the last one — beats it; early on-time packets don't count."""
        original = Schedule(
            [
                record(1, output=1.0, deadline=2.0, flow=10),
                record(2, output=1.5, deadline=2.0, flow=10),
            ]
        )
        late_replay = Schedule(
            [
                record(1, output=1.0, flow=10),   # on time
                record(2, output=3.0, flow=10),   # the flow's last packet is late
            ]
        )
        metrics = compare_schedules(original, late_replay, threshold=0.1)
        assert metrics.deadline_total == 1  # one flow, not two packets
        assert metrics.deadline_met_original == 1
        assert metrics.deadline_met_replay == 0

    def test_queueing_delay_ratios_collected(self):
        original = Schedule([record(1, queueing=(0.2,))])
        replay = Schedule([record(1, queueing=(0.1,))])
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.queueing_delay_ratios == [pytest.approx(0.5)]

    def test_lateness_distribution(self):
        original = Schedule([record(1, output=1.0), record(2, output=1.0)])
        replay = Schedule([record(1, output=1.2), record(2, output=0.8)])
        lateness = lateness_distribution(original, replay)
        assert sorted(round(x, 6) for x in lateness) == [-0.2, 0.2]

    def test_empty_schedules(self):
        metrics = compare_schedules(Schedule(), Schedule(), threshold=0.1)
        assert metrics.total_packets == 0
        assert metrics.overdue_fraction == 0.0
        assert metrics.summary()["overdue_fraction"] == 0.0


class TestDeliveryMetrics:
    """The fault-facing metrics: survival rate and deadline-over-delivered."""

    def test_delivered_fraction_counts_missing_packets(self):
        original = Schedule([record(1), record(2), record(3), record(4)])
        replay = Schedule([record(1), record(3)])
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.missing_packets == 2
        assert metrics.delivered_fraction == 0.5

    def test_full_delivery_is_one_even_on_empty_comparison(self):
        full = compare_schedules(Schedule([record(1)]), Schedule([record(1)]),
                                 threshold=0.1)
        assert full.delivered_fraction == 1.0
        empty = compare_schedules(Schedule(), Schedule(), threshold=0.1)
        assert empty.delivered_fraction == 1.0

    def test_deadline_over_delivered_conditions_on_survival(self):
        """Two deadline flows: one destroyed by faults, one delivered late.
        The unconditional replay metric blames both; the conditional metric
        only judges the survivor."""
        original = Schedule(
            [
                record(1, output=1.0, deadline=2.0, flow=10),
                record(2, output=1.0, deadline=2.0, flow=20),
            ]
        )
        replay = Schedule([record(1, output=1.5, flow=10)])  # flow 20 lost
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.deadline_total == 2
        assert metrics.deadline_flows_delivered == 1
        assert metrics.deadline_met_fraction_replay == 0.5
        assert metrics.deadline_met_over_delivered_fraction == 1.0

    def test_partially_missing_flow_counts_as_undelivered(self):
        """A deadline flow missing ANY packet is not 'delivered', even if
        its other packets arrived before the deadline."""
        original = Schedule(
            [
                record(1, output=1.0, deadline=3.0, flow=10),
                record(2, output=1.5, deadline=3.0, flow=10),
            ]
        )
        replay = Schedule([record(1, output=1.0, flow=10)])
        metrics = compare_schedules(original, replay, threshold=0.1)
        assert metrics.deadline_flows_delivered == 0
        assert metrics.deadline_met_over_delivered_fraction == 0.0
