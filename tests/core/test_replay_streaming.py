"""Streaming replay injector: equivalence with the upfront reference.

The streaming cursor (``ReplayInjector.install``) must inject exactly the
same packets at exactly the same times, in the same order, as the original
pre-schedule-everything implementation (kept as ``install_upfront``), and a
full replay driven by it must produce a bit-identical schedule.
"""

import random

import pytest

from repro.core.replay import (
    ReplayInjector,
    ReplayExperiment,
    replay_initializer,
    replay_scheduler_factory,
)
from repro.core.schedule import PacketRecord, Schedule
from repro.sim.engine import Simulator
from repro.sim.flow import reset_flow_ids
from repro.sim.network import Network
from repro.sim.packet import reset_packet_ids
from repro.sim.tracer import Tracer
from repro.topology import dumbbell_topology
from repro.traffic import WorkloadSpec, paper_default_workload
from repro.utils import mbps


class _LoggingInjector(ReplayInjector):
    """Records (now, packet_id) instead of touching a network."""

    def __init__(self, sim, schedule):
        super().__init__(sim, network=None, schedule=schedule, initializer=None)
        self.log = []

    def _inject(self, record):  # overrides the network-touching injection
        self.log.append((self.sim.now, record.packet_id))
        self.injected += 1


def _record(packet_id, ingress_time):
    return PacketRecord(
        packet_id=packet_id,
        flow_id=packet_id,
        src="src0",
        dst="dst0",
        size_bytes=1000.0,
        ingress_time=ingress_time,
        output_time=ingress_time + 1.0,
        path=["src0", "dst0"],
    )


def _random_schedule(rng, packets):
    """Random ingress times with deliberate exact duplicates."""
    times = []
    for _ in range(packets):
        if times and rng.random() < 0.3:
            times.append(rng.choice(times))  # share an ingress time exactly
        else:
            times.append(rng.uniform(0.0, 2.0))
    return Schedule(_record(index, time) for index, time in enumerate(times))


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_streaming_matches_upfront_on_random_record_sets(seed):
    rng = random.Random(seed)
    schedule = _random_schedule(rng, packets=rng.randint(1, 60))

    streaming_sim = Simulator()
    streaming = _LoggingInjector(streaming_sim, schedule)
    streaming.install()
    streaming_sim.run()

    upfront_sim = Simulator()
    upfront = _LoggingInjector(upfront_sim, schedule)
    upfront.install_upfront()
    upfront_sim.run()

    assert streaming.log == upfront.log
    assert streaming.injected == upfront.injected == len(schedule)


def test_streaming_keeps_heap_small():
    schedule = Schedule(_record(index, float(index)) for index in range(50))
    sim = Simulator()
    injector = _LoggingInjector(sim, schedule)
    injector.install()
    # Only the cursor is scheduled, not one event per record.
    assert sim.pending_events == 1
    sim.run()
    assert injector.injected == 50


def test_empty_schedule_installs_nothing():
    sim = Simulator()
    injector = _LoggingInjector(sim, Schedule())
    injector.install()
    assert sim.pending_events == 0


def _replay_with(installer_name, original_schedule, topology, mode="lstf"):
    reset_packet_ids()
    reset_flow_ids()
    sim = Simulator()
    tracer = Tracer()
    network = topology.build(sim, replay_scheduler_factory(mode), tracer=tracer)
    injector = ReplayInjector(sim, network, original_schedule, replay_initializer(mode))
    getattr(injector, installer_name)()
    sim.run()
    return Schedule.from_packets(tracer.delivered_data_packets(), use_replay_ids=True)


def test_full_replay_bit_identical_across_injectors():
    """End to end on a real network: streaming replay == upfront replay."""
    reset_packet_ids()
    reset_flow_ids()
    topology = dumbbell_topology(4, mbps(10), mbps(100))
    workload = WorkloadSpec(
        utilization=0.6,
        reference_bandwidth_bps=mbps(10),
        size_distribution=paper_default_workload(),
        transport="udp",
        duration=0.25,
    )
    experiment = ReplayExperiment(
        topology,
        "random",
        workload,
        seed=5,
        sources=[f"src{i}" for i in range(4)],
        destinations=[f"dst{i}" for i in range(4)],
    )
    original = experiment.record()
    assert len(original) > 0

    streaming = _replay_with("install", original, topology)
    upfront = _replay_with("install_upfront", original, topology)

    assert streaming.packet_ids() == upfront.packet_ids()
    for packet_id in streaming.packet_ids():
        got = streaming.record(packet_id).to_dict()
        want = upfront.record(packet_id).to_dict()
        assert got == want  # exact, floats included
