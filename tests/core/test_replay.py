"""Integration tests for the record-and-replay engine (the paper's core experiment)."""

import pytest

from repro.core.replay import (
    REPLAY_MODES,
    ReplayExperiment,
    evaluate_replay,
    original_scheduler_factory,
    record_schedule,
    replay_schedule,
)
from repro.core.schedule import Schedule
from repro.schedulers.fifo_plus import FifoPlusScheduler
from repro.schedulers.fq import FairQueueingScheduler
from repro.topology import dumbbell_topology, linear_topology
from repro.traffic import ConstantSize, WorkloadSpec, paper_default_workload
from repro.utils import mbps


def small_workload(duration=0.25, utilization=0.6, transport="udp"):
    return WorkloadSpec(
        utilization=utilization,
        reference_bandwidth_bps=mbps(10),
        size_distribution=paper_default_workload(),
        transport=transport,
        duration=duration,
    )


def dumbbell_experiment(original="random", seed=5, utilization=0.6):
    topo = dumbbell_topology(4, mbps(10), mbps(100))
    return ReplayExperiment(
        topo,
        original,
        small_workload(utilization=utilization),
        seed=seed,
        sources=[f"src{i}" for i in range(4)],
        destinations=[f"dst{i}" for i in range(4)],
    )


class TestRecording:
    def test_recorded_schedule_covers_all_delivered_packets(self):
        experiment = dumbbell_experiment()
        schedule = experiment.record()
        assert len(schedule) > 50
        for record in schedule:
            assert record.output_time > record.ingress_time
            assert record.path[0] == record.src
            assert record.path[-1] == record.dst

    def test_record_is_cached_across_replays(self):
        experiment = dumbbell_experiment()
        assert experiment.record() is experiment.record()

    def test_record_schedule_standalone(self):
        topo = linear_topology(2, mbps(10), hosts_per_end=2, access_bandwidth_bps=mbps(50))
        schedule = record_schedule(
            topo,
            original_scheduler_factory("fifo", topo),
            small_workload(duration=0.2),
            seed=3,
            sources=["src0", "src1"],
            destinations=["dst0", "dst1"],
        )
        assert len(schedule) > 0

    def test_mixed_fq_fifo_plus_factory(self):
        topo = dumbbell_topology(2, mbps(10), mbps(100))
        factory = original_scheduler_factory("fq+fifo+", topo)
        kinds = {type(factory(name, None)) for name in topo.router_names()}
        assert kinds == {FairQueueingScheduler, FifoPlusScheduler}


class TestReplayModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError):
            replay_schedule(dumbbell_topology(2, mbps(10), mbps(100)), Schedule(), mode="magic")

    def test_all_modes_registered(self):
        assert set(REPLAY_MODES) == {
            "lstf", "lstf-preemptive", "edf", "priority", "omniscient", "fifo"
        }

    def test_replay_preserves_paths_and_packet_count(self):
        experiment = dumbbell_experiment()
        original = experiment.record()
        result = experiment.replay(mode="lstf")
        assert len(result.replayed) == len(original)
        for record in original:
            replayed = result.replayed.record(record.packet_id)
            assert replayed.path == record.path
            assert replayed.ingress_time == pytest.approx(record.ingress_time)
            assert replayed.size_bytes == record.size_bytes


class TestReplayQuality:
    """The paper's headline empirical claims, at test-suite scale."""

    def test_omniscient_replay_is_perfect(self):
        experiment = dumbbell_experiment()
        result = experiment.replay(mode="omniscient")
        assert result.overdue_fraction == 0.0

    def test_lstf_replays_random_schedule_almost_perfectly(self):
        experiment = dumbbell_experiment()
        result = experiment.replay(mode="lstf")
        assert result.overdue_fraction < 0.05
        assert result.overdue_beyond_threshold_fraction < 0.01

    def test_lstf_beats_simple_priorities(self):
        experiment = dumbbell_experiment()
        results = experiment.run(modes=["lstf", "priority"])
        assert results["lstf"].overdue_fraction <= results["priority"].overdue_fraction
        assert results["priority"].overdue_fraction > 0.0

    def test_edf_matches_lstf_overdue_fraction(self):
        experiment = dumbbell_experiment()
        results = experiment.run(modes=["lstf", "edf"])
        assert results["edf"].overdue_fraction == pytest.approx(
            results["lstf"].overdue_fraction, abs=1e-9
        )

    def test_fifo_original_is_easy_to_replay(self):
        experiment = dumbbell_experiment(original="fifo")
        result = experiment.replay(mode="lstf")
        assert result.overdue_beyond_threshold_fraction < 0.01

    def test_preemption_helps_sjf_originals(self):
        experiment = dumbbell_experiment(original="sjf", utilization=0.75)
        results = experiment.run(modes=["lstf", "lstf-preemptive"])
        assert (
            results["lstf-preemptive"].overdue_fraction
            <= results["lstf"].overdue_fraction
        )

    def test_replay_of_uncongested_schedule_is_perfect(self):
        """With constant-size, widely spaced flows there is no queueing at all."""
        topo = dumbbell_topology(2, mbps(10), mbps(100))
        workload = WorkloadSpec(
            utilization=0.05,
            reference_bandwidth_bps=mbps(10),
            size_distribution=ConstantSize(1460),
            transport="udp",
            duration=0.2,
        )
        experiment = ReplayExperiment(
            topo, "fifo", workload, seed=1,
            sources=["src0", "src1"], destinations=["dst0", "dst1"],
        )
        result = experiment.replay(mode="lstf")
        assert result.overdue_fraction == 0.0


class TestEvaluateReplay:
    def test_threshold_defaults_to_bottleneck_transmission(self):
        experiment = dumbbell_experiment()
        original = experiment.record()
        result = evaluate_replay(
            dumbbell_topology(4, mbps(10), mbps(100)), original, mode="lstf",
            threshold_packet_bytes=1460,
        )
        assert result.metrics.threshold == pytest.approx(1460 * 8 / mbps(10))

    def test_explicit_threshold_respected(self):
        experiment = dumbbell_experiment()
        original = experiment.record()
        result = evaluate_replay(
            dumbbell_topology(4, mbps(10), mbps(100)), original, mode="lstf", threshold=0.5
        )
        assert result.metrics.threshold == 0.5
