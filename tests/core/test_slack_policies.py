"""Tests for the slack-policy subsystem: registry, initializers, properties.

Covers the acceptance criteria of the pluggable slack-initialization PR:

* the registry ships (at least) the four paper policies — ``replay``,
  ``zero``, ``deadline``, ``static-delay`` — as named, picklable definitions
  with a lossless ``to_dict``/``from_dict`` round-trip;
* each policy's initializer stamps headers per its Section-2/3 definition;
* ``deadline`` slack is monotone in the deadline (property test);
* policies feed the schedule-cache content hash, while policy-less keys are
  bit-identical to the pre-policy pipeline.
"""

import math
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.slack import (
    BlackBoxSlackInitializer,
    ConstantSlackPolicy,
    DeadlineSlackInitializer,
    FairnessSlackPolicy,
    FlowSizeSlackPolicy,
    NullSlackPolicy,
    StaticDelaySlackInitializer,
    ZeroSlackInitializer,
)
from repro.core.slack_policy import (
    POLICY_COMPATIBLE_MODES,
    POLICY_KINDS,
    SLACK_MODES,
    SLACK_POLICIES,
    SlackPolicyDef,
)
from repro.core.schedule import PacketRecord
from repro.schedulers import uniform_factory
from repro.sim import Simulator
from repro.sim.packet import Packet
from repro.topology import linear_topology
from repro.utils import mbps


@pytest.fixture
def line_network():
    topo = linear_topology(2, mbps(10))
    return topo.build(Simulator(), uniform_factory("fifo"))


def make_record(network, ingress=0.0, output=0.05, size=1000.0, deadline=None, flow_size=None):
    path = network.path("src0", "dst0")
    return PacketRecord(
        packet_id=1,
        flow_id=1,
        src="src0",
        dst="dst0",
        size_bytes=size,
        ingress_time=ingress,
        output_time=output,
        path=path,
        flow_size_bytes=flow_size,
        deadline=deadline,
    )


def make_packet():
    return Packet(flow_id=1, src="src0", dst="dst0", size_bytes=1000)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
class TestSlackPolicyRegistry:
    def test_ships_the_four_paper_policies(self):
        names = SLACK_POLICIES.names()
        for name in ("replay", "zero", "deadline", "static-delay"):
            assert name in names
        assert len(SLACK_POLICIES) >= 4

    def test_get_unknown_name_lists_known_policies(self):
        with pytest.raises(KeyError, match="unknown slack policy"):
            SLACK_POLICIES.get("nope")

    def test_definitions_round_trip_losslessly(self):
        for definition in SLACK_POLICIES:
            clone = SlackPolicyDef.from_dict(definition.to_dict())
            assert clone == definition
            assert clone.to_dict() == definition.to_dict()

    def test_definitions_are_picklable_and_hashable(self):
        for definition in SLACK_POLICIES:
            assert pickle.loads(pickle.dumps(definition)) == definition
            assert hash(definition) == hash(SlackPolicyDef.from_dict(definition.to_dict()))

    def test_build_returns_the_matching_initializer(self):
        assert isinstance(SLACK_POLICIES.get("replay").build(), BlackBoxSlackInitializer)
        assert isinstance(SLACK_POLICIES.get("zero").build(), ZeroSlackInitializer)
        assert isinstance(SLACK_POLICIES.get("deadline").build(), DeadlineSlackInitializer)
        assert isinstance(
            SLACK_POLICIES.get("static-delay").build(), StaticDelaySlackInitializer
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown slack-policy kind"):
            SlackPolicyDef(name="x", kind="nope")

    def test_params_are_sorted_for_stable_hashing(self):
        a = SlackPolicyDef(name="x", kind="deadline", params=(("no_deadline_slack", 2.0),))
        b = SlackPolicyDef.from_dict(a.to_dict())
        assert a.params == b.params

    def test_compatible_modes_exclude_header_vector_modes(self):
        assert "lstf" in POLICY_COMPATIBLE_MODES
        assert "omniscient" not in POLICY_COMPATIBLE_MODES
        assert "priority" not in POLICY_COMPATIBLE_MODES


# --------------------------------------------------------------------- #
# Live/replay capability (the unified policy contract)
# --------------------------------------------------------------------- #
class TestPolicyCapabilities:
    def test_every_kind_supports_at_least_one_mode(self):
        for kind in POLICY_KINDS.values():
            assert kind.supports_live or kind.supports_replay
        assert SLACK_MODES == ("replay", "live")

    def test_live_factories_build_the_figure_policies(self):
        assert isinstance(SLACK_POLICIES.get("flow-size").build_live(), FlowSizeSlackPolicy)
        assert isinstance(SLACK_POLICIES.get("fairness").build_live(), FairnessSlackPolicy)
        assert isinstance(SLACK_POLICIES.get("null").build_live(), NullSlackPolicy)
        static = SLACK_POLICIES.get("static-delay").build_live()
        assert isinstance(static, ConstantSlackPolicy)
        assert static.slack == 1.0
        zero = SLACK_POLICIES.get("zero").build_live()
        assert isinstance(zero, ConstantSlackPolicy)
        assert zero.slack == 0.0

    def test_live_only_policy_refuses_replay_materialization(self):
        with pytest.raises(ValueError, match="live-only"):
            SLACK_POLICIES.get("flow-size").build_initializer()
        with pytest.raises(ValueError, match="live-only"):
            SLACK_POLICIES.get("fairness").build()  # the legacy alias too

    def test_replay_only_policy_refuses_live_materialization(self):
        with pytest.raises(ValueError, match="replay-only"):
            SLACK_POLICIES.get("replay").build_live()
        with pytest.raises(ValueError, match="replay-only"):
            SLACK_POLICIES.get("deadline").build_live()

    def test_capability_strings(self):
        assert SLACK_POLICIES.get("replay").capability() == "replay"
        assert SLACK_POLICIES.get("zero").capability() == "live+replay"
        assert SLACK_POLICIES.get("flow-size").capability() == "live"

    def test_with_params_derives_a_reparameterized_def(self):
        base = SLACK_POLICIES.get("fairness")
        derived = base.with_params(rate_estimate_bps=2.5e6)
        assert derived.name == base.name and derived.kind == base.kind
        assert dict(derived.params)["rate_estimate_bps"] == 2.5e6
        assert derived.fingerprint() != base.fingerprint()
        policy = derived.build_live()
        assert policy.rate_estimate_bps == 2.5e6

    def test_with_params_rejects_unknown_parameter_names(self):
        """A typo'd sweep must fail at expansion time with the accepted
        names, not as a TypeError deep inside a pool worker (after the
        bogus name already fed a cache key)."""
        with pytest.raises(ValueError, match="does not accept"):
            SLACK_POLICIES.get("fairness").with_params(rate_bps=5e5)
        # Parameters beyond those registered are still fine when the
        # factory accepts them (the registered def lists defaults only).
        derived = SLACK_POLICIES.get("fairness").with_params(ack_slack=0.5)
        assert derived.build_live().ack_slack == 0.5

    def test_build_live_slack_policy_never_arms_policyless_cells(self):
        """The shared live-experiment resolution helper: an override can
        swap a configured policy but never installs one on a cell that was
        configured without (conventional-scheduler cells stay bare)."""
        from repro.pipeline.experiment import build_live_slack_policy

        assert build_live_slack_policy(None) is None
        assert build_live_slack_policy(None, "zero") is None
        assert isinstance(build_live_slack_policy("flow-size"), FlowSizeSlackPolicy)
        swapped = build_live_slack_policy("flow-size", "zero")
        assert isinstance(swapped, ConstantSlackPolicy)

    def test_live_faces_of_shared_kinds_match_the_figure_constructions(self):
        """The registry's live faces must stamp exactly what Figures 2-4
        stamped by hand before the unification."""
        packet = make_packet()
        SLACK_POLICIES.get("flow-size").build_live().on_packet_sent(packet, now=0.0)
        by_hand = make_packet()
        FlowSizeSlackPolicy(scale=1.0).on_packet_sent(by_hand, now=0.0)
        assert packet.header.slack == by_hand.header.slack

        packet = make_packet()
        SLACK_POLICIES.get("static-delay").build_live().on_packet_sent(packet, now=0.0)
        by_hand = make_packet()
        ConstantSlackPolicy(slack=1.0).on_packet_sent(by_hand, now=0.0)
        assert packet.header.slack == by_hand.header.slack


# --------------------------------------------------------------------- #
# Per-policy initializer behaviour
# --------------------------------------------------------------------- #
class TestZeroSlack:
    def test_stamps_zero_slack_and_keeps_flow_deadline(self, line_network):
        record = make_record(line_network, deadline=0.4)
        packet = make_packet()
        ZeroSlackInitializer().initialize(packet, record, line_network)
        assert packet.header.slack == 0.0
        assert packet.header.deadline == pytest.approx(0.4)

    def test_untagged_flow_has_no_deadline(self, line_network):
        packet = make_packet()
        ZeroSlackInitializer().initialize(packet, make_record(line_network), line_network)
        assert packet.header.slack == 0.0
        assert packet.header.deadline is None


class TestStaticDelaySlack:
    def test_every_packet_gets_the_constant(self, line_network):
        initializer = StaticDelaySlackInitializer(slack_seconds=0.25)
        for deadline in (None, 0.7):
            packet = make_packet()
            initializer.initialize(
                packet, make_record(line_network, deadline=deadline), line_network
            )
            assert packet.header.slack == pytest.approx(0.25)

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StaticDelaySlackInitializer(slack_seconds=-1.0)


class TestDeadlineSlack:
    def test_slack_is_deadline_minus_ingress_minus_bottleneck_residual(self, line_network):
        record = make_record(
            line_network, ingress=0.01, deadline=0.5, size=1000.0, flow_size=8000.0
        )
        packet = make_packet()
        DeadlineSlackInitializer().initialize(packet, record, line_network)
        residual = line_network.bottleneck_transmission_time(8000.0)
        assert packet.header.slack == pytest.approx(0.5 - 0.01 - residual)
        assert packet.header.deadline == pytest.approx(0.5)

    def test_falls_back_to_packet_size_without_flow_size(self, line_network):
        record = make_record(line_network, ingress=0.0, deadline=0.2, size=1000.0)
        packet = make_packet()
        DeadlineSlackInitializer().initialize(packet, record, line_network)
        residual = line_network.bottleneck_transmission_time(1000.0)
        assert packet.header.slack == pytest.approx(0.2 - residual)

    def test_infeasible_deadline_yields_negative_slack(self, line_network):
        record = make_record(line_network, ingress=0.5, deadline=0.1, flow_size=8000.0)
        packet = make_packet()
        DeadlineSlackInitializer().initialize(packet, record, line_network)
        assert packet.header.slack < 0.0

    def test_untagged_flows_get_the_constant_fallback(self, line_network):
        initializer = DeadlineSlackInitializer(no_deadline_slack=0.125)
        packet = make_packet()
        initializer.initialize(packet, make_record(line_network), line_network)
        assert packet.header.slack == pytest.approx(0.125)
        assert packet.header.deadline is None

    def test_negative_fallback_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DeadlineSlackInitializer(no_deadline_slack=-0.5)

    @given(
        deadlines=st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=2, max_size=20
        ),
        ingress=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        flow_size=st.floats(min_value=100.0, max_value=1e7, allow_nan=False),
    )
    def test_slack_is_monotone_in_the_deadline(self, deadlines, ingress, flow_size):
        """Property: with everything else fixed, a later deadline never
        yields less slack — and strictly later yields strictly more."""
        topo = linear_topology(2, mbps(10))
        network = topo.build(Simulator(), uniform_factory("fifo"))
        initializer = DeadlineSlackInitializer()
        slacks = []
        for deadline in sorted(deadlines):
            record = make_record(
                network, ingress=ingress, deadline=deadline, flow_size=flow_size
            )
            packet = make_packet()
            initializer.initialize(packet, record, network)
            slacks.append((deadline, packet.header.slack))
        for (d_a, s_a), (d_b, s_b) in zip(slacks, slacks[1:]):
            assert s_b >= s_a
            if d_b > d_a:
                assert s_b - s_a == pytest.approx(d_b - d_a)


class TestReplayPolicy:
    def test_replay_policy_matches_blackbox_initialization(self, line_network):
        record = make_record(line_network, ingress=0.01, output=0.05)
        via_policy = make_packet()
        SLACK_POLICIES.get("replay").build().initialize(via_policy, record, line_network)
        direct = make_packet()
        BlackBoxSlackInitializer().initialize(direct, record, line_network)
        assert via_policy.header.slack == direct.header.slack
        assert via_policy.header.deadline == direct.header.deadline


# --------------------------------------------------------------------- #
# Cache-key integration
# --------------------------------------------------------------------- #
class TestPolicyCacheKeys:
    def _scenario(self, **overrides):
        from repro.experiments import ExperimentScale
        from repro.pipeline.scenario import Scenario

        return Scenario(name="x", scale=ExperimentScale.smoke(), **overrides)

    def test_policyless_key_identical_to_omitting_the_field(self):
        from repro.pipeline.experiment import scenario_cache_key

        assert scenario_cache_key(self._scenario()) == scenario_cache_key(
            self._scenario(slack_policy=None)
        )

    def test_policy_feeds_the_content_hash(self):
        from repro.pipeline.experiment import scenario_cache_key

        keys = {
            scenario_cache_key(self._scenario(slack_policy=policy))
            for policy in (None, "replay", "zero", "deadline", "static-delay")
        }
        assert len(keys) == 5

    def test_policy_params_feed_the_content_hash(self):
        from repro.experiments import ExperimentScale
        from repro.pipeline.cache import schedule_cache_key
        from repro.pipeline.scenario import Scenario

        scenario = Scenario(name="x", scale=ExperimentScale.smoke())
        topology = scenario.build_topology()
        workload = scenario.workload()
        a = SlackPolicyDef(name="deadline", kind="deadline", params=(("no_deadline_slack", 1.0),))
        b = SlackPolicyDef(name="deadline", kind="deadline", params=(("no_deadline_slack", 2.0),))
        key_a = schedule_cache_key(topology, "fifo", workload, 1, slack_policy=a)
        key_b = schedule_cache_key(topology, "fifo", workload, 1, slack_policy=b)
        assert key_a != key_b

    def test_policy_name_and_description_do_not_feed_the_hash(self):
        """Only behavioral fields (kind + params) may invalidate cache
        entries; renaming or re-describing a policy must not."""
        from repro.experiments import ExperimentScale
        from repro.pipeline.cache import schedule_cache_key
        from repro.pipeline.scenario import Scenario

        scenario = Scenario(name="x", scale=ExperimentScale.smoke())
        topology = scenario.build_topology()
        workload = scenario.workload()
        a = SlackPolicyDef(name="deadline", kind="deadline", description="old words")
        b = SlackPolicyDef(name="renamed", kind="deadline", description="new words")
        assert a.fingerprint() == b.fingerprint()
        key_a = schedule_cache_key(topology, "fifo", workload, 1, slack_policy=a)
        key_b = schedule_cache_key(topology, "fifo", workload, 1, slack_policy=b)
        assert key_a == key_b

    def test_incompatible_mode_rejected_by_replay_scenario(self):
        from repro.pipeline.experiment import replay_scenario

        scenario = self._scenario(slack_policy="zero", replay_mode="omniscient")
        with pytest.raises(ValueError, match="cannot drive replay mode"):
            replay_scenario(scenario)

    def test_override_slack_policy_suffixes_names(self):
        from repro.pipeline.scenario import override_slack_policy

        scenario = self._scenario()
        (pinned,) = override_slack_policy([scenario], "deadline")
        assert pinned.slack_policy == "deadline"
        assert pinned.name == "x+slack:deadline"
        (unchanged,) = override_slack_policy([pinned], "deadline")
        assert unchanged.name == "x+slack:deadline"

    def test_override_slack_policy_rejects_unknown_names(self):
        from repro.pipeline.scenario import override_slack_policy

        with pytest.raises(KeyError, match="unknown slack policy"):
            override_slack_policy([self._scenario()], "nope")

    def test_override_rejects_live_only_policy_on_replay_scenarios(self):
        from repro.pipeline.scenario import override_slack_policy

        with pytest.raises(ValueError, match="cannot drive scenario"):
            override_slack_policy([self._scenario()], "flow-size")


# --------------------------------------------------------------------- #
# Live-mode scenario threading
# --------------------------------------------------------------------- #
class TestLiveModeScenarios:
    def _scenario(self, **overrides):
        from repro.experiments import ExperimentScale
        from repro.pipeline.scenario import Scenario

        return Scenario(name="x", scale=ExperimentScale.smoke(), **overrides)

    def test_slack_mode_is_validated_at_construction(self):
        with pytest.raises(ValueError, match="slack_mode"):
            self._scenario(slack_mode="nope")

    def test_live_slack_policy_materializes_only_in_live_mode(self):
        assert self._scenario().live_slack_policy() is None
        assert self._scenario(slack_policy="zero").live_slack_policy() is None
        live = self._scenario(slack_policy="zero", slack_mode="live")
        assert isinstance(live.live_slack_policy(), ConstantSlackPolicy)

    def test_live_mode_with_replay_only_policy_fails_loudly(self):
        scenario = self._scenario(slack_policy="deadline", slack_mode="live")
        with pytest.raises(ValueError, match="replay-only"):
            scenario.live_slack_policy()

    def test_live_recording_installs_the_policy(self, monkeypatch):
        """A live-mode recording must install the policy on the network and
        call it for every injected packet.  A counting policy detects the
        exact regression this pins: dropping the
        ``slack_policy=scenario.live_slack_policy()`` wiring in
        ``record_scenario_schedule`` makes the call list come back empty."""
        import repro.core.slack_policy as sp
        from repro.pipeline.experiment import record_scenario_schedule
        from repro.core.slack import SlackPolicy

        calls = []

        class CountingSlackPolicy(SlackPolicy):
            def on_packet_sent(self, packet, now):
                calls.append(packet.packet_id)
                packet.header.slack = 0.125

        monkeypatch.setitem(
            sp.POLICY_KINDS,
            "counting",
            sp.PolicyKind("counting", live_factory=CountingSlackPolicy),
        )
        monkeypatch.setitem(
            sp.SLACK_POLICIES._definitions,
            "counting",
            sp.SlackPolicyDef(name="counting", kind="counting"),
        )
        scenario = self._scenario(
            original="lstf", slack_policy="counting", slack_mode="live"
        )
        schedule = record_scenario_schedule(scenario)
        assert len(schedule) > 0
        # Every recorded data packet was stamped at send time by the policy.
        assert len(calls) >= len(schedule)

    def test_live_recording_offers_the_same_traffic(self):
        """Installing a live policy must not perturb the offered traffic:
        open-loop arrivals depend only on the seed, so plain and live
        recordings inject the identical packet set at identical times
        (what makes live and replay columns comparable)."""
        from repro.pipeline.experiment import record_scenario_schedule
        from repro.sim.flow import reset_flow_ids
        from repro.sim.packet import reset_packet_ids

        plain = self._scenario(original="lstf")
        live = self._scenario(
            original="lstf", slack_policy="zero", slack_mode="live"
        )
        reset_packet_ids(); reset_flow_ids()
        schedule_plain = record_scenario_schedule(plain)
        reset_packet_ids(); reset_flow_ids()
        schedule_live = record_scenario_schedule(live)
        assert len(schedule_plain) == len(schedule_live)
        ingress = lambda s: [r.ingress_time for r in s.records()]
        assert ingress(schedule_plain) == ingress(schedule_live)

    def test_live_replay_uses_the_modes_own_initializer(self, tmp_path):
        """Replaying a live-policy scenario initializes headers from the
        (policy-shaped) recording — no POLICY_COMPATIBLE_MODES gate, and no
        double application of the policy."""
        from repro.pipeline.cache import ScheduleCache
        from repro.pipeline.experiment import replay_scenario

        scenario = self._scenario(
            original="fifo", slack_policy="zero", slack_mode="live",
            replay_mode="omniscient",
        )
        # omniscient would be rejected for a replay-mode policy; in live
        # mode it is fine because the initializer comes from the recording.
        result = replay_scenario(scenario, cache=ScheduleCache(tmp_path))
        assert result.overdue_fraction == 0.0
