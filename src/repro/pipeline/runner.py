"""Parallel experiment runner: fan cells out, merge results deterministically.

The runner expands every requested experiment into its independent cells
(scenario x seed x replay-mode), executes them either serially in-process or
across a ``ProcessPoolExecutor``, and assembles the per-experiment results in
cell order.  Three properties make parallel runs row-for-row identical to
serial ones:

* every cell resets the global packet/flow id counters before it runs, so a
  cell's simulation is bit-identical no matter which process (or how many
  cells earlier) it executes in;
* every cell's randomness comes from its own resolved seed — nothing is
  drawn from a shared stream;
* results are merged by cell index, never by completion order.

Parallel runs with an on-disk cache are **two-phase**: the driver first
computes every replay cell's schedule-cache key from plain specs, dedupes
them, and fans out one recording task per *missing unique key*; only then do
the replay cells run, all of them hitting the now-warm cache.  This removes
the cold-cache race in which two workers recorded the same schedule
concurrently (correct, but duplicated work): every (topology, scheduler,
workload, seed) key is now recorded exactly once per run.

Workers share the on-disk :class:`ScheduleCache` layer; within a process
each worker also keeps the in-memory layer, so a warm cache run records
nothing at all (``RunSummary.records_computed == 0``).

Phase 2's unit of work-stealing is the *shard*, not just the cell, for
experiments that opt in (``ExperimentDef.supports_shards`` — the scale
tier): each shard of a shard-capable cell is its own pool task, so workers
draining the shared task queue steal shards of a big cell instead of idling
behind it, and the driver merges the partials in shard-index order.  The
shard partition is a pure function of the cell and the cache's
``shard_packets`` — never of worker count — so sharded parallel rows are
bit-identical to serial ones.

The runner is also hardened against *real* failure: cells run under an
optional per-cell timeout, a cell that raises (or whose worker dies — a
crashed process breaks the whole ``ProcessPoolExecutor``) is retried across
``max_retries`` fresh pools with exponential backoff, and whatever still
fails after the last round is reported as a structured :class:`CellError`
on the summary instead of aborting the run and losing every completed row.
"""

from __future__ import annotations

import os
import signal
import time
import traceback as traceback_module
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.pipeline.cache import DEFAULT_SHARD_PACKETS, ScheduleCache
from repro.pipeline.experiment import (
    Cell,
    CellResult,
    ExperimentDef,
    ScenarioRegistry,
    default_registry,
    record_scenario_schedule,
    scenario_cache_key,
)
from repro.pipeline.scenario import Scenario
from repro.utils.stats import summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments -> pipeline)
    from repro.experiments.config import ExperimentResult, ExperimentScale


class CellTimeoutError(RuntimeError):
    """A cell exceeded the run's per-cell time budget (``--cell-timeout``)."""


@dataclass
class CellError:
    """One cell that failed every attempt, as a structured error row.

    Serialized into the ``--json`` payload's ``"errors"`` list, so a
    partially failed campaign still reports exactly which cells died, why,
    and after how many attempts — next to every row that did complete.
    """

    cell_id: str
    experiment: str
    label: str
    mode: str
    seed: int
    error_type: str
    message: str
    traceback: str
    attempts: int
    phase: str = "run"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form for the CLI payload."""
        return asdict(self)


@dataclass
class _CellFailure:
    """A worker-side exception, captured in picklable form.

    Workers return this instead of raising: an exception propagating out of
    a pool task used to abort the entire run and lose every completed row.
    """

    error_type: str
    message: str
    traceback: str

    @classmethod
    def capture(cls, error: BaseException) -> "_CellFailure":
        return cls(
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            ),
        )


@contextmanager
def _cell_deadline(seconds: Optional[float]):
    """Raise :class:`CellTimeoutError` if the body outlives ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, so it interrupts a
    simulation stuck inside pure-Python event loops.  A no-op when
    ``seconds`` is ``None`` or the platform has no ``SIGALRM`` (Windows);
    both the serial runner and pool workers execute cells on their process'
    main thread, which is what signal delivery requires.
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_timeout(signum, frame):
        raise CellTimeoutError(f"cell exceeded the per-cell timeout of {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class RunSummary:
    """Everything a pipeline run produced, plus how it ran.

    Attributes:
        results: Per-experiment results, keyed by experiment name in the
            order they were requested.
        cells: Total number of cells executed.
        workers: Worker processes used (1 = serial, in-process).
        wall_time: End-to-end wall-clock seconds.
        cache_hits: Schedule-cache lookups served without recording.
        cache_misses: Original schedules that had to be recorded.
        notes: Caveats about how the run was interpreted (e.g. experiments
            that could not honor a ``replicates`` request).
        errors: Cells that failed every retry round, as structured
            :class:`CellError` rows (the run still completes; the CLI exits
            nonzero when this list is non-empty).
    """

    results: Dict[str, "ExperimentResult"] = field(default_factory=dict)
    cells: int = 0
    workers: int = 1
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    notes: List[str] = field(default_factory=list)
    errors: List[CellError] = field(default_factory=list)

    @property
    def records_computed(self) -> int:
        """Original-schedule recordings performed (0 on a fully warm cache)."""
        return self.cache_misses

    def format(self) -> str:
        """One-paragraph human-readable run summary."""
        total = self.cache_hits + self.cache_misses
        completed = self.cells - len(self.errors)
        lines = [
            f"pipeline: {len(self.results)} experiment(s), {self.cells} cell(s), "
            f"{self.workers} worker(s), {self.wall_time:.2f}s wall-clock",
            f"schedule cache: {self.cache_hits}/{total} hit(s), "
            f"{self.records_computed} schedule(s) recorded"
            + (" (warm cache: nothing re-recorded)" if total and not self.cache_misses else ""),
        ]
        if self.errors:
            lines.append(
                f"FAILED: {len(self.errors)}/{self.cells} cell(s) "
                f"({completed} completed); failed cells:"
            )
            lines.extend(
                f"  {error.cell_id}: {error.error_type}: {error.message} "
                f"(after {error.attempts} attempt(s))"
                for error in self.errors
            )
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _execute_cell(
    definition: ExperimentDef,
    cell: Cell,
    scale: ExperimentScale,
    cache: ScheduleCache,
) -> CellResult:
    """Run one cell with fresh global counters and per-cell cache accounting.

    Shard-capable cells (``definition.supports_shards``) run shard by shard
    — the same deterministic partition the parallel runner fans out — with
    partials merged in shard-index order, so serial and work-stolen rows are
    identical.
    """
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    reset_packet_ids()
    reset_flow_ids()
    hits_before, misses_before = cache.hits, cache.misses
    shards: List = []
    if definition.supports_shards:
        shards = definition.cell_shards(cell, scale, cache)
    if shards:
        partials = [
            definition.run_cell_shard(cell, shard, scale, cache) for shard in shards
        ]
        result = definition.merge_shards(cell, scale, partials)
    else:
        result = definition.run_cell(cell, scale, cache)
    result.cache_hits = cache.hits - hits_before
    result.cache_misses = cache.misses - misses_before
    return result


# ---------------------------------------------------------------------- #
# Worker-side state (one schedule cache per pool process)
# ---------------------------------------------------------------------- #
_WORKER_CACHE: Optional[ScheduleCache] = None
_WORKER_TIMEOUT: Optional[float] = None


def _worker_init(
    cache_dir: Optional[str],
    backend: Optional[str] = None,
    cell_timeout: Optional[float] = None,
    shard_packets: int = DEFAULT_SHARD_PACKETS,
) -> None:
    global _WORKER_CACHE, _WORKER_TIMEOUT
    _WORKER_CACHE = ScheduleCache(cache_dir, shard_packets=shard_packets)
    _WORKER_TIMEOUT = cell_timeout
    if backend is not None:
        # Workers resolve the run's engine through the same process-default
        # channel as everything else (see resolve_backend); an explicit
        # initarg — rather than inherited environment — keeps spawn-based
        # platforms working.
        from repro.sim.backend import BACKEND_ENV_VAR

        os.environ[BACKEND_ENV_VAR] = backend


def _worker_run(
    payload: Tuple[int, ExperimentDef, Cell, "ExperimentScale"]
) -> Tuple[int, Union[CellResult, _CellFailure]]:
    # The definition itself ships in the payload (definitions are plain
    # picklable objects), so workers honor whatever registry — global or
    # caller-supplied — the driver resolved names against, on fork and
    # spawn platforms alike.  Exceptions (including the per-cell timeout)
    # come back as picklable _CellFailure values, never as raises: a raise
    # would poison the pool future and take every other cell down with it.
    index, definition, cell, scale = payload
    assert _WORKER_CACHE is not None
    try:
        with _cell_deadline(_WORKER_TIMEOUT):
            return index, _execute_cell(definition, cell, scale, _WORKER_CACHE)
    except Exception as error:
        return index, _CellFailure.capture(error)


def _worker_run_shard(
    payload: Tuple[int, int, ExperimentDef, Cell, "ExperimentScale", object]
) -> Tuple[int, int, Union[object, _CellFailure]]:
    """Phase-2 shard task: one shard of a shard-capable cell.

    Returns ``(cell index, shard index, partial)`` — the partial is whatever
    picklable value ``run_cell_shard`` produced (the driver merges them in
    shard-index order) — or a captured :class:`_CellFailure`.
    """
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    index, shard_index, definition, cell, scale, shard = payload
    assert _WORKER_CACHE is not None
    reset_packet_ids()
    reset_flow_ids()
    try:
        with _cell_deadline(_WORKER_TIMEOUT):
            return (
                index,
                shard_index,
                definition.run_cell_shard(cell, shard, scale, _WORKER_CACHE),
            )
    except Exception as error:
        return index, shard_index, _CellFailure.capture(error)


def _worker_record(payload: Tuple[str, Scenario]) -> Tuple[str, Union[int, _CellFailure]]:
    """Phase-1 task: record one deduplicated scenario schedule into the cache.

    Returns ``(key, misses)`` — the number of schedules actually recorded
    (0 when another run populated the entry between planning and execution)
    — or ``(key, _CellFailure)`` when the recording raised or timed out.
    """
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    key, scenario = payload
    assert _WORKER_CACHE is not None
    reset_packet_ids()
    reset_flow_ids()
    misses_before = _WORKER_CACHE.misses
    try:
        with _cell_deadline(_WORKER_TIMEOUT):
            topology = scenario.build_topology()
            workload = scenario.workload()
            # The slack policy (and its application mode) and the fault plan
            # must flow into the key here exactly as they do in
            # scenario_cache_key/replay_scenario, or phase-1 recordings
            # would land under a different entry than the phase-2 replays
            # look up.
            _WORKER_CACHE.get_or_record(
                topology=topology,
                original=scenario.original,
                workload=workload,
                seed=scenario.seed,
                recorder=lambda: record_scenario_schedule(scenario, topology, workload),
                slack_policy=scenario.slack_policy_def(),
                slack_mode=scenario.slack_mode,
                faults=scenario.fault_plan(),
            )
    except Exception as error:
        return key, _CellFailure.capture(error)
    return key, _WORKER_CACHE.misses - misses_before


def _plan_records(
    tasks: Sequence[Tuple[ExperimentDef, Cell]], cache: ScheduleCache
) -> List[Tuple[str, Scenario]]:
    """Unique (cache key, scenario) pairs whose schedules are not on disk yet.

    Only cells whose spec is a :class:`Scenario` go through the schedule
    cache (direct-simulation cells carry other specs); those sharing one
    original schedule — across modes *and* across experiments — collapse to
    a single entry, so phase 1 records each key exactly once.
    """
    planned: "OrderedDict[str, Scenario]" = OrderedDict()
    key_by_scenario: Dict[Scenario, str] = {}
    for _, cell in tasks:
        scenario = cell.spec
        if not isinstance(scenario, Scenario):
            continue
        # Scenarios are frozen/hashable; memoize so cells sharing one
        # scenario hash its topology and workload specs only once.
        key = key_by_scenario.get(scenario)
        if key is None:
            key = scenario_cache_key(scenario)
            key_by_scenario[scenario] = key
        if key not in planned and key not in cache:
            planned[key] = scenario
    return list(planned.items())


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #
@contextmanager
def _backend_scope(backend: Optional[str]):
    """Make ``backend`` the process-default engine for the duration of a run.

    The selection travels through :data:`~repro.sim.backend.BACKEND_ENV_VAR`
    — the same channel ``resolve_backend(None)`` consults — so every replay
    in the run (serial cells, convenience wrappers, nested helpers) picks it
    up without threading a parameter through each experiment definition.
    The previous value is restored on exit, and the backend is resolved
    eagerly so an unknown name or missing optional dependency fails before
    any cell runs (``PipelineConfigError``, CLI exit 2).
    """
    if backend is None:
        yield
        return
    from repro.sim.backend import BACKEND_ENV_VAR, get_backend

    get_backend(backend)  # fail fast: unknown name / missing dependency
    previous = os.environ.get(BACKEND_ENV_VAR)
    os.environ[BACKEND_ENV_VAR] = backend
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(BACKEND_ENV_VAR, None)
        else:
            os.environ[BACKEND_ENV_VAR] = previous


def run_experiment(
    definition: ExperimentDef,
    scale: Optional[ExperimentScale] = None,
    cache: Optional[ScheduleCache] = None,
) -> ExperimentResult:
    """Run one experiment definition serially and assemble its result.

    The serial backbone used by the compatibility wrappers
    (``run_table1`` and friends) and by ``workers=1`` pipeline runs.
    """
    from repro.experiments.config import ExperimentScale

    scale = scale or ExperimentScale.quick()
    cache = cache if cache is not None else ScheduleCache()
    results = [
        _execute_cell(definition, cell, scale, cache)
        for cell in definition.cells(scale)
    ]
    return definition.assemble(scale, results)


def _cell_error(
    cell: Cell, failure: Optional[_CellFailure], attempts: int, phase: str = "run"
) -> CellError:
    """Build the structured error row for a cell that failed every attempt."""
    if failure is None:  # pragma: no cover - defensive (no captured failure)
        failure = _CellFailure(
            error_type="UnknownWorkerFailure",
            message="worker finished without reporting a result",
            traceback="",
        )
    return CellError(
        cell_id=cell.cell_id,
        experiment=cell.experiment,
        label=cell.label,
        mode=cell.mode,
        seed=cell.seed,
        error_type=failure.error_type,
        message=failure.message,
        traceback=failure.traceback,
        attempts=attempts,
        phase=phase,
    )


def run_pipeline(
    names: Optional[Sequence[str]] = None,
    scale: Optional[ExperimentScale] = None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    registry: Optional[ScenarioRegistry] = None,
    replicates: int = 1,
    workload: Optional[str] = None,
    slack_policy: Optional[str] = None,
    backend: Optional[str] = None,
    faults: Optional[str] = None,
    fault_seed: int = 0,
    cell_timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.5,
    shard_packets: Optional[int] = None,
) -> RunSummary:
    """Run experiments, optionally fanning their cells across processes.

    Args:
        names: Experiment names to run (default: every registered one).
        scale: Scale preset (default: quick).
        workers: Worker processes; ``<= 1`` runs serially in-process.
        cache_dir: On-disk schedule-cache directory shared by all workers
            (``None`` = in-memory caches only).
        registry: Registry to resolve names against (default: the global one).
        replicates: Seed replicates for experiments that support them
            (each replicate re-runs every replay scenario under a distinct,
            deterministically derived seed).  Replicated results additionally
            carry per-row mean/stddev/95% CI aggregates.
        workload: Workload-registry name overriding every scenario's
            workload, for experiments that support it (``python -m repro run
            ... --workload <name>``).
        slack_policy: Slack-policy registry name overriding every scenario's
            replay initialization, for experiments that support it
            (``python -m repro run ... --slack-policy <name>``).
        backend: Simulation-engine registry name (see
            :mod:`repro.sim.backend`) made the process default for the whole
            run — serial cells and pool workers alike (``python -m repro run
            ... --backend <name>``).  Validated before anything runs;
            backends are bit-identical by contract, so rows and cache
            entries do not depend on this choice.
        faults: Fault-schedule registry name (see :data:`repro.faults.FAULTS`)
            overriding every scenario's fault plan, for experiments that
            support it (``python -m repro run ... --fault <name>``).
        fault_seed: Seed accompanying the ``faults`` override (independent
            of every workload seed).
        cell_timeout: Per-cell wall-clock budget in seconds; a cell that
            outlives it fails with :class:`CellTimeoutError` (and is retried
            like any other failure).  ``None`` = no timeout.
        max_retries: How many extra rounds failed cells are retried.  In
            parallel runs each retry round gets a *fresh* worker pool, so a
            crashed worker (which breaks the whole ``ProcessPoolExecutor``)
            is recovered from, not just in-cell exceptions.
        retry_backoff: Base of the exponential backoff between retry rounds
            (round *n* sleeps ``retry_backoff * 2**(n-1)`` seconds).
        shard_packets: Shard size for every :class:`ScheduleCache` the run
            constructs (driver, serial, and pool workers alike) — both the
            persistence threshold/chunk for sharded cache entries and the
            shard partition size for shard-capable experiments (``python -m
            repro run ... --shard-packets N``).  Storage layout only: cache
            keys and result rows do not depend on it (rows of sharded cells
            are bit-identical across values by the shard determinism
            contract, up to the documented float-fold bits which are pinned
            per value).

    Returns:
        A :class:`RunSummary` with per-experiment results merged in cell
        order — identical rows regardless of ``workers``.  Cells that failed
        every attempt are reported in ``summary.errors`` (their rows are
        simply absent); the run itself never aborts on a cell failure.
    """
    from repro.experiments.config import ExperimentScale

    start = time.perf_counter()
    shard_packets = (
        shard_packets if shard_packets is not None else DEFAULT_SHARD_PACKETS
    )
    registry = registry or default_registry()
    scale = scale or ExperimentScale.quick()
    selected = list(names) if names is not None else registry.names()

    definitions: List[ExperimentDef] = []
    notes: List[str] = []
    unreplicated: List[str] = []
    unworkloaded: List[str] = []
    unpolicied: List[str] = []
    unfaulted: List[str] = []
    for name in selected:
        definition = registry.get(name)
        if workload is not None:
            if definition.supports_workload:
                definition = definition.with_workload(workload)
            else:
                unworkloaded.append(name)
        if slack_policy is not None:
            if definition.supports_slack_policy:
                definition = definition.with_slack_policy(slack_policy)
            else:
                unpolicied.append(name)
        if faults is not None:
            if definition.supports_faults:
                definition = definition.with_faults(faults, fault_seed)
            else:
                unfaulted.append(name)
        if replicates > 1:
            if definition.supports_replicates:
                definition = definition.with_replicates(replicates)
            else:
                unreplicated.append(name)
        definitions.append(definition)
    if unreplicated:
        notes.append(
            f"replicates={replicates} not supported by: {', '.join(unreplicated)} "
            "(those experiments ran single-seed)"
        )
    if unworkloaded:
        notes.append(
            f"workload={workload!r} not supported by: {', '.join(unworkloaded)} "
            "(those experiments kept their own workloads)"
        )
    if unpolicied:
        notes.append(
            f"slack_policy={slack_policy!r} not supported by: {', '.join(unpolicied)} "
            "(those experiments kept their default replay initialization)"
        )
    if unfaulted:
        notes.append(
            f"faults={faults!r} not supported by: {', '.join(unfaulted)} "
            "(those experiments replayed fault-free)"
        )

    tasks: List[Tuple[ExperimentDef, Cell]] = []
    spans: List[Tuple[str, int, int]] = []  # (name, first task index, count)
    for definition in definitions:
        cells = definition.cells(scale)
        spans.append((definition.name, len(tasks), len(cells)))
        tasks.extend((definition, cell) for cell in cells)

    cell_results: List[Optional[CellResult]] = [None] * len(tasks)
    errors: List[CellError] = []
    with _backend_scope(backend):
        if workers <= 1 or len(tasks) <= 1:
            workers = 1
            cache = ScheduleCache(cache_dir, shard_packets=shard_packets)
            for index, (definition, cell) in enumerate(tasks):
                failure: Optional[_CellFailure] = None
                attempts = 0
                for attempt in range(max_retries + 1):
                    if attempt:
                        time.sleep(retry_backoff * 2 ** (attempt - 1))
                    attempts += 1
                    try:
                        with _cell_deadline(cell_timeout):
                            cell_results[index] = _execute_cell(
                                definition, cell, scale, cache
                            )
                    except Exception as error:
                        failure = _CellFailure.capture(error)
                    else:
                        break
                else:
                    errors.append(_cell_error(cell, failure, attempts))
            cache_hits, cache_misses = cache.hits, cache.misses
        else:
            records_computed, parallel_errors = _run_parallel(
                tasks,
                scale,
                workers=workers,
                cache_dir=cache_dir,
                backend=backend,
                cell_timeout=cell_timeout,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                cell_results=cell_results,
                notes=notes,
                shard_packets=shard_packets,
            )
            errors.extend(parallel_errors)
            cache_hits = sum(r.cache_hits for r in cell_results if r is not None)
            cache_misses = records_computed + sum(
                r.cache_misses for r in cell_results if r is not None
            )

    results: Dict[str, ExperimentResult] = {}
    for definition, (name, first, count) in zip(definitions, spans):
        chunk = [r for r in cell_results[first : first + count] if r is not None]
        result = definition.assemble(scale, chunk)
        if replicates > 1 and name not in unreplicated:
            result.aggregates = aggregate_replicate_rows(result.rows)
        results[name] = result

    return RunSummary(
        results=results,
        cells=len(tasks),
        workers=workers,
        wall_time=time.perf_counter() - start,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        notes=notes,
        errors=errors,
    )


def _run_parallel(
    tasks: Sequence[Tuple[ExperimentDef, Cell]],
    scale: "ExperimentScale",
    workers: int,
    cache_dir: Optional[str],
    backend: Optional[str],
    cell_timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    cell_results: List[Optional[CellResult]],
    notes: List[str],
    shard_packets: int = DEFAULT_SHARD_PACKETS,
) -> Tuple[int, List[CellError]]:
    """Fan cells out across pool workers, with crash recovery and retries.

    Runs up to ``max_retries + 1`` rounds.  Each round gets a **fresh**
    ``ProcessPoolExecutor``: a worker that dies (OOM-killed, SIGKILL,
    segfault) breaks the entire pool — every outstanding future fails with
    ``BrokenProcessPool`` — so per-round pools are what turns "one crashed
    worker aborts the campaign" into "the surviving work retries".  Within a
    round, phase 1 records missing unique schedules and phase 2 replays
    cells, exactly as before; items that failed stay pending for the next
    round, items that succeeded never re-run.

    Fills ``cell_results`` in place; returns ``(records_computed, errors)``.
    """
    # Phase 1 (record): with a shared on-disk cache, record each missing
    # unique schedule exactly once before any replay cell runs.  Without a
    # disk layer workers cannot share recordings, so phase 1 is skipped and
    # each worker records what it needs (the pre-two-phase behavior).
    pending_records: "OrderedDict[str, Scenario]" = OrderedDict()
    if cache_dir is not None:
        pending_records = OrderedDict(
            _plan_records(tasks, ScheduleCache(cache_dir, shard_packets=shard_packets))
        )
    pending_cells: "OrderedDict[int, Tuple[ExperimentDef, Cell]]" = OrderedDict(
        (index, task) for index, task in enumerate(tasks)
    )
    record_attempts: Dict[str, int] = {}
    cell_attempts: Dict[int, int] = {}
    cell_failures: Dict[int, _CellFailure] = {}
    records_computed = 0

    for round_index in range(max_retries + 1):
        if not pending_records and not pending_cells:
            break
        if round_index:
            time.sleep(retry_backoff * 2 ** (round_index - 1))
        pool_broken = False
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(cache_dir, backend, cell_timeout, shard_packets),
        ) as pool:
            if pending_records:
                record_futures = {
                    pool.submit(_worker_record, (key, scenario)): key
                    for key, scenario in pending_records.items()
                }
                for future in as_completed(record_futures):
                    key = record_futures[future]
                    record_attempts[key] = record_attempts.get(key, 0) + 1
                    try:
                        _, outcome = future.result()
                    except Exception:
                        # BrokenProcessPool (a worker died) or a result that
                        # failed to unpickle: the key stays pending and the
                        # pool is not reused this round.
                        pool_broken = True
                        continue
                    if isinstance(outcome, _CellFailure):
                        continue  # stays pending; cells may still self-record
                    records_computed += outcome
                    pending_records.pop(key, None)
            if not pool_broken and pending_cells:
                # Phase 2 (replay): every cell runs against the (best-effort)
                # warm cache.  Shard-capable cells are expanded into one pool
                # task *per shard* — the pool's task queue is the
                # work-stealing mechanism, so a worker finishing a small
                # shard immediately picks up the next one regardless of
                # which cell it belongs to — and their partials merge
                # driver-side in shard-index order (the determinism rule:
                # identical rows to a serial run).  Everything else runs
                # whole, exactly as before; completed cells leave the
                # pending map, failures keep their captured traceback.
                driver_cache = (
                    ScheduleCache(cache_dir, shard_packets=shard_packets)
                    if cache_dir is not None
                    else None
                )
                cell_futures = {}
                shard_futures: Dict[object, Tuple[int, int]] = {}
                shard_partials: Dict[int, List[Optional[object]]] = {}
                for index, (definition, cell) in pending_cells.items():
                    shards: List[object] = []
                    if definition.supports_shards and driver_cache is not None:
                        try:
                            shards = definition.cell_shards(cell, scale, driver_cache)
                        except Exception:
                            shards = []  # fall back to whole-cell execution
                    if len(shards) > 1:
                        cell_attempts[index] = cell_attempts.get(index, 0) + 1
                        shard_partials[index] = [None] * len(shards)
                        for shard_index, shard in enumerate(shards):
                            future = pool.submit(
                                _worker_run_shard,
                                (index, shard_index, definition, cell, scale, shard),
                            )
                            shard_futures[future] = (index, shard_index)
                    else:
                        cell_futures[
                            pool.submit(_worker_run, (index, definition, cell, scale))
                        ] = index
                for future in as_completed(
                    list(cell_futures) + list(shard_futures)
                ):
                    if future in shard_futures:
                        index, shard_index = shard_futures[future]
                        try:
                            _, _, outcome = future.result()
                        except Exception as error:
                            pool_broken = True
                            cell_failures[index] = _CellFailure.capture(error)
                            continue
                        if isinstance(outcome, _CellFailure):
                            cell_failures[index] = outcome
                            continue
                        shard_partials[index][shard_index] = outcome
                        continue
                    index = cell_futures[future]
                    cell_attempts[index] = cell_attempts.get(index, 0) + 1
                    try:
                        _, outcome = future.result()
                    except Exception as error:
                        pool_broken = True
                        cell_failures[index] = _CellFailure.capture(error)
                        continue
                    if isinstance(outcome, _CellFailure):
                        cell_failures[index] = outcome
                        continue
                    cell_results[index] = outcome
                    pending_cells.pop(index, None)
                    cell_failures.pop(index, None)
                # Merge every sharded cell whose shards all completed.  A
                # cell with any failed shard stays pending (its failure is
                # recorded) and re-runs whole next round — partials are
                # cheap relative to the recording they read from cache.
                for index, partials in shard_partials.items():
                    if index in cell_failures or any(p is None for p in partials):
                        continue
                    definition, cell = pending_cells[index]
                    try:
                        cell_results[index] = definition.merge_shards(
                            cell, scale, list(partials)
                        )
                    except Exception as error:
                        cell_failures[index] = _CellFailure.capture(error)
                        continue
                    pending_cells.pop(index, None)
                    cell_failures.pop(index, None)

    errors = [
        _cell_error(cell, cell_failures.get(index), cell_attempts.get(index, 0))
        for index, (_, cell) in pending_cells.items()
    ]
    if pending_records:
        notes.append(
            f"{len(pending_records)} schedule recording(s) never completed in "
            "phase 1; dependent cells recorded in-worker or failed (see errors)"
        )
    return records_computed, errors


# ---------------------------------------------------------------------- #
# Replicate aggregation
# ---------------------------------------------------------------------- #
def _replicate_base(value: str) -> str:
    """Strip the ``#rN`` replicate suffix from a row label."""
    return value.split("#r")[0]


def aggregate_replicate_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Collapse replicate rows into per-base-row summary statistics.

    Rows are grouped by their string-valued identity columns (with the
    ``#rN`` replicate suffix stripped); every numeric column then yields
    ``<column>_mean`` / ``<column>_stddev`` / ``<column>_ci95`` over the
    group (sample stddev, 95% Student-t confidence half-width — see
    :func:`repro.utils.stats.summarize`).
    """
    groups: "OrderedDict[Tuple, List[Dict[str, object]]]" = OrderedDict()
    for row in rows:
        identity = tuple(
            (column, _replicate_base(value))
            for column, value in row.items()
            if isinstance(value, str)
        )
        groups.setdefault(identity, []).append(row)

    aggregated: List[Dict[str, object]] = []
    for identity, members in groups.items():
        out: Dict[str, object] = dict(identity)
        out["replicates"] = len(members)
        # Numeric columns are collected across *all* members: a column that
        # happens to be None in the first replicate (e.g. deadline fractions
        # of a seed that tagged no flows) must still be aggregated.
        numeric_columns: List[str] = []
        for member in members:
            for column, value in member.items():
                if (
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and column not in numeric_columns
                ):
                    numeric_columns.append(column)
        for column in numeric_columns:
            values = [
                float(member[column])
                for member in members
                if isinstance(member.get(column), (int, float))
                and not isinstance(member.get(column), bool)
            ]
            if not values:
                continue
            stats = summarize(values)
            out[f"{column}_mean"] = stats.mean
            out[f"{column}_stddev"] = stats.stddev
            out[f"{column}_ci95"] = stats.ci95
            if len(values) != len(members):
                # Fewer samples than replicates (missing/None cells): say so
                # instead of letting the error bar silently overclaim.
                out[f"{column}_n"] = len(values)
        aggregated.append(out)
    return aggregated
