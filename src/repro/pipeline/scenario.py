"""Declarative scenario descriptions.

A :class:`Scenario` is a frozen, picklable value object describing one
record/replay cell: which topology to build (by :class:`ExperimentScale`
builder name, so the scenario itself never holds live simulator objects),
what workload to offer, which "original" scheduler records the schedule, and
which candidate universal scheduler replays it.  Because scenarios are plain
data they can be hashed into cache keys, shipped to pool workers, and listed
by the CLI without running anything.

:class:`Sweep` expands a base scenario along one parameter (utilization,
original scheduler, seed, ...) into a scenario list — the building block for
wide experiment matrices.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.topology.base import Topology
from repro.traffic.distributions import FlowSizeDistribution
from repro.traffic.registry import WORKLOADS
from repro.traffic.workload import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments -> pipeline)
    from repro.experiments.config import ExperimentScale


class PipelineConfigError(ValueError):
    """A run was configured with an impossible combination of options.

    Raised at *expansion time* — while overrides are validated and cells
    are planned, before any simulation runs — e.g. a live-only slack policy
    pinned onto replay scenarios.  The CLI reports these as one-line usage
    errors (exit 2); genuine mid-run :class:`ValueError`\\ s keep their
    tracebacks.
    """


class _WorkloadFactoryView(Mapping):
    """Thin read-only compatibility view over the workload registry.

    Scenarios used to reference a hard-coded dict of distribution factory
    lambdas; the registry (:data:`repro.traffic.registry.WORKLOADS`) is now
    the single source of truth, and this view keeps the old
    ``WORKLOAD_FACTORIES[name]()`` call shape working — each entry is a
    zero-argument callable building the workload's flow-size distribution.
    """

    def __getitem__(self, name: str) -> Callable[[], FlowSizeDistribution]:
        return WORKLOADS.get(name).build_distribution

    def __iter__(self) -> Iterator[str]:
        return iter(WORKLOADS.names())

    def __len__(self) -> int:
        return len(WORKLOADS)


#: Named workload factories available to scenarios — a compatibility view
#: over the workload registry (see :mod:`repro.traffic.registry`).
WORKLOAD_FACTORIES = _WorkloadFactoryView()


@dataclass(frozen=True)
class Scenario:
    """One record/replay cell, fully described by plain data.

    Attributes:
        name: Row label (e.g. ``"I2-1G-10G@70"``).
        scale: The scale preset the scenario is bound to.
        topology: Name of the topology builder method on
            :class:`ExperimentScale` (``"internet2"``, ``"rocketfuel"``,
            ``"fattree"``).
        topology_args: Keyword arguments for the builder, as a sorted tuple of
            ``(name, value)`` pairs so the scenario stays hashable.
        utilization: Offered load on the reference link.
        original: Original scheduler name (registry name or ``"fq+fifo+"``).
        reference_gbps: Nominal bandwidth of the reference link in Gbps
            (scaled by the preset at workload-build time).
        duration_scale: Multiplier on the preset's flow-arrival window.
        replay_mode: Default candidate UPS for this scenario's replay.
        seed_offset: Added to ``scale.seed`` to form the scenario seed.
        seed_override: Absolute seed that, when set, wins over
            ``scale.seed + seed_offset`` (used for seed sweeps/replicates).
        transport: ``"udp"`` (the paper's replay setting) or ``"tcp"``.
        workload_name: Key into the workload registry
            (:data:`repro.traffic.registry.WORKLOADS`).
        slack_policy: Key into the slack-policy registry
            (:data:`repro.core.slack_policy.SLACK_POLICIES`) selecting how
            packets' slack is initialized; ``None`` keeps the replay mode's
            own initializer (the pre-policy behaviour, with bit-identical
            cache keys).
        slack_mode: How ``slack_policy`` applies — ``"replay"`` (the
            default: the policy stamps packets re-injected from the recorded
            schedule) or ``"live"`` (the policy stamps packets at send time
            *while recording*, so the recorded schedule itself embodies the
            policy — the Section-3 deployment mode).  Ignored when
            ``slack_policy`` is ``None``.
        backend: Simulation-engine selector for this scenario's replay
            (registry name from :mod:`repro.sim.backend`); ``None`` defers
            to the process default (``REPRO_BACKEND`` or ``"python"``).
            Deliberately **not** part of any cache key: backends are
            bit-identical by contract, so the engine choice can never change
            a recorded schedule or a row.
        faults: Key into the fault-schedule registry
            (:data:`repro.faults.FAULTS`) selecting the fault plan injected
            into this scenario's *replay* network (the recording stays
            fault-free: the question is how the candidate UPS copes when
            the replay network misbehaves); ``None`` replays fault-free
            with bit-identical cache keys.
        fault_seed: Seed for the fault plan's stochastic faults,
            deliberately independent of the workload seed so the same
            traffic can be replayed under different fault draws.
    """

    name: str
    scale: "ExperimentScale"
    topology: str = "internet2"
    topology_args: Tuple[Tuple[str, float], ...] = ()
    utilization: float = 0.7
    original: str = "random"
    reference_gbps: float = 1.0
    duration_scale: float = 1.0
    replay_mode: str = "lstf"
    seed_offset: int = 0
    seed_override: Optional[int] = None
    transport: str = "udp"
    workload_name: str = "paper-default"
    slack_policy: Optional[str] = None
    slack_mode: str = "replay"
    backend: Optional[str] = None
    faults: Optional[str] = None
    fault_seed: int = 0

    def __post_init__(self) -> None:
        from repro.core.slack_policy import SLACK_MODES

        if self.slack_mode not in SLACK_MODES:
            raise ValueError(
                f"scenario {self.name}: slack_mode must be one of "
                f"{', '.join(SLACK_MODES)}; got {self.slack_mode!r}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def seed(self) -> int:
        """The scenario's fully resolved workload seed."""
        if self.seed_override is not None:
            return self.seed_override
        return self.scale.seed + self.seed_offset

    @property
    def duration(self) -> float:
        """Flow-arrival window in seconds."""
        return self.scale.duration * self.duration_scale

    @property
    def reference_bandwidth_bps(self) -> float:
        """The scaled bandwidth of the reference link."""
        return self.scale.scaled_bandwidth(self.reference_gbps)

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def build_topology(self) -> Topology:
        """Instantiate this scenario's topology spec."""
        builder = getattr(self.scale, self.topology, None)
        if builder is None or not callable(builder):
            raise ValueError(
                f"scenario {self.name}: ExperimentScale has no topology "
                f"builder named {self.topology!r}"
            )
        return builder(**dict(self.topology_args))

    def workload_def(self):
        """This scenario's :class:`~repro.traffic.registry.WorkloadDef`."""
        return WORKLOADS.get(self.workload_name)

    def slack_policy_def(self):
        """This scenario's :class:`~repro.core.slack_policy.SlackPolicyDef`.

        ``None`` when the scenario uses the replay mode's own initializer.
        """
        if self.slack_policy is None:
            return None
        from repro.core.slack_policy import SLACK_POLICIES

        return SLACK_POLICIES.get(self.slack_policy)

    def live_slack_policy(self):
        """The send-time :class:`~repro.core.slack.SlackPolicy` to install
        while *recording* this scenario, or ``None``.

        Non-``None`` exactly when the scenario carries a policy in
        ``slack_mode="live"``; raises :class:`ValueError` if that policy is
        replay-only (it cannot stamp packets without a recorded schedule).
        """
        if self.slack_policy is None or self.slack_mode != "live":
            return None
        return self.slack_policy_def().build_live()

    def fault_plan(self):
        """This scenario's :class:`repro.faults.FaultPlan`, or ``None``.

        ``None`` (no ``faults`` key) and a plan built from the ``"empty"``
        schedule hash and replay identically.
        """
        if self.faults is None:
            return None
        from repro.faults import FAULTS, FaultPlan

        return FaultPlan(FAULTS.get(self.faults), seed=self.fault_seed)

    def workload(self) -> WorkloadSpec:
        """The workload for this scenario (distribution + perturbations)."""
        definition = self.workload_def()
        return WorkloadSpec(
            utilization=self.utilization,
            reference_bandwidth_bps=self.reference_bandwidth_bps,
            size_distribution=definition.build_distribution(),
            transport=self.transport,
            duration=self.duration,
            perturbations=definition.perturbations,
        )

    def with_seed(self, seed: int, suffix: Optional[str] = None) -> "Scenario":
        """A copy of this scenario pinned to an absolute seed."""
        name = self.name if suffix is None else f"{self.name}{suffix}"
        return replace(self, seed_override=seed, name=name)

    def run(self, mode: Optional[str] = None, cache=None):
        """Record (or fetch from cache) and replay this scenario.

        Convenience wrapper over
        :func:`repro.pipeline.experiment.replay_scenario`.
        """
        from repro.pipeline.experiment import replay_scenario

        return replay_scenario(self, mode=mode, cache=cache)


def stable_seed(*parts) -> int:
    """A deterministic 31-bit seed derived from arbitrary labels.

    Used to spawn per-cell RNG seeds for seed replicates: the same
    (base seed, scenario, replicate) tuple always maps to the same seed, on
    every platform and in every process, without any shared RNG stream.
    """
    blob = json.dumps([str(part) for part in parts])
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


def expand_replicates(scenarios: List[Scenario], replicates: int) -> List[Scenario]:
    """Expand each scenario into ``replicates`` seed variants.

    Replicate 0 keeps the scenario's own seed (so default runs reproduce the
    single-seed rows exactly); replicates 1..n-1 get :func:`stable_seed`-derived
    seeds and a ``#rN`` name suffix.
    """
    if replicates <= 1:
        return list(scenarios)
    expanded: List[Scenario] = []
    for scenario in scenarios:
        expanded.append(scenario)
        for replicate in range(1, replicates):
            expanded.append(
                scenario.with_seed(
                    stable_seed(scenario.seed, scenario.name, replicate),
                    suffix=f"#r{replicate}",
                )
            )
    return expanded


def override_workload(scenarios: Sequence[Scenario], workload_name: str) -> List[Scenario]:
    """Pin every scenario to ``workload_name`` (``--workload`` CLI override).

    Scenarios already on that workload keep their names; overridden ones get
    a ``+workload`` suffix so their rows (and cache entries) cannot be
    mistaken for the original workload's.  The name is validated against the
    registry up front so typos fail before anything runs.
    """
    WORKLOADS.get(workload_name)  # raises KeyError listing known workloads
    out: List[Scenario] = []
    for scenario in scenarios:
        if scenario.workload_name == workload_name:
            out.append(scenario)
        else:
            out.append(
                replace(
                    scenario,
                    workload_name=workload_name,
                    name=f"{scenario.name}+{workload_name}",
                )
            )
    return out


def override_slack_policy(
    scenarios: Sequence[Scenario], policy_name: str
) -> List[Scenario]:
    """Pin every scenario to ``policy_name`` (``--slack-policy`` CLI override).

    Mirrors :func:`override_workload`: scenarios already on that policy keep
    their names; overridden ones get a ``+slack:<name>`` suffix so their rows
    (and cache entries) cannot be mistaken for the default replay's.  The
    name is validated against the registry up front so typos fail before
    anything runs; a policy that cannot serve a scenario's ``slack_mode``
    (e.g. a live-only policy pinned onto replay cells) also fails at
    expansion time rather than mid-run.
    """
    from repro.core.slack_policy import SLACK_POLICIES

    definition = SLACK_POLICIES.get(policy_name)  # KeyError lists known policies
    out: List[Scenario] = []
    for scenario in scenarios:
        supported = (
            definition.supports_live
            if scenario.slack_mode == "live"
            else definition.supports_replay
        )
        if not supported:
            raise PipelineConfigError(
                f"slack policy {policy_name!r} (capability "
                f"{definition.capability()!r}) cannot drive scenario "
                f"{scenario.name!r} in slack_mode={scenario.slack_mode!r}"
            )
        if scenario.slack_policy == policy_name:
            out.append(scenario)
        else:
            out.append(
                replace(
                    scenario,
                    slack_policy=policy_name,
                    name=f"{scenario.name}+slack:{policy_name}",
                )
            )
    return out


def override_faults(
    scenarios: Sequence[Scenario], fault_name: str, fault_seed: int = 0
) -> List[Scenario]:
    """Pin every scenario to fault schedule ``fault_name`` (``--fault`` override).

    Mirrors :func:`override_workload`: scenarios already on that schedule
    (with the same fault seed) keep their names; overridden ones get a
    ``+fault:<name>`` suffix so their rows (and cache entries) cannot be
    mistaken for the fault-free replay's.  The name is validated against the
    fault registry up front so typos fail before anything runs.
    """
    from repro.faults import FAULTS

    try:
        FAULTS.get(fault_name)  # KeyError lists known fault schedules
    except KeyError as error:
        # str(KeyError) is the repr of its message (extra quotes); unwrap.
        raise PipelineConfigError(error.args[0]) from None
    out: List[Scenario] = []
    for scenario in scenarios:
        if scenario.faults == fault_name and scenario.fault_seed == fault_seed:
            out.append(scenario)
        else:
            out.append(
                replace(
                    scenario,
                    faults=fault_name,
                    fault_seed=fault_seed,
                    name=f"{scenario.name}+fault:{fault_name}",
                )
            )
    return out


def _default_sweep_name(base: Scenario, parameter: str, value) -> str:
    if isinstance(value, float):
        return f"{base.name}[{parameter}={value:g}]"
    return f"{base.name}[{parameter}={value}]"


@dataclass(frozen=True)
class Sweep:
    """A one-parameter scenario sweep.

    Expands ``base`` into one scenario per value of ``parameter``.  ``namer``
    (a module-level function, so sweeps stay picklable) maps ``(base, value)``
    to the row label; the default appends ``[parameter=value]``.
    """

    base: Scenario
    parameter: str
    values: Tuple
    namer: Optional[Callable[[Scenario, object], str]] = None

    def scenarios(self) -> List[Scenario]:
        """The expanded scenario list, in value order."""
        out: List[Scenario] = []
        for value in self.values:
            if self.namer is not None:
                name = self.namer(self.base, value)
            else:
                name = _default_sweep_name(self.base, self.parameter, value)
            out.append(replace(self.base, **{self.parameter: value}, name=name))
        return out

    def __iter__(self):
        return iter(self.scenarios())
