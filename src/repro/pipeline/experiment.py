"""Experiment definitions, cells, and the scenario registry.

An :class:`ExperimentDef` describes one paper artifact (a table, a figure, an
ablation) as three hooks:

* :meth:`~ExperimentDef.cells` — expand the experiment into independent
  :class:`Cell` work units (scenario x seed x replay-mode).  Cells are plain
  picklable data, so the runner can fan them out across processes.
* :meth:`~ExperimentDef.run_cell` — execute one cell (possibly inside a pool
  worker) and return its result row (plus optional plot data).
* :meth:`~ExperimentDef.assemble` — merge the cell results, in cell order,
  into the experiment's :class:`ExperimentResult`.

The global :data:`REGISTRY` maps experiment names (``"table1"``,
``"figure2"``, ...) to their definitions; the definitions themselves live in
:mod:`repro.experiments`, which registers them at import time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.replay import (
    ReplayResult,
    evaluate_replay,
    original_scheduler_factory,
    record_schedule,
)
from repro.core.schedule import Schedule
from repro.pipeline.cache import ScheduleCache, schedule_cache_key
from repro.pipeline.scenario import Scenario
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments -> pipeline)
    from repro.experiments.config import ExperimentResult, ExperimentScale


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    Attributes:
        experiment: Registry name of the owning experiment.
        label: Scenario/row label (used for display and curve keys).
        mode: Replay mode or scheduler variant the cell evaluates.
        seed: Fully resolved seed for the cell's stochastic inputs.
        spec: Experiment-specific picklable payload (usually a
            :class:`~repro.pipeline.scenario.Scenario`).
    """

    experiment: str
    label: str
    mode: str
    seed: int
    spec: Any = None

    @property
    def cell_id(self) -> str:
        """Stable human-readable identifier for logs and progress output."""
        return f"{self.experiment}/{self.label}/{self.mode}/s{self.seed}"


@dataclass
class CellResult:
    """Outcome of one cell: a result row plus bookkeeping.

    ``cache_hits``/``cache_misses`` record how many schedule-cache lookups
    the cell made so the runner can report aggregate cache behaviour.
    """

    cell: Cell
    row: Dict[str, Any]
    curve: Any = None
    curve_key: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0


class ExperimentDef(ABC):
    """One paper artifact, decomposed into parallelizable cells."""

    #: Registry name (also the default ExperimentResult name).
    name: str = ""
    #: Name recorded on the assembled ExperimentResult (defaults to ``name``).
    result_name: Optional[str] = None
    #: Free-form remarks copied onto the assembled result.
    notes: str = ""
    #: Whether this experiment's cells honor the ``workload`` attribute
    #: (set by :meth:`with_workload` / the ``--workload`` CLI override).
    #: Definitions that opt in must apply ``self.workload`` when expanding
    #: scenarios; the runner notes unsupported experiments instead of
    #: silently ignoring the override.
    supports_workload: bool = False
    #: Whether this experiment honors the ``replicates`` attribute
    #: (seed replicates set by :meth:`with_replicates` / ``--replicates``).
    supports_replicates: bool = False
    #: Whether this experiment honors the ``slack_policy`` attribute (set by
    #: :meth:`with_slack_policy` / the ``--slack-policy`` CLI override).
    #: Definitions that opt in must apply ``self.slack_policy`` when
    #: expanding scenarios (:func:`~repro.pipeline.scenario
    #: .override_slack_policy`); the runner notes unsupported experiments
    #: instead of silently ignoring the override.
    supports_slack_policy: bool = False
    #: Whether this experiment honors the ``faults`` attribute (set by
    #: :meth:`with_faults` / the ``--fault`` CLI override).  Definitions
    #: that opt in must apply ``self.faults`` when expanding scenarios
    #: (:func:`~repro.pipeline.scenario.override_faults`); the runner notes
    #: unsupported experiments instead of silently ignoring the override.
    supports_faults: bool = False
    #: Registry workload overriding every scenario (``None`` = keep as-is).
    workload: Optional[str] = None
    #: Registry slack policy overriding every scenario (``None`` = keep as-is).
    slack_policy: Optional[str] = None
    #: Registry fault schedule overriding every scenario (``None`` = keep as-is).
    faults: Optional[str] = None
    #: Fault seed accompanying the ``faults`` override.
    fault_seed: int = 0
    #: Seed replicates per scenario.
    replicates: int = 1

    def with_workload(self, workload: str) -> "ExperimentDef":
        """A copy of this definition pinned to one registry workload."""
        import copy

        clone = copy.copy(self)
        clone.workload = workload
        return clone

    def with_slack_policy(self, slack_policy: str) -> "ExperimentDef":
        """A copy of this definition pinned to one registry slack policy."""
        import copy

        clone = copy.copy(self)
        clone.slack_policy = slack_policy
        return clone

    def with_replicates(self, replicates: int) -> "ExperimentDef":
        """A copy of this definition running ``replicates`` seed replicates."""
        import copy

        clone = copy.copy(self)
        clone.replicates = replicates
        return clone

    def with_faults(self, faults: str, fault_seed: int = 0) -> "ExperimentDef":
        """A copy of this definition pinned to one registry fault schedule."""
        import copy

        clone = copy.copy(self)
        clone.faults = faults
        clone.fault_seed = fault_seed
        return clone

    # ------------------------------------------------------------------ #
    # Live-policy override helpers (direct-simulation experiments)
    # ------------------------------------------------------------------ #
    def validate_live_slack_policy(self) -> None:
        """Fail fast if the ``--slack-policy`` override cannot stamp live packets.

        Direct-simulation experiments (Figures 2/3) call this from
        :meth:`cells`, so a typo'd or replay-only policy aborts at
        expansion time — before any cell simulates — with a
        :class:`~repro.pipeline.scenario.PipelineConfigError` the CLI turns
        into a one-line usage error.
        """
        if self.slack_policy is None:
            return
        from repro.core.slack_policy import SLACK_POLICIES
        from repro.pipeline.scenario import PipelineConfigError

        policy = SLACK_POLICIES.get(self.slack_policy)  # KeyError on typo
        if not policy.supports_live:
            raise PipelineConfigError(
                f"experiment {self.name}: slack policy {policy.name!r} "
                f"(capability {policy.capability()!r}) cannot stamp live "
                "packets at send time"
            )

    def live_slack_policy_override(self, configured: Optional[str]) -> Optional[str]:
        """The override to apply to a cell whose configured policy is ``configured``.

        Returns the experiment's ``slack_policy`` when both it and the
        cell's own configured policy are set (the override swaps the
        policy-bearing deployment's heuristic), and ``None`` otherwise —
        policy-less cells (conventional schedulers) are never given a
        policy by the override.
        """
        if self.slack_policy is not None and configured is not None:
            return self.slack_policy
        return None

    @abstractmethod
    def cells(self, scale: "ExperimentScale") -> List[Cell]:
        """Expand this experiment into independent cells, in row order."""

    @abstractmethod
    def run_cell(
        self, cell: Cell, scale: "ExperimentScale", cache: ScheduleCache
    ) -> CellResult:
        """Execute one cell.  May run inside a process-pool worker."""

    # ------------------------------------------------------------------ #
    # Shard protocol (scale-tier cells; opt-in via ``supports_shards``)
    # ------------------------------------------------------------------ #
    #: Whether this experiment's cells can be split into shard sub-tasks the
    #: runner work-steals individually (:meth:`cell_shards` /
    #: :meth:`run_cell_shard` / :meth:`merge_shards`).  The determinism
    #: contract: the shard partition must be a pure function of the cell and
    #: the cache's ``shard_packets`` (never of worker count or storage
    #: layout), and partials must merge associatively in shard-index order,
    #: so sharded serial, sharded parallel, and :meth:`run_cell` all emit
    #: the same row.
    supports_shards: bool = False

    def cell_shards(
        self, cell: Cell, scale: "ExperimentScale", cache: ScheduleCache
    ) -> List[Any]:
        """Picklable shard specs for ``cell``, in shard-index order.

        An empty list means "run this cell whole via :meth:`run_cell`" —
        the default for definitions that never shard, and the escape hatch
        for modes of a sharding definition that cannot split.
        """
        return []

    def run_cell_shard(
        self, cell: Cell, shard: Any, scale: "ExperimentScale", cache: ScheduleCache
    ) -> Any:
        """Execute one shard of ``cell``; returns a picklable partial."""
        raise NotImplementedError(
            f"experiment {self.name} declares supports_shards but does not "
            "implement run_cell_shard"
        )

    def merge_shards(
        self, cell: Cell, scale: "ExperimentScale", partials: List[Any]
    ) -> CellResult:
        """Merge shard partials (given in shard-index order) into the cell row."""
        raise NotImplementedError(
            f"experiment {self.name} declares supports_shards but does not "
            "implement merge_shards"
        )

    def assemble(
        self, scale: "ExperimentScale", results: List[CellResult]
    ) -> "ExperimentResult":
        """Merge cell results (already in cell order) into one result."""
        from repro.experiments.config import ExperimentResult

        merged = ExperimentResult(
            name=self.result_name or self.name,
            scale_label=scale.label,
            notes=self.notes,
        )
        curves: Dict[str, Any] = {}
        for cell_result in results:
            merged.rows.append(cell_result.row)
            if cell_result.curve is not None:
                curves[cell_result.curve_key or cell_result.cell.label] = cell_result.curve
        if curves:
            merged.curves = curves  # type: ignore[attr-defined]
        return merged


# ---------------------------------------------------------------------- #
# Shared record/replay cell logic
# ---------------------------------------------------------------------- #
def build_live_slack_policy(configured, override: Optional[str] = None):
    """Materialize a direct-simulation cell's send-time slack policy.

    Both override rules live here — the single resolution point for live
    experiments (Figures 2/3), so the semantics cannot drift between them:

    * ``override`` (a registry name, e.g. an experiment's
      ``--slack-policy``) replaces the cell's ``configured`` registry name;
    * a cell with no configured policy (a conventional scheduler) is never
      given one by an override — ``configured=None`` always resolves to
      ``None``, whatever the override says.

    Returns:
        A built :class:`~repro.core.slack.SlackPolicy`, or ``None``.
    """
    if configured is None:
        return None
    name = override if override is not None else configured
    from repro.core.slack_policy import SLACK_POLICIES

    return SLACK_POLICIES.get(str(name)).build_live()


def scenario_cache_key(scenario: Scenario) -> str:
    """The schedule-cache key this scenario's record/replay cell will use.

    Computed from plain specs (no simulation runs), so the runner can plan
    recording work — deduplicating cells that share one original schedule —
    before fanning anything out to workers.  Scenarios pinned to a slack
    policy hash the policy's serialized form (plus a live-mode marker when
    the policy shaped the recording) into their key; scenarios pinned to a
    non-empty fault schedule hash the fault plan's fingerprint; plain
    scenarios hash exactly what they always did.
    """
    return schedule_cache_key(
        scenario.build_topology(),
        scenario.original,
        scenario.workload(),
        scenario.seed,
        slack_policy=scenario.slack_policy_def(),
        slack_mode=scenario.slack_mode,
        faults=scenario.fault_plan(),
    )


def record_scenario_schedule(
    scenario: Scenario,
    topology=None,
    workload=None,
) -> Schedule:
    """Record the original schedule for ``scenario`` (no cache involved).

    A scenario carrying a live-mode slack policy
    (``slack_mode="live"``) records with that policy installed on the
    network, so the recorded schedule is what the policy-stamped deployment
    actually produced; every other scenario records exactly as before.
    """
    topology = topology if topology is not None else scenario.build_topology()
    workload = workload if workload is not None else scenario.workload()
    factory = original_scheduler_factory(
        scenario.original, topology, rng=RandomState(scenario.seed + 1)
    )
    return record_schedule(
        topology,
        factory,
        workload,
        seed=scenario.seed,
        slack_policy=scenario.live_slack_policy(),
    )


def replay_scenario(
    scenario: Scenario,
    mode: Optional[str] = None,
    cache: Optional[ScheduleCache] = None,
    backend: Optional[str] = None,
) -> ReplayResult:
    """Record (or fetch from cache) ``scenario``'s schedule and replay it.

    This is the workhorse every replay-style experiment cell goes through:
    the original schedule comes from the content-addressed cache, so cells
    sharing a scenario (e.g. the same schedule replayed under LSTF and under
    simple priorities) record it only once.

    When the scenario carries a ``slack_policy`` in ``slack_mode="replay"``,
    the policy's initializer replaces the replay mode's default header
    initialization (heuristic slack instead of recorded output times); the
    mode must then be one of
    :data:`~repro.core.slack_policy.POLICY_COMPATIBLE_MODES`, since the
    omniscient and static-priority modes read header fields only the
    recorded schedule can supply.  In ``slack_mode="live"`` the policy
    already shaped the *recording* (it stamped packets at send time), so the
    replay itself uses the mode's own initializer on that policy-shaped
    schedule.

    ``backend`` selects the simulation engine for the *replay* leg (the
    recording always runs on the reference engine — no optimized backend
    reimplements the original-scheduler zoo); it overrides the scenario's
    own ``backend`` field, and both default to the process-wide selection
    (``REPRO_BACKEND`` or ``"python"``).  Backends are bit-identical by
    contract, so the choice never changes a row — only how fast it is
    produced — which is why it stays out of every cache key.

    A scenario pinned to a fault schedule (``scenario.faults``) injects the
    plan into the *replay* network only — the recording stays fault-free, so
    the question each fault row answers is "how does the candidate UPS cope
    when the network misbehaves under it?".  Accelerated backends decline
    fault-bearing replays via ``supports_replay`` and the replay silently
    runs on the reference engine.
    """
    cache = cache if cache is not None else ScheduleCache()
    topology = scenario.build_topology()
    workload = scenario.workload()
    policy = scenario.slack_policy_def()
    resolved_mode = mode or scenario.replay_mode
    initializer = None
    if policy is not None and scenario.slack_mode == "replay":
        from repro.core.slack_policy import POLICY_COMPATIBLE_MODES

        if resolved_mode not in POLICY_COMPATIBLE_MODES:
            raise ValueError(
                f"scenario {scenario.name}: slack policy {policy.name!r} cannot "
                f"drive replay mode {resolved_mode!r}; compatible modes: "
                f"{', '.join(POLICY_COMPATIBLE_MODES)}"
            )
        initializer = policy.build_initializer()
    fault_plan = scenario.fault_plan()
    schedule, _ = cache.get_or_record(
        topology=topology,
        original=scenario.original,
        workload=workload,
        seed=scenario.seed,
        recorder=lambda: record_scenario_schedule(scenario, topology, workload),
        slack_policy=policy,
        slack_mode=scenario.slack_mode,
        faults=fault_plan,
    )
    return evaluate_replay(
        topology,
        schedule,
        mode=resolved_mode,
        threshold_packet_bytes=float(workload.mss),
        initializer=initializer,
        backend=backend if backend is not None else scenario.backend,
        faults=fault_plan,
    )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
class ScenarioRegistry:
    """Maps experiment names to their definitions, in registration order."""

    def __init__(self) -> None:
        self._definitions: Dict[str, ExperimentDef] = {}

    def register(self, definition: ExperimentDef) -> ExperimentDef:
        """Add (or replace) a definition; returns it for decorator-style use."""
        if not definition.name:
            raise ValueError("experiment definitions need a non-empty name")
        self._definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> ExperimentDef:
        """The definition for ``name`` (KeyError listing known names if absent)."""
        try:
            return self._definitions[name]
        except KeyError:
            known = ", ".join(sorted(self._definitions))
            raise KeyError(f"unknown experiment {name!r}; known: {known}") from None

    def names(self) -> List[str]:
        """All registered experiment names, in registration order."""
        return list(self._definitions)

    def experiments(self) -> List[ExperimentDef]:
        """All registered definitions, in registration order."""
        return list(self._definitions.values())

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self):
        return iter(self._definitions.values())


#: The process-wide registry.  Populated by importing :mod:`repro.experiments`
#: (directly or via :func:`default_registry`).
REGISTRY = ScenarioRegistry()


def register_experiment(definition: ExperimentDef) -> ExperimentDef:
    """Register ``definition`` in the global registry."""
    return REGISTRY.register(definition)


def default_registry() -> ScenarioRegistry:
    """The global registry with every built-in experiment registered.

    Importing :mod:`repro.experiments` registers the paper's experiments as a
    side effect; pool workers call this too, so a freshly spawned worker sees
    the same registry as the driver.
    """
    import repro.experiments  # noqa: F401  (import populates REGISTRY)

    return REGISTRY
