"""The experiment pipeline: record once, replay many, in parallel.

This package turns the paper's "record a schedule, replay it with candidate
universal schedulers" methodology (Section 2.3) into a production-shaped
subsystem:

* :mod:`repro.pipeline.scenario` — declarative, picklable
  :class:`~repro.pipeline.scenario.Scenario` descriptions of one record/replay
  cell, plus :class:`~repro.pipeline.scenario.Sweep` for one-parameter
  scenario matrices;
* :mod:`repro.pipeline.cache` — a content-addressed, on-disk
  :class:`~repro.pipeline.cache.ScheduleCache` keyed by (topology, original
  scheduler, workload, seed) so every original schedule is recorded exactly
  once and shared across replay modes, experiments, processes, and
  invocations;
* :mod:`repro.pipeline.experiment` — the
  :class:`~repro.pipeline.experiment.ExperimentDef` protocol
  (cells / run_cell / assemble), the
  :class:`~repro.pipeline.experiment.ScenarioRegistry` that maps paper
  artifacts (Table 1, Figures 1-4, ablations) to their definitions, and the
  shared record-with-cache replay helper;
* :mod:`repro.pipeline.runner` — a ``ProcessPoolExecutor``-based runner that
  fans independent (scenario x seed x replay-mode) cells out across workers
  and merges the results deterministically, so parallel runs are row-for-row
  identical to serial ones.

The ``python -m repro`` CLI (:mod:`repro.__main__`) exposes all of this from
the command line.
"""

from repro.pipeline.cache import ScheduleCache, schedule_cache_key, workload_fingerprint
from repro.pipeline.experiment import (
    REGISTRY,
    Cell,
    CellResult,
    ExperimentDef,
    ScenarioRegistry,
    default_registry,
    record_scenario_schedule,
    register_experiment,
    replay_scenario,
    scenario_cache_key,
)
from repro.pipeline.runner import (
    RunSummary,
    aggregate_replicate_rows,
    run_experiment,
    run_pipeline,
)
from repro.pipeline.scenario import (
    PipelineConfigError,
    WORKLOAD_FACTORIES,
    Scenario,
    Sweep,
    override_slack_policy,
    override_workload,
)

__all__ = [
    "Cell",
    "CellResult",
    "ExperimentDef",
    "PipelineConfigError",
    "REGISTRY",
    "RunSummary",
    "Scenario",
    "ScenarioRegistry",
    "ScheduleCache",
    "Sweep",
    "WORKLOAD_FACTORIES",
    "aggregate_replicate_rows",
    "default_registry",
    "override_slack_policy",
    "override_workload",
    "record_scenario_schedule",
    "register_experiment",
    "replay_scenario",
    "run_experiment",
    "run_pipeline",
    "scenario_cache_key",
    "schedule_cache_key",
    "workload_fingerprint",
]
