"""Random scenario synthesis for the differential fuzz harness.

The fuzzer (:mod:`repro.diff.fuzz`) needs a stream of seeded, reproducible
:class:`~repro.pipeline.scenario.Scenario` values spanning the full
configuration space — topology × original scheduler × workload/perturbation
× replay mode × slack policy × fault plan.  This module owns that synthesis
(it sits in the pipeline layer because a scenario is a pipeline concept) and
the lossless dict round-trip used to persist minimized fuzz repro artifacts.

Every draw comes from one :class:`~repro.utils.rng.RandomState`, so a
``(seed, index)`` pair always yields the same scenario on every platform —
the property that makes a CI fuzz failure reproducible locally from its
artifact alone.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Optional

from repro.core.slack_policy import POLICY_COMPATIBLE_MODES
from repro.experiments.config import ExperimentScale
from repro.pipeline.scenario import Scenario, stable_seed
from repro.utils.rng import RandomState

#: Topology builders the synthesizer draws from (Internet2 weighted up: it is
#: the paper's primary topology and the cheapest to simulate).
TOPOLOGIES = ("internet2", "internet2", "internet2", "fattree", "rocketfuel")

#: Original schedulers that can record a fuzz schedule — every per-port
#: algorithm the paper uses plus the Table-1 mixture.
ORIGINALS = ("fifo", "fq", "fifo+", "sjf", "srpt", "lifo", "random", "fq+fifo+")

#: Candidate replay modes (LSTF weighted up — it is the universality claim).
REPLAY_MODES = ("lstf", "lstf", "edf", "priority", "omniscient", "fifo", "lstf-preemptive")

#: Offered loads on the reference link.
UTILIZATIONS = (0.3, 0.5, 0.7, 0.9)

#: Workload registry names the synthesizer draws from (the plain paper
#: default weighted up; the rest exercise the perturbation layer).
WORKLOADS_POOL = (
    "paper-default",
    "paper-default",
    "web-search",
    "data-mining",
    "incast-burst",
    "on-off-jamming",
    "heavy-tail-extreme",
    "deadline-tagged",
    "deadline-tagged-tight",
    "adversarial-combo",
)

#: Replay-capable slack policies (``None`` weighted up: most replays use the
#: mode's own initializer).
SLACK_POLICIES_POOL = (None, None, None, "replay", "zero", "deadline", "static-delay")

#: Fault schedules (``None`` weighted up; fault-bearing replays also exercise
#: the accelerated backends' decline-and-fall-back path).
FAULTS_POOL = (None, None, None, "loss-1pct", "loss-5pct", "burst-loss", "outage-short", "jam-bursts")


def random_scenario(
    seed: int, index: int, scale: Optional[ExperimentScale] = None
) -> Scenario:
    """The ``index``-th random scenario of the fuzz stream seeded by ``seed``.

    Draws every dimension from a dedicated
    :class:`~repro.utils.rng.RandomState` seeded by ``stable_seed(seed,
    index)``, so scenarios are independent of each other and of iteration
    order.  Constraint solving is minimal by construction: slack policies
    are only attached when the drawn replay mode is policy-compatible, and
    the transport stays ``"udp"`` (the paper's open-loop replay setting —
    the one the bit-identity contract covers).

    Args:
        seed: Fuzz-stream seed (the CLI's ``--seed``).
        index: Case number within the stream.
        scale: Scale preset (default: smoke, the fastest preset — fuzzing
            wants many small cases over few big ones).
    """
    scale = scale if scale is not None else ExperimentScale.smoke()
    rng = RandomState(stable_seed("fuzz", seed, index))
    topology = rng.choice(TOPOLOGIES)
    replay_mode = rng.choice(REPLAY_MODES)
    slack_policy = (
        rng.choice(SLACK_POLICIES_POOL)
        if replay_mode in POLICY_COMPATIBLE_MODES
        else None
    )
    faults = rng.choice(FAULTS_POOL)
    return Scenario(
        name=f"fuzz-{seed}-{index}",
        scale=scale,
        topology=topology,
        utilization=rng.choice(UTILIZATIONS),
        original=rng.choice(ORIGINALS),
        duration_scale=rng.choice((0.5, 1.0)),
        replay_mode=replay_mode,
        seed_override=rng.randint(0, 2**20),
        workload_name=rng.choice(WORKLOADS_POOL),
        slack_policy=slack_policy,
        faults=faults,
        fault_seed=rng.randint(0, 1000) if faults is not None else 0,
    )


def scenario_to_dict(scenario: Scenario) -> dict:
    """Lossless JSON-serializable form of a scenario (fuzz artifacts).

    The embedded scale is serialized field-by-field, so an artifact rebuilt
    on a machine with different presets still reproduces the exact scenario
    it was minimized on.
    """
    payload = asdict(scenario)
    payload["scale"] = asdict(scenario.scale)
    payload["topology_args"] = [list(pair) for pair in scenario.topology_args]
    return payload


def scenario_from_dict(data: dict) -> Scenario:
    """Inverse of :func:`scenario_to_dict`."""
    payload = dict(data)
    payload["scale"] = ExperimentScale(**payload["scale"])
    payload["topology_args"] = tuple(
        (name, value) for name, value in payload.get("topology_args", ())
    )
    return Scenario(**payload)


def simplified(scenario: Scenario) -> list:
    """Candidate one-step simplifications of ``scenario``, most drastic first.

    The fuzz shrinker walks these greedily: each candidate removes or
    shrinks exactly one dimension, so the minimized repro differs from the
    plain default scenario only in the dimensions that *matter* for the
    divergence.  Returns ``(description, scenario)`` pairs; candidates equal
    to the input are omitted.
    """
    candidates = []
    if scenario.faults is not None:
        candidates.append(
            ("drop fault plan", replace(scenario, faults=None, fault_seed=0))
        )
    if scenario.slack_policy is not None:
        candidates.append(("drop slack policy", replace(scenario, slack_policy=None)))
    if scenario.workload_name != "paper-default":
        candidates.append(
            ("plain workload", replace(scenario, workload_name="paper-default"))
        )
    if scenario.topology != "internet2":
        candidates.append(
            ("internet2 topology", replace(scenario, topology="internet2", topology_args=()))
        )
    if scenario.duration_scale > 0.25:
        candidates.append(
            (
                "halve duration",
                replace(scenario, duration_scale=scenario.duration_scale / 2.0),
            )
        )
    if scenario.utilization > 0.5:
        candidates.append(("utilization 0.5", replace(scenario, utilization=0.5)))
    if scenario.original != "fifo":
        candidates.append(("fifo original", replace(scenario, original="fifo")))
    return candidates
