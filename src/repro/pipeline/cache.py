"""Content-addressed schedule cache: record once, replay everywhere.

The paper's methodology is "record a schedule once, replay it with many
candidate universal schedulers".  The cache below makes that literal across
process and invocation boundaries: a recorded :class:`Schedule` is stored
under a key derived from everything that determines it — the topology spec,
the original scheduler, the workload fingerprint, and the seed — so any cell
of any experiment that needs the same original schedule gets the cached copy
instead of re-running the recording simulation.

Two layers:

* an in-memory dict (always on), so replay modes sharing a schedule within
  one process never touch disk;
* an optional on-disk layer (gzipped JSON-lines via
  :func:`repro.core.schedule.save_schedule`), shared between pool workers and
  across CLI invocations.  Writes are atomic, so workers racing to populate
  the same entry at worst duplicate the recording work — they can never
  corrupt an entry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.core.schedule import (
    MANIFEST_SUFFIX,
    Schedule,
    load_schedule,
    save_schedule,
    save_schedule_sharded,
)
from repro.topology.base import Topology
from repro.traffic.workload import WorkloadSpec

logger = logging.getLogger(__name__)

#: Schedules larger than this many packets are persisted sharded.  High
#: enough that every quick/smoke-tier entry stays a single file (their
#: layout, like their keys, is pinned by the golden fixtures), low enough
#: that scale-tier schedules split into chunks a worker can stream.
DEFAULT_SHARD_PACKETS = 100_000


def distribution_fingerprint(distribution) -> dict:
    """A JSON-serializable fingerprint of a flow-size distribution."""
    params = {}
    for name in sorted(vars(distribution)):
        value = vars(distribution)[name]
        if isinstance(value, (int, float, str, bool)) or value is None:
            params[name] = value
        elif isinstance(value, (list, tuple)):
            params[name] = list(value)
        else:  # pragma: no cover - future distribution types
            params[name] = repr(value)
    return {"kind": type(distribution).__name__, "params": params}


def workload_fingerprint(workload: WorkloadSpec) -> dict:
    """A JSON-serializable fingerprint of everything that shapes a workload.

    Perturbations enter the fingerprint only when present, so the cache keys
    of every pre-existing (unperturbed) scenario are bit-identical to those
    recorded before the perturbation layer existed — warm caches stay warm
    across the refactor (pinned by the golden-key regression test).
    """
    fingerprint = {
        "utilization": workload.utilization,
        "reference_bandwidth_bps": workload.reference_bandwidth_bps,
        "transport": workload.transport,
        "duration": workload.duration,
        "mss": workload.mss,
        "size_distribution": distribution_fingerprint(workload.size_distribution),
    }
    if workload.perturbations:
        fingerprint["perturbations"] = [p.to_dict() for p in workload.perturbations]
    return fingerprint


def schedule_cache_key(
    topology: Topology,
    original: str,
    workload: WorkloadSpec,
    seed: int,
    slack_policy=None,
    slack_mode: str = "replay",
    faults=None,
) -> str:
    """Content hash of (topology, original scheduler, workload, seed[, policy]).

    ``slack_policy`` (a :class:`~repro.core.slack_policy.SlackPolicyDef`, or
    ``None``) enters the hash only when set — exactly like workload
    perturbations — so every policy-less cell's key is bit-identical to the
    keys recorded before the slack-policy subsystem existed (pinned by the
    golden-key regression test), while cells replayed under a heuristic
    policy can never be mistaken for, or collide with, the default replay.
    Only the policy's behavioral fingerprint (kind + params) is hashed —
    renaming or re-describing a policy does not invalidate entries.

    ``slack_mode`` distinguishes the two ways a policy can apply:

    * ``"replay"`` (the default) — the policy stamps *replayed* packets; the
      recorded artifact itself does not depend on it, so two cells differing
      only in policy re-record identical baselines.  That redundancy is the
      deliberate price of keys that identify the cell's full provenance.
      The hashed payload is bit-identical to the pre-``slack_mode`` code.
    * ``"live"`` — the policy stamps packets at send time *during the
      recording*, so the recorded schedule genuinely depends on it; the
      fingerprint gains a ``"mode": "live"`` marker so a live cell can never
      collide with a replay-policy cell of the same kind and parameters.

    ``faults`` (a :class:`repro.faults.FaultPlan`, or ``None``) follows the
    replay-mode slack-policy precedent: the pipeline records fault-free and
    injects faults at replay time only, so the recorded artifact does not
    depend on the plan — but the key identifies the cell's full provenance,
    so a non-empty plan's fingerprint (fault list + fault seed) is hashed
    in.  ``None`` and an *empty* plan contribute nothing, which keeps every
    fault-free key bit-identical to the keys recorded before the fault layer
    existed (pinned by the golden-key regression test).
    """
    payload = {
        "topology": topology.to_dict(),
        "original": str(original),
        "workload": workload_fingerprint(workload),
        "seed": seed,
    }
    if slack_policy is not None:
        fingerprint = slack_policy.fingerprint()
        if slack_mode == "live":
            fingerprint["mode"] = "live"
        payload["slack_policy"] = fingerprint
    if faults is not None:
        fault_fingerprint = faults.fingerprint()
        if fault_fingerprint is not None:
            payload["faults"] = fault_fingerprint
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ScheduleCache:
    """Two-layer (memory + optional disk) cache of recorded schedules.

    Args:
        root: Directory for the on-disk layer, or ``None`` for a purely
            in-memory (per-process) cache.
        memory_entries: Maximum schedules kept in the in-memory layer (LRU
            eviction beyond that).  Paper-scale schedules hold every packet's
            hop vector, so an unbounded memory layer would retain gigabytes
            across a full run; the default comfortably covers cells that
            share one schedule across replay modes.  ``None`` = unbounded.
        shard_packets: Schedules larger than this are persisted as
            ingress-time shards plus a manifest
            (:func:`repro.core.schedule.save_schedule_sharded`), which is
            also the per-shard chunk size.  Pure storage layout — cache
            *keys* never depend on it (pinned by the golden-key test) and
            lookups transparently accept either on-disk form.

    Attributes:
        hits: Number of ``get_or_record`` calls served from memory or disk.
        misses: Number of calls that had to record (i.e. run the original
            simulation).  A warm cache reports ``misses == 0``.
    """

    def __init__(
        self,
        root: Optional[Union[str, os.PathLike]] = None,
        memory_entries: Optional[int] = 8,
        shard_packets: int = DEFAULT_SHARD_PACKETS,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.memory_entries = memory_entries
        if shard_packets < 1:
            raise ValueError(f"shard_packets must be >= 1, got {shard_packets}")
        self.shard_packets = shard_packets
        self._memory: "OrderedDict[str, Schedule]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.corrupt_entries = 0

    def _remember(self, key: str, schedule: Schedule) -> None:
        self._memory[key] = schedule
        self._memory.move_to_end(key)
        if self.memory_entries is not None:
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)

    # ------------------------------------------------------------------ #
    # Key / path helpers
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Optional[Path]:
        """Single-file on-disk location for ``key`` (``None`` for memory-only caches)."""
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}.jsonl.gz"

    def manifest_path_for(self, key: str) -> Optional[Path]:
        """Sharded-form manifest location for ``key`` (``None`` for memory-only caches)."""
        if self.root is None:
            return None
        return self.root / key[:2] / f"{key}{MANIFEST_SUFFIX}"

    def entry_path(self, key: str) -> Optional[Path]:
        """The on-disk path ``key`` would load from, or ``None`` if absent.

        The sharded form wins when both exist (it is only ever written for
        schedules too large to sensibly live in one file); the returned path
        feeds :func:`repro.core.schedule.load_schedule` or
        :func:`~repro.core.schedule.iter_schedule_records` directly.
        """
        for candidate in (self.manifest_path_for(key), self.path_for(key)):
            if candidate is not None and candidate.exists():
                return candidate
        return None

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.entry_path(key) is not None

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------ #
    # The cache protocol
    # ------------------------------------------------------------------ #
    def get_or_record(
        self,
        topology: Topology,
        original: str,
        workload: WorkloadSpec,
        seed: int,
        recorder: Callable[[], Schedule],
        slack_policy=None,
        slack_mode: str = "replay",
        faults=None,
    ) -> Tuple[Schedule, str]:
        """Fetch the schedule for this cell, recording it on first use.

        A corrupt on-disk entry (truncated gzip, undecodable JSON, a packet
        count that does not match its header) never aborts the run: the file
        is quarantined as ``<key>.jsonl.gz.corrupt``, a warning is logged,
        and the entry is re-recorded as if it had never existed.  A cache
        directory that cannot be written at all (read-only, disk full)
        degrades the same way — the quarantine rename and the re-persist
        are both best-effort, and the run continues on the in-memory copy.

        Args:
            topology: Topology spec (part of the key and stored as metadata).
            original: Original scheduler name.
            workload: Workload spec (fingerprinted into the key).
            seed: Workload seed.
            recorder: Zero-argument callable that records and returns the
                schedule; only invoked on a cache miss.
            slack_policy: The cell's slack-policy definition, if any; hashed
                into the key (see :func:`schedule_cache_key`).
            slack_mode: How the policy applies — ``"replay"`` (stamp replayed
                packets) or ``"live"`` (the policy shaped the recording
                itself; keyed separately).
            faults: The cell's :class:`repro.faults.FaultPlan`, if any;
                hashed into the key when non-empty (see
                :func:`schedule_cache_key`).

        Returns:
            ``(schedule, key)``.
        """
        key = schedule_cache_key(
            topology, original, workload, seed, slack_policy, slack_mode, faults
        )
        schedule = self._memory.get(key)
        if schedule is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return schedule, key
        stored = self.entry_path(key)
        if stored is not None:
            try:
                schedule, _ = load_schedule(stored)
            except (OSError, EOFError, ValueError, KeyError) as error:
                self._quarantine(stored, error)
            else:
                self._remember(key, schedule)
                self.hits += 1
                return schedule, key
        schedule = recorder()
        self.misses += 1
        self._remember(key, schedule)
        path = self.path_for(key)
        if path is not None:
            meta = {
                "key": key,
                "original": str(original),
                "seed": seed,
                "workload": workload_fingerprint(workload),
                "topology": topology.to_dict(),
            }
            if slack_policy is not None:
                meta["slack_policy"] = slack_policy.to_dict()
                if slack_mode != "replay":
                    meta["slack_mode"] = slack_mode
            if faults is not None and faults.fingerprint() is not None:
                meta["faults"] = faults.to_dict()
            try:
                if len(schedule) > self.shard_packets:
                    save_schedule_sharded(
                        self.manifest_path_for(key),
                        schedule,
                        meta=meta,
                        shard_packets=self.shard_packets,
                    )
                else:
                    save_schedule(path, schedule, meta=meta)
            except OSError as error:
                # A read-only or full cache directory degrades the disk
                # layer, it must not abort the run: the freshly recorded
                # in-memory schedule is still returned.
                logger.warning(
                    "cannot persist schedule cache entry %s (%s: %s); "
                    "continuing without the on-disk copy",
                    path,
                    type(error).__name__,
                    error,
                )
        return schedule, key

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Move an unreadable cache entry aside so the run can re-record.

        The quarantined copy keeps the original bytes (``*.corrupt`` suffix)
        for post-mortem inspection; a racing worker may have quarantined the
        same entry first, so a missing source file is tolerated.
        """
        self.corrupt_entries += 1
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - lost the quarantine race
            quarantined = None
        logger.warning(
            "corrupt schedule cache entry %s (%s: %s); %s; re-recording",
            path,
            type(error).__name__,
            error,
            f"quarantined to {quarantined}" if quarantined is not None else "already quarantined",
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Hit/miss/corruption counters (misses == original schedules recorded)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_entries": self.corrupt_entries,
        }

    def disk_entries(self) -> int:
        """Number of schedule *entries* currently in the on-disk layer.

        A sharded entry counts once (its manifest), not once per shard file.
        """
        if self.root is None or not self.root.exists():
            return 0
        single = sum(
            1 for path in self.root.glob("*/*.jsonl.gz") if ".shard-" not in path.name
        )
        sharded = sum(1 for _ in self.root.glob(f"*/*{MANIFEST_SUFFIX}"))
        return single + sharded

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        where = str(self.root) if self.root is not None else "memory"
        return f"<ScheduleCache {where} hits={self.hits} misses={self.misses}>"
