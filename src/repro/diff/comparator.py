"""First-divergence schedule comparator.

The whole pipeline is verified by digest equality — golden cache keys,
golden rows, cross-backend bench digests — but a digest mismatch only says
*that* two schedules differ, not *where*.  This module walks two schedules
in canonical ``(ingress_time, packet_id, hop_index)`` order
(:meth:`repro.core.schedule.Schedule.canonical_records`) and halts at the
**first divergent packet**, reporting a field-level diff plus the ordering
context around the divergence.

Invariants (modeled on replay-engine debuggers):

* **First divergence wins** — the walk stops at the earliest canonical
  position where the schedules disagree; later differences are almost
  always cascades of the first one and are deliberately not reported.
* **Comparison is read-only** — neither schedule is mutated, and nothing is
  "healed": a missing packet is a divergence, not something to skip over.
* **Bit-identity is the default** — fields are compared with exact float
  equality (the backends' contract); a ``tolerance`` exists only for
  exploratory comparisons of schedules that never claimed bit-identity.

See ``docs/diff.md`` for the full contract and a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.schedule import PacketRecord, Schedule

#: Default number of preceding packets reported per side at the divergent port.
DEFAULT_CONTEXT = 8

#: Record-level fields compared before the per-hop walk, in comparison order.
#: Identity fields lead (a packet that changed size or route diverged before
#: any timing did), then ingress, then the hop timings, then egress.
_IDENTITY_FIELDS = ("src", "dst", "size_bytes", "flow_id", "flow_size_bytes", "deadline")


@dataclass(frozen=True)
class FieldDiff:
    """One divergent field of the first divergent packet.

    Attributes:
        field: Dotted field path (``"output_time"``,
            ``"hops[2].departure_time"``, ...).
        a: The field's value in schedule A (``None`` = absent).
        b: The field's value in schedule B (``None`` = absent).
    """

    field: str
    a: object
    b: object

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {"field": self.field, "a": self.a, "b": self.b}

    def describe(self) -> str:
        """One-line human rendering, with a float delta when meaningful."""
        if isinstance(self.a, float) and isinstance(self.b, float):
            return f"{self.field}: a={self.a!r} b={self.b!r} (delta={self.b - self.a:+.3e})"
        return f"{self.field}: a={self.a!r} b={self.b!r}"


@dataclass(frozen=True)
class PortNeighbor:
    """One entry of the per-port ordering context around a divergence.

    Attributes:
        packet_id: The neighboring packet.
        flow_id: Its flow.
        arrival_time: When it arrived at the divergent port.
        start_service_time: When the port started serving it (its position
            in the port's service order — the context is sorted by this).
        departure_time: When its last bit left the port.
    """

    packet_id: int
    flow_id: int
    arrival_time: float
    start_service_time: Optional[float]
    departure_time: Optional[float]

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "packet_id": self.packet_id,
            "flow_id": self.flow_id,
            "arrival_time": self.arrival_time,
            "start_service_time": self.start_service_time,
            "departure_time": self.departure_time,
        }

    def describe(self) -> str:
        """Compact ``pkt@service_time`` rendering for the report."""
        when = self.start_service_time
        when = when if when is not None else self.arrival_time
        return f"{self.packet_id}@{when!r}"


@dataclass
class Divergence:
    """The first divergent packet of a schedule comparison.

    Attributes:
        packet_id: The divergent packet.
        flow_id: Its flow (from whichever side has the record).
        index: Position of the packet in the canonical walk (0-based, over
            the union of both schedules' packet ids).
        kind: ``"missing"`` (the packet exists on one side only — a drop)
            or ``"fields"`` (present on both sides with differing fields).
        missing_in: ``"a"`` or ``"b"`` for ``kind="missing"``, else ``None``.
        fields: Divergent fields in comparison order (``kind="fields"``).
        port: Node at which the divergence manifests — the divergent hop's
            node, or the packet's last hop for egress-only diffs (``None``
            when neither side recorded hops).
        context_a: Up to ``context`` packets served at :attr:`port` before
            the divergent packet in schedule A, in service order.
        context_b: Same for schedule B.
        packets_a: Total packets in schedule A.
        packets_b: Total packets in schedule B.
        label_a: Display name of side A (e.g. a file name or backend name).
        label_b: Display name of side B.
    """

    packet_id: int
    flow_id: int
    index: int
    kind: str
    missing_in: Optional[str] = None
    fields: List[FieldDiff] = field(default_factory=list)
    port: Optional[str] = None
    context_a: List[PortNeighbor] = field(default_factory=list)
    context_b: List[PortNeighbor] = field(default_factory=list)
    packets_a: int = 0
    packets_b: int = 0
    label_a: str = "a"
    label_b: str = "b"

    def to_dict(self) -> dict:
        """JSON-serializable form (the CLI's ``--json`` payload)."""
        return {
            "packet_id": self.packet_id,
            "flow_id": self.flow_id,
            "index": self.index,
            "kind": self.kind,
            "missing_in": self.missing_in,
            "fields": [diff.to_dict() for diff in self.fields],
            "port": self.port,
            "context_a": [entry.to_dict() for entry in self.context_a],
            "context_b": [entry.to_dict() for entry in self.context_b],
            "packets_a": self.packets_a,
            "packets_b": self.packets_b,
            "label_a": self.label_a,
            "label_b": self.label_b,
        }

    def format(self) -> str:
        """Multi-line human-readable divergence report."""
        lines = [
            f"first divergence: packet {self.packet_id} (flow {self.flow_id}), "
            f"canonical index {self.index} "
            f"[{self.label_a}: {self.packets_a} packets, "
            f"{self.label_b}: {self.packets_b} packets]"
        ]
        if self.kind == "missing":
            present = self.label_b if self.missing_in == "a" else self.label_a
            absent = self.label_a if self.missing_in == "a" else self.label_b
            lines.append(
                f"  packet present in {present!r} but missing from {absent!r} "
                "(dropped or never delivered)"
            )
        else:
            lines.append(f"  {len(self.fields)} divergent field(s):")
            for diff in self.fields:
                lines.append(f"    {diff.describe()}")
        if self.port is not None:
            lines.append(f"  divergent port: {self.port}")
            for label, context in (
                (self.label_a, self.context_a),
                (self.label_b, self.context_b),
            ):
                if context:
                    served = "  ".join(entry.describe() for entry in context)
                    lines.append(
                        f"  last {len(context)} served at {self.port} in {label!r}: {served}"
                    )
                else:
                    lines.append(f"  no earlier service at {self.port} in {label!r}")
        return "\n".join(lines)


def _values_differ(a: object, b: object, tolerance: float) -> bool:
    """Exact inequality, with an optional float tolerance."""
    if a is None or b is None:
        return a is not b
    if tolerance > 0.0 and isinstance(a, float) and isinstance(b, float):
        return abs(a - b) > tolerance
    return a != b


def _record_field_diffs(
    rec_a: PacketRecord, rec_b: PacketRecord, tolerance: float
) -> List[FieldDiff]:
    """Every divergent field of one packet, in canonical comparison order."""
    diffs: List[FieldDiff] = []
    for name in _IDENTITY_FIELDS:
        value_a, value_b = getattr(rec_a, name), getattr(rec_b, name)
        if _values_differ(value_a, value_b, tolerance):
            diffs.append(FieldDiff(name, value_a, value_b))
    if list(rec_a.path) != list(rec_b.path):
        diffs.append(FieldDiff("path", list(rec_a.path), list(rec_b.path)))
    if _values_differ(rec_a.ingress_time, rec_b.ingress_time, tolerance):
        diffs.append(FieldDiff("ingress_time", rec_a.ingress_time, rec_b.ingress_time))
    for hop_index in range(max(len(rec_a.hops), len(rec_b.hops))):
        hop_a = rec_a.hops[hop_index] if hop_index < len(rec_a.hops) else None
        hop_b = rec_b.hops[hop_index] if hop_index < len(rec_b.hops) else None
        if hop_a is None or hop_b is None:
            diffs.append(
                FieldDiff(
                    f"hops[{hop_index}]",
                    hop_a.to_list() if hop_a is not None else None,
                    hop_b.to_list() if hop_b is not None else None,
                )
            )
            continue
        for attr in ("node", "arrival_time", "start_service_time", "departure_time"):
            value_a, value_b = getattr(hop_a, attr), getattr(hop_b, attr)
            if _values_differ(value_a, value_b, tolerance):
                diffs.append(FieldDiff(f"hops[{hop_index}].{attr}", value_a, value_b))
    if _values_differ(rec_a.output_time, rec_b.output_time, tolerance):
        diffs.append(FieldDiff("output_time", rec_a.output_time, rec_b.output_time))
    return diffs


def _divergent_port(
    diffs: List[FieldDiff], rec_a: Optional[PacketRecord], rec_b: Optional[PacketRecord]
) -> Optional[str]:
    """The node at which the first divergent field manifests.

    A hop-level diff names its own node; anything else (identity fields,
    ingress, egress) is attributed to the packet's last recorded hop — the
    port whose service completed the packet.
    """
    record = rec_a if rec_a is not None and rec_a.hops else rec_b
    for diff in diffs:
        if diff.field.startswith("hops["):
            hop_index = int(diff.field[len("hops[") :].split("]", 1)[0])
            for candidate in (rec_a, rec_b):
                if candidate is not None and hop_index < len(candidate.hops):
                    return candidate.hops[hop_index].node
    if record is not None and record.hops:
        return record.hops[-1].node
    return None


def _service_time_at(record: PacketRecord, node: str) -> Optional[float]:
    """When ``record``'s packet was served at ``node`` (first visit)."""
    for hop in record.hops:
        if hop.node == node:
            if hop.start_service_time is not None:
                return hop.start_service_time
            return hop.arrival_time
    return None


def _port_context(
    schedule: Schedule,
    node: str,
    before: Optional[float],
    exclude_packet: int,
    limit: int,
) -> List[PortNeighbor]:
    """The last ``limit`` packets served at ``node`` before ``before``.

    ``before=None`` (the divergent packet never reached the port on this
    side) reports the port's final ``limit`` packets instead, which is what
    a drop investigation wants to see.
    """
    entries: List[Tuple[float, int, PortNeighbor]] = []
    for record in schedule.canonical_records():
        if record.packet_id == exclude_packet:
            continue
        for hop in record.hops:
            if hop.node == node:
                when = (
                    hop.start_service_time
                    if hop.start_service_time is not None
                    else hop.arrival_time
                )
                if before is None or when < before:
                    entries.append(
                        (
                            when,
                            record.packet_id,
                            PortNeighbor(
                                packet_id=record.packet_id,
                                flow_id=record.flow_id,
                                arrival_time=hop.arrival_time,
                                start_service_time=hop.start_service_time,
                                departure_time=hop.departure_time,
                            ),
                        )
                    )
                break
    entries.sort(key=lambda item: (item[0], item[1]))
    return [neighbor for _, _, neighbor in entries[-limit:]]


def first_divergence(
    a: Schedule,
    b: Schedule,
    context: int = DEFAULT_CONTEXT,
    tolerance: float = 0.0,
    label_a: str = "a",
    label_b: str = "b",
) -> Optional[Divergence]:
    """Compare two schedules; return the first divergent packet, or ``None``.

    The walk visits the union of both schedules' packet ids in canonical
    ``(ingress_time, packet_id)`` order (a packet missing on one side orders
    by the side that has it) and, within each packet, compares fields in
    canonical order: identity fields, path, ingress time, per-hop timings by
    hop index, output time.  The first packet with any divergent field — or
    present on only one side — is reported with *all* of its divergent
    fields, the port the first of them manifests at, and the ``context``
    packets that preceded it in each schedule's service order at that port.

    Args:
        a: Left schedule.
        b: Right schedule.
        context: Neighbors reported per side at the divergent port.
        tolerance: Absolute float tolerance (``0.0`` = bit-exact, the
            backends' contract).
        label_a: Display name for ``a`` in the report.
        label_b: Display name for ``b`` in the report.

    Returns:
        ``None`` when the schedules match under ``tolerance``, else the
        :class:`Divergence` at the first mismatch (first divergence wins —
        everything after it is unreported by design).
    """

    def _order_key(packet_id: int) -> Tuple[float, int]:
        record = a.get(packet_id)
        if record is None:
            record = b.record(packet_id)
        return (record.ingress_time, packet_id)

    union = sorted(set(a.packet_ids()) | set(b.packet_ids()), key=_order_key)
    for index, packet_id in enumerate(union):
        rec_a, rec_b = a.get(packet_id), b.get(packet_id)
        if rec_a is None or rec_b is None:
            present = rec_b if rec_a is None else rec_a
            port = _divergent_port([], rec_a, rec_b)
            before_a = _service_time_at(rec_a, port) if rec_a and port else None
            before_b = _service_time_at(rec_b, port) if rec_b and port else None
            return Divergence(
                packet_id=packet_id,
                flow_id=present.flow_id,
                index=index,
                kind="missing",
                missing_in="a" if rec_a is None else "b",
                port=port,
                context_a=_port_context(a, port, before_a, packet_id, context)
                if port
                else [],
                context_b=_port_context(b, port, before_b, packet_id, context)
                if port
                else [],
                packets_a=len(a),
                packets_b=len(b),
                label_a=label_a,
                label_b=label_b,
            )
        diffs = _record_field_diffs(rec_a, rec_b, tolerance)
        if diffs:
            port = _divergent_port(diffs, rec_a, rec_b)
            before_a = _service_time_at(rec_a, port) if port else None
            before_b = _service_time_at(rec_b, port) if port else None
            return Divergence(
                packet_id=packet_id,
                flow_id=rec_a.flow_id,
                index=index,
                kind="fields",
                fields=diffs,
                port=port,
                context_a=_port_context(a, port, before_a, packet_id, context)
                if port
                else [],
                context_b=_port_context(b, port, before_b, packet_id, context)
                if port
                else [],
                packets_a=len(a),
                packets_b=len(b),
                label_a=label_a,
                label_b=label_b,
            )
    return None
