"""Cross-backend differential fuzz harness.

The bit-identity contract says every backend replays every schedule
identically, and a live deployment of a stateless slack policy matches its
replay twin.  The golden fixtures pin that contract on a handful of curated
scenarios; this module hammers it with *seeded random* scenarios
(:mod:`repro.pipeline.synth`) and verifies every comparison with the
first-divergence comparator (:mod:`repro.diff.comparator`), so a contract
break surfaces as a debuggable field-level report instead of a digest
mismatch.

Three comparison kinds:

* ``twin`` — the same schedule replayed twice on the reference engine
  (run-over-run determinism);
* ``backend-pair`` — reference engine versus each other available backend
  (the cross-backend bit-identity contract; fault-bearing scenarios also
  exercise the accelerated backends' decline-and-fall-back path);
* ``live-replay`` — a live LSTF deployment under a stateless slack policy
  versus replaying the recorded baseline under the same policy (the paper's
  replay-methodology claim, fuzzed).

On a divergence the harness **shrinks** the scenario greedily
(:func:`repro.pipeline.synth.simplified`) to a minimal still-diverging
configuration and persists it as a JSON artifact that ``python -m repro
diff --case <artifact>`` re-runs verbatim.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.core.replay import replay_pair, replay_schedule
from repro.core.schedule import Schedule
from repro.diff.comparator import DEFAULT_CONTEXT, Divergence, first_divergence
from repro.experiments.config import ExperimentScale
from repro.pipeline.scenario import Scenario
from repro.pipeline.synth import (
    random_scenario,
    scenario_from_dict,
    scenario_to_dict,
    simplified,
)

#: Format tag of persisted fuzz-case artifacts.
FUZZ_ARTIFACT_FORMAT = "repro-fuzz-case/1"

#: Stateless policies eligible for the live-vs-replay twin (a stateful or
#: queue-reactive policy would legitimately diverge from its replay).
LIVE_TWIN_POLICIES = ("zero", "static-delay")

#: Every fourth fuzz case is a live-vs-replay twin.
LIVE_TWIN_STRIDE = 4


@dataclass(frozen=True)
class ComparisonSpec:
    """One comparison a fuzz case runs.

    Attributes:
        kind: ``"twin"``, ``"backend-pair"``, or ``"live-replay"``.
        backend_a: Left replay engine (``"twin"``/``"backend-pair"``).
        backend_b: Right replay engine.
    """

    kind: str
    backend_a: str = "python"
    backend_b: str = "python"

    def to_dict(self) -> dict:
        """JSON-serializable form (persisted in artifacts)."""
        return {"kind": self.kind, "backend_a": self.backend_a, "backend_b": self.backend_b}

    @classmethod
    def from_dict(cls, data: dict) -> "ComparisonSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            backend_a=data.get("backend_a", "python"),
            backend_b=data.get("backend_b", "python"),
        )

    def describe(self) -> str:
        """Human-readable label for logs and reports."""
        if self.kind == "live-replay":
            return "live-vs-replay twin"
        return f"{self.kind}: {self.backend_a} vs {self.backend_b}"


def _record(scenario: Scenario, topology, workload) -> Schedule:
    """Record ``scenario``'s schedule with the global id counters reset."""
    from repro.pipeline.experiment import record_scenario_schedule
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    reset_packet_ids()
    reset_flow_ids()
    return record_scenario_schedule(scenario, topology, workload)


def run_comparison(
    scenario: Scenario,
    spec: ComparisonSpec,
    context: int = DEFAULT_CONTEXT,
) -> Optional[Divergence]:
    """Run one comparison; return its first divergence, or ``None``.

    ``"twin"`` and ``"backend-pair"`` record the scenario once and replay it
    through :func:`repro.core.replay.replay_pair`; ``"live-replay"`` records
    a *live* LSTF deployment of the scenario's (stateless) slack policy and
    compares it against replaying the scenario's recorded baseline under
    the same policy.  All comparisons are read-only: nothing is cached, and
    a divergence never mutates either schedule.
    """
    topology = scenario.build_topology()
    workload = scenario.workload()
    if spec.kind == "live-replay":
        policy = scenario.slack_policy_def()
        if policy is None or scenario.slack_policy not in LIVE_TWIN_POLICIES:
            raise ValueError(
                f"live-replay comparison needs a stateless policy from "
                f"{LIVE_TWIN_POLICIES}; scenario carries {scenario.slack_policy!r}"
            )
        baseline = _record(replace(scenario, slack_policy=None), topology, workload)
        from repro.sim.flow import reset_flow_ids
        from repro.sim.packet import reset_packet_ids

        reset_packet_ids()
        reset_flow_ids()
        replayed = replay_schedule(
            topology,
            baseline,
            mode="lstf",
            initializer=policy.build_initializer(),
            backend="python",
        )
        live = _record(
            replace(scenario, original="lstf", slack_mode="live"), topology, workload
        )
        return first_divergence(
            replayed,
            live,
            context=context,
            label_a=f"replay:lstf+{policy.name}",
            label_b=f"live:lstf+{policy.name}",
        )
    schedule = _record(scenario, topology, workload)
    initializer = None
    policy = scenario.slack_policy_def()
    if policy is not None and scenario.slack_mode == "replay":
        initializer = policy.build_initializer()
    replayed_a, replayed_b = replay_pair(
        topology,
        schedule,
        spec.backend_a,
        spec.backend_b,
        mode=scenario.replay_mode,
        initializer=initializer,
        faults=scenario.fault_plan(),
    )
    label_b = spec.backend_b if spec.kind != "twin" else f"{spec.backend_b}#2"
    return first_divergence(
        replayed_a, replayed_b, context=context, label_a=spec.backend_a, label_b=label_b
    )


def case_plan(
    seed: int,
    index: int,
    backends: List[str],
    scale: Optional[ExperimentScale] = None,
) -> Tuple[Scenario, List[ComparisonSpec]]:
    """The ``index``-th fuzz case: a scenario plus the comparisons to run.

    Every :data:`LIVE_TWIN_STRIDE`-th case is coerced into a live-vs-replay
    twin (LSTF, a stateless policy, no faults); every other case runs the
    reference determinism twin plus one ``backend-pair`` comparison per
    available non-reference backend.
    """
    scenario = random_scenario(seed, index, scale)
    if index % LIVE_TWIN_STRIDE == LIVE_TWIN_STRIDE - 1:
        policy = LIVE_TWIN_POLICIES[(index // LIVE_TWIN_STRIDE) % len(LIVE_TWIN_POLICIES)]
        scenario = replace(
            scenario,
            replay_mode="lstf",
            slack_policy=policy,
            slack_mode="replay",
            faults=None,
            fault_seed=0,
        )
        return scenario, [ComparisonSpec("live-replay")]
    specs = [ComparisonSpec("twin", "python", "python")]
    specs += [
        ComparisonSpec("backend-pair", "python", name)
        for name in backends
        if name != "python"
    ]
    return scenario, specs


def shrink_case(
    scenario: Scenario,
    spec: ComparisonSpec,
    context: int = DEFAULT_CONTEXT,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[Scenario, Divergence, List[str]]:
    """Greedily minimize a diverging scenario.

    Repeatedly tries the one-step simplifications of
    :func:`repro.pipeline.synth.simplified` (most drastic first) and keeps
    any candidate that still diverges, until no candidate does.  The
    returned divergence is the minimized scenario's own (re-verified, not
    carried over from the original).

    Returns:
        ``(minimal_scenario, divergence, steps)`` where ``steps`` describes
        each accepted simplification in order.
    """
    divergence = run_comparison(scenario, spec, context)
    if divergence is None:
        raise ValueError("shrink_case called on a scenario that does not diverge")
    steps: List[str] = []
    improved = True
    while improved:
        improved = False
        for description, candidate in simplified(scenario):
            if spec.kind == "live-replay" and (
                candidate.slack_policy not in LIVE_TWIN_POLICIES
                or candidate.replay_mode != "lstf"
            ):
                continue
            candidate_divergence = run_comparison(candidate, spec, context)
            if candidate_divergence is not None:
                scenario = candidate
                divergence = candidate_divergence
                steps.append(description)
                if log is not None:
                    log(f"  shrink: {description} still diverges")
                improved = True
                break
    return scenario, divergence, steps


@dataclass
class FuzzFailure:
    """One minimized diverging fuzz case."""

    index: int
    scenario: Scenario
    comparison: ComparisonSpec
    divergence: Divergence
    shrink_steps: List[str] = field(default_factory=list)
    artifact_path: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-serializable form (embedded in the report payload)."""
        return {
            "index": self.index,
            "scenario": scenario_to_dict(self.scenario),
            "comparison": self.comparison.to_dict(),
            "divergence": self.divergence.to_dict(),
            "shrink_steps": list(self.shrink_steps),
            "artifact_path": self.artifact_path,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz sweep."""

    budget: int
    seed: int
    scale_label: str
    backends: List[str]
    cases: int = 0
    comparisons: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the sweep completed without any divergence."""
        return not self.failures

    def to_dict(self) -> dict:
        """JSON-serializable form (the CLI's ``--json`` payload)."""
        return {
            "format": "repro-fuzz-report/1",
            "budget": self.budget,
            "seed": self.seed,
            "scale": self.scale_label,
            "backends": list(self.backends),
            "cases": self.cases,
            "comparisons": self.comparisons,
            "divergences": len(self.failures),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def format(self) -> str:
        """Human-readable sweep summary (plus each failure's report)."""
        lines = [
            f"fuzz: {self.cases} case(s), {self.comparisons} comparison(s) at "
            f"{self.scale_label} scale, seed {self.seed}, backends: "
            f"{', '.join(self.backends)}"
        ]
        if self.ok:
            lines.append("no divergence found: all comparisons bit-identical")
        for failure in self.failures:
            lines.append(
                f"DIVERGENCE in case {failure.index} "
                f"({failure.comparison.describe()}), minimized via "
                f"[{', '.join(failure.shrink_steps) or 'no shrink'}]"
                + (
                    f", artifact: {failure.artifact_path}"
                    if failure.artifact_path
                    else ""
                )
            )
            lines.append(failure.divergence.format())
        return "\n".join(lines)


def write_artifact(
    directory: str, seed: int, failure: FuzzFailure
) -> str:
    """Persist one minimized failure as a re-runnable JSON artifact.

    The artifact is self-contained: it embeds the full scenario (scale
    included) and the comparison spec, so ``python -m repro diff --case
    <path>`` reproduces the divergence with no other state.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"case-{seed}-{failure.index}.json")
    payload = {
        "format": FUZZ_ARTIFACT_FORMAT,
        "seed": seed,
        "index": failure.index,
        "scenario": scenario_to_dict(failure.scenario),
        "comparison": failure.comparison.to_dict(),
        "shrink_steps": list(failure.shrink_steps),
        "divergence": failure.divergence.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, default=str)
        stream.write("\n")
    return path


def load_case(path: str) -> Tuple[Scenario, ComparisonSpec]:
    """Load a fuzz-case artifact back into ``(scenario, comparison)``.

    Raises:
        ValueError: if the file is not a :data:`FUZZ_ARTIFACT_FORMAT`
            payload (a schedule file, say, or a report).
    """
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    if payload.get("format") != FUZZ_ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a {FUZZ_ARTIFACT_FORMAT} artifact "
            f"(format={payload.get('format')!r})"
        )
    return (
        scenario_from_dict(payload["scenario"]),
        ComparisonSpec.from_dict(payload["comparison"]),
    )


def run_fuzz(
    budget: int = 25,
    seed: int = 1,
    scale: Optional[ExperimentScale] = None,
    backends: Optional[List[str]] = None,
    context: int = DEFAULT_CONTEXT,
    artifact_dir: Optional[str] = "fuzz-artifacts",
    shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run a differential fuzz sweep of ``budget`` seeded cases.

    Each case records one random scenario and asserts bit-identity across
    its planned comparisons (see :func:`case_plan`); the first divergence of
    a case stops that case (first divergence wins), is optionally shrunk to
    a minimal reproducer, persisted under ``artifact_dir``, and the sweep
    *continues* — one failing case must not hide another.

    Args:
        budget: Number of cases.
        seed: Stream seed; the same ``(seed, budget, backends)`` sweep is
            identical everywhere.
        scale: Scale preset (default: smoke).
        backends: Replay engines to pair against the reference (default:
            every available backend,
            :func:`repro.sim.backend.available_backend_names`).
        context: Neighbors per side in divergence reports.
        artifact_dir: Where minimized repro artifacts are written (``None``
            disables persistence).
        shrink: Whether to minimize failing scenarios before persisting.
        log: Progress sink (e.g. ``print``); ``None`` is silent.
    """
    from repro.sim.backend import available_backend_names

    scale = scale if scale is not None else ExperimentScale.smoke()
    if backends is None:
        backends = available_backend_names()
    report = FuzzReport(
        budget=budget, seed=seed, scale_label=scale.label, backends=list(backends)
    )
    for index in range(budget):
        scenario, specs = case_plan(seed, index, backends, scale)
        report.cases += 1
        if log is not None:
            log(
                f"case {index}: {scenario.topology}/{scenario.original}"
                f"@{scenario.utilization:g} mode={scenario.replay_mode} "
                f"workload={scenario.workload_name} "
                f"policy={scenario.slack_policy or '-'} "
                f"faults={scenario.faults or '-'} "
                f"({len(specs)} comparison(s))"
            )
        for spec in specs:
            divergence = run_comparison(scenario, spec, context)
            report.comparisons += 1
            if divergence is None:
                continue
            if log is not None:
                log(f"  DIVERGENCE ({spec.describe()}); shrinking...")
            steps: List[str] = []
            minimal = scenario
            if shrink:
                minimal, divergence, steps = shrink_case(
                    scenario, spec, context, log=log
                )
            failure = FuzzFailure(
                index=index,
                scenario=minimal,
                comparison=spec,
                divergence=divergence,
                shrink_steps=steps,
            )
            if artifact_dir is not None:
                failure.artifact_path = write_artifact(artifact_dir, seed, failure)
            report.failures.append(failure)
            break  # first divergence wins for this case; move on
    return report
