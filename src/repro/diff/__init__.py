"""First-divergence schedule comparison and differential fuzzing.

``repro.diff`` is the debugging layer for the bit-identity contract: when
two schedules that should be identical are not, it answers *which packet
diverged first, in which field, on which port, and in what company* —
instead of a bare digest mismatch.

Two halves:

* :mod:`repro.diff.comparator` — the deterministic comparator.
  :func:`first_divergence` walks two schedules in canonical
  ``(ingress_time, packet_id)`` order and stops at the first packet whose
  record differs, reporting field-level diffs plus the K packets that
  preceded it on the divergent port in each schedule.
* :mod:`repro.diff.fuzz` — the differential fuzz harness.
  :func:`run_fuzz` sweeps seeded random scenarios through every available
  backend pair plus live-vs-replay twins, asserts bit-identity with the
  comparator, and shrinks any failure to a minimal JSON artifact that
  ``python -m repro diff --case`` re-runs.

Exposed at the CLI as ``python -m repro diff`` and ``python -m repro
fuzz``; see ``docs/diff.md``.
"""

from repro.diff.comparator import (
    DEFAULT_CONTEXT,
    Divergence,
    FieldDiff,
    PortNeighbor,
    first_divergence,
)
from repro.diff.fuzz import (
    FUZZ_ARTIFACT_FORMAT,
    ComparisonSpec,
    FuzzFailure,
    FuzzReport,
    load_case,
    run_comparison,
    run_fuzz,
    shrink_case,
    write_artifact,
)

__all__ = [
    "DEFAULT_CONTEXT",
    "Divergence",
    "FieldDiff",
    "PortNeighbor",
    "first_divergence",
    "FUZZ_ARTIFACT_FORMAT",
    "ComparisonSpec",
    "FuzzFailure",
    "FuzzReport",
    "load_case",
    "run_comparison",
    "run_fuzz",
    "shrink_case",
    "write_artifact",
]
