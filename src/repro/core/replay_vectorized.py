"""The ``"vectorized"`` replay backend: batch setup + flat event loop.

Replay is the pipeline's hot path — one record run feeds many replay cells —
and everything a replay needs is known before the first event fires:
``core/replay.py`` already sorts records by ingress time, routes are pinned
(source routing), buffers are infinite, and the candidate schedulers' keys
are either static per hop (EDF, priority, omniscient) or an affine function
of one dynamic per-packet value (LSTF slack).  This backend exploits that:

1. **Setup** (here): build the network once (for link parameters and
   routing-independent checks), flatten every packet-hop into arrays, and
   compute per-hop transmission times vectorized in the exact
   ``bytes * 8 / bw`` float form so every derived timestamp is bit-identical
   to the OO engine's.  The shipped header initializers have exact batch
   equivalents (same float expressions, same fold order for ``tmin``);
   an unrecognized initializer falls back to running the real initializer
   on real :class:`Packet` objects, so custom/slack-policy initializers
   behave exactly as on the python backend.
2. **Run** (:func:`repro.sim.vectorized.run_flat_replay`): a flat event loop
   over those arrays that mirrors the OO engine's event choreography
   tuple-for-tuple; see that module's docstring for the determinism
   argument.

The backend declines configurations outside the fast path — preemptive LSTF,
finite buffers, unknown modes — and :func:`repro.core.replay.replay_schedule`
then falls back to the ``"python"`` reference backend, so callers never see a
behaviour difference, only a speed difference.

Header initializers must be pure functions of ``(record, network)`` (every
shipped initializer is): they are evaluated upfront here, not interleaved
with the simulation as on the python backend.

numpy is this backend's only dependency; it is declared as the
``[vectorized]`` extra in ``pyproject.toml`` and its absence surfaces as a
:class:`~repro.pipeline.scenario.PipelineConfigError` (CLI exit 2) the
moment the backend is explicitly selected.
"""

from __future__ import annotations

import gc
import math
import weakref
from functools import reduce as _reduce
from operator import add as _add
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.replay import replay_initializer, replay_scheduler_factory
from repro.core.schedule import HopTiming, PacketRecord, Schedule
from repro.core.slack import (
    BlackBoxSlackInitializer,
    DeadlineSlackInitializer,
    OmniscientInitializer,
    OutputTimePriorityInitializer,
    ReplayInitializer,
    StaticDelaySlackInitializer,
    ZeroSlackInitializer,
)
from repro.sim.backend import SimBackend, register_backend
from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketType
from repro.sim.tracer import Tracer
from repro.sim.vectorized import run_flat_replay
from repro.topology.base import Topology


def _config_error(message: str) -> Exception:
    from repro.pipeline.scenario import PipelineConfigError

    return PipelineConfigError(message)


#: Per-schedule flattening cache.  The flat view below depends only on the
#: schedule's records and the topology's link parameters — not on the replay
#: mode or initializer — and the pipeline's whole shape is record once,
#: replay many (one recorded schedule drives every candidate mode and
#: replicate), so the flattening is reused across replays of the same
#: schedule.  Keys are weak: a dropped schedule drops its arrays.  Entries
#: are validated against ``Schedule._version`` (bumped on every ``add``) and
#: the freshly derived link parameters, so a hit is exact, never heuristic.
_FLATTEN_CACHE: "weakref.WeakKeyDictionary[Schedule, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _flatten(topology: Topology, schedule: Schedule) -> tuple:
    """Mode-independent flat view of ``(topology, schedule)``.

    Returns ``(records, ingress, off, hop_pkt, hop_port, hop_tx, hop_prop,
    hop_sum, num_ports)``; see :meth:`VectorizedBackend.replay` for the
    meaning of each array.  All returned arrays are treated as read-only by
    the callers (the kernel writes only into per-call output arrays), which
    is what makes caching them sound.
    """
    np = _np
    # ---- link parameters straight from the declarative specs ----
    # The flat loop needs only per-hop (bandwidth, propagation); the specs
    # carry exactly the floats ``topology.build`` would hand the Link
    # objects, so skipping the build (hosts, ports, per-port scheduler
    # instances — none of which the loop touches) changes no output bit
    # while removing the dominant fixed cost on small cells.
    link_params: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for spec in topology.links:
        params = (spec.bandwidth_bps, spec.propagation_delay)
        link_params[(spec.a, spec.b)] = params
        link_params[(spec.b, spec.a)] = params

    cached = _FLATTEN_CACHE.get(schedule)
    if cached is not None:
        version, count, params, flat = cached
        if (
            version == schedule._version
            and count == len(schedule)
            and params == link_params
        ):
            return flat

    records = schedule.records()

    # ---- flatten packet-hops: ports, delays (vectorized), offsets ----
    # Replay traffic is flow-structured, so routes repeat heavily; the
    # per-route port-id cache turns per-hop dict/link lookups into one
    # tuple lookup per packet.
    port_ids: Dict[Tuple[str, str], int] = {}
    route_pids: Dict[Tuple[str, ...], List[int]] = {}
    bandwidths: List[float] = []
    propagations: List[float] = []
    hop_pkt: List[int] = []
    hop_port: List[int] = []
    off: List[int] = [0]
    total = 0
    for j, record in enumerate(records):
        route_key = tuple(record.path)
        pids = route_pids.get(route_key)
        if pids is None:
            pids = []
            for k in range(len(route_key) - 1):
                hop = (route_key[k], route_key[k + 1])
                pid = port_ids.get(hop)
                if pid is None:
                    try:
                        bw, prop = link_params[hop]
                    except KeyError:
                        raise ValueError(
                            f"replayed path of packet {record.packet_id} "
                            f"crosses {hop[0]!r}->{hop[1]!r}, which is not "
                            f"a link of topology {topology.name!r}"
                        ) from None
                    pid = len(bandwidths)
                    port_ids[hop] = pid
                    bandwidths.append(bw)
                    propagations.append(prop)
                pids.append(pid)
            route_pids[route_key] = pids
        hop_port.extend(pids)
        hop_pkt.extend([j] * len(pids))
        total += len(pids)
        off.append(total)

    sizes = np.array([r.size_bytes for r in records], dtype=np.float64)
    hop_port_arr = np.array(hop_port, dtype=np.intp)
    counts = np.diff(np.array(off, dtype=np.intp))
    bw_arr = np.array(bandwidths, dtype=np.float64)
    prop_arr = np.array(propagations, dtype=np.float64)
    # Exactly Link.transmission_delay: ``size_bytes * 8 / bandwidth_bps``
    # (IEEE-754 doubles either way, so the batch form is bit-identical).
    hop_tx_arr = (np.repeat(sizes, counts) * 8) / bw_arr[hop_port_arr]
    hop_tx = hop_tx_arr.tolist()
    hop_prop_arr = prop_arr[hop_port_arr]
    hop_prop = hop_prop_arr.tolist()
    # Per-hop (tx + prop): elementwise, so each sum is the same float the
    # OO code computes; folds downstream then add them in the same order.
    hop_sum = (hop_tx_arr + hop_prop_arr).tolist()
    ingress = [r.ingress_time for r in records]

    flat = (
        records,
        ingress,
        off,
        hop_pkt,
        hop_port,
        hop_tx,
        hop_prop,
        hop_sum,
        len(bandwidths),
    )
    _FLATTEN_CACHE[schedule] = (schedule._version, len(schedule), link_params, flat)
    return flat


class VectorizedBackend(SimBackend):
    """Array-based replay engine; bit-identical to ``"python"``, much faster."""

    name = "vectorized"
    replay_note = (
        "replay fast path (lstf/edf/priority/omniscient, infinite buffers); "
        "numpy batch precompute + pure-python flat event loop"
    )

    #: Replay modes with a flat-loop key model.  ``lstf-preemptive`` is
    #: excluded: preemption re-opens in-flight transmissions, which the flat
    #: loop does not model (the python backend handles it).
    SUPPORTED_MODES = frozenset({"lstf", "edf", "priority", "omniscient"})

    def _kernel(self, *args, **kwargs):
        """The flat event loop this backend drives.

        The seam the ``"compiled"`` backend overrides: everything else —
        flattening, batch header initialization, schedule rebuild — is
        shared orchestration, so a backend swaps engines by swapping this
        one call (:mod:`repro.core.replay_compiled`).
        """
        return run_flat_replay(*args, **kwargs)

    def check_available(self) -> None:
        if _np is None:
            raise _config_error(
                "backend 'vectorized' requires numpy, which is not installed; "
                "install the [vectorized] extra (pip install 'repro-ups[vectorized]') "
                "or select --backend python"
            )

    def supports_replay(
        self,
        mode: str,
        default_buffer_bytes: Optional[float] = None,
        initializer: Optional[ReplayInitializer] = None,
        topology: Optional[Topology] = None,
        faults=None,
    ) -> bool:
        """The fast path: infinite buffers, a non-preemptive key-mode, no faults.

        A topology with finite per-link buffers also declines: the flat
        loop never drops packets, so finite-buffer replays belong to the
        reference backend.  Fault-bearing replays (a non-empty fault plan)
        decline for the same reason — the flat loop has no drop path.
        """
        return (
            _np is not None
            and mode in self.SUPPORTED_MODES
            and default_buffer_bytes is None
            and (faults is None or faults.is_empty())
            and (
                topology is None
                or all(spec.buffer_bytes is None for spec in topology.links)
            )
        )

    def replay(
        self,
        topology: Topology,
        schedule: Schedule,
        mode: str = "lstf",
        default_buffer_bytes: Optional[float] = None,
        max_events: Optional[int] = None,
        initializer: Optional[ReplayInitializer] = None,
        faults=None,
    ) -> Schedule:
        self.check_available()
        if not self.supports_replay(
            mode, default_buffer_bytes=default_buffer_bytes, topology=topology, faults=faults
        ):
            raise _config_error(
                f"vectorized backend does not support mode={mode!r} with "
                f"default_buffer_bytes={default_buffer_bytes!r}, "
                f"faults={'set' if faults is not None and not faults.is_empty() else None!r} "
                f"on topology {topology.name!r}; use the python backend "
                "(replay_schedule falls back automatically)"
            )
        if initializer is None:
            initializer = replay_initializer(mode)
        if not len(schedule):
            return Schedule()
        (
            records,
            ingress,
            off,
            hop_pkt,
            hop_port,
            hop_tx,
            hop_prop,
            hop_sum,
            num_ports,
        ) = _flatten(topology, schedule)
        n = len(records)

        # ---- header initialization -> per-mode scheduler keys ----
        slack, priority, deadline, vectors = _initialize_headers(
            initializer, records, topology, mode, off, hop_sum
        )
        hop_key: Optional[List[float]] = None
        if mode == "lstf":
            pass  # dynamic keys, computed in the loop from ``slack``
        elif mode == "priority":
            slack = None
            hop_key = [priority[j] for j in hop_pkt]
        elif mode == "omniscient":
            slack = None
            hop_key = []
            for j in range(n):
                vector = vectors[j]
                hops = off[j + 1] - off[j]
                # One vector entry is consumed per enqueue, i.e. per hop in
                # path order; hops beyond the vector key at +inf.
                if len(vector) >= hops:
                    hop_key.extend(vector[:hops])
                else:
                    hop_key.extend(vector)
                    hop_key.extend([math.inf] * (hops - len(vector)))
        else:  # edf
            slack = None
            hop_key = []
            for j in range(n):
                base = off[j]
                hops = off[j + 1] - base
                target = deadline[j]
                if target == math.inf:
                    hop_key.extend([math.inf] * hops)
                    continue
                for k in range(hops):
                    # Network.tmin_along over the remaining path: a forward
                    # left-fold of (tx + prop) per link, association kept
                    # (hop_sum[i] is the elementwise tx + prop; reduce() is
                    # the same fold, driven from C).
                    tmin_remaining = _reduce(_add, hop_sum[base + k : base + hops], 0.0)
                    # EdfScheduler.key: deadline - tmin_remaining + tx.
                    hop_key.append(target - tmin_remaining + hop_tx[base + k])

        # ---- run + rebuild the schedule keyed by original packet ids ----
        # The loop and the rebuild allocate hundreds of thousands of
        # non-cyclic objects (heap tuples, HopTiming, PacketRecord); pausing
        # the cycle collector around them avoids repeated gen-0 scans of an
        # ever-growing live set.  Refcounting still frees everything.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            arr, start, dep, egress, executed = self._kernel(
                ingress,
                off,
                hop_pkt,
                hop_port,
                hop_tx,
                hop_prop,
                num_ports,
                slack,
                hop_key,
                max_events=max_events,
            )
            Simulator.events_executed_total += executed

            replayed = Schedule()
            add = replayed._records.__setitem__  # ids unique per records()
            make_hop = HopTiming
            make_record = PacketRecord
            for j, record in enumerate(records):
                out_time = egress[j]
                if out_time is None:  # still in flight when max_events hit
                    continue
                path = record.path
                base = off[j]
                end = off[j + 1]
                # map() stops at the shortest iterable: the slices carry one
                # entry per transit node, so the destination (path[-1]) is
                # naturally excluded.
                hops = list(
                    map(make_hop, path, arr[base:end], start[base:end], dep[base:end])
                )
                add(
                    record.packet_id,
                    make_record(
                        record.packet_id,
                        record.flow_id,
                        record.src,
                        record.dst,
                        record.size_bytes,
                        ingress[j],
                        out_time,
                        list(path),
                        hops,
                        record.flow_size_bytes,
                        record.deadline,
                    ),
                )
        finally:
            if gc_was_enabled:
                gc.enable()
        return replayed


def _initialize_headers(
    initializer: ReplayInitializer,
    records,
    topology: Topology,
    mode: str,
    off: List[int],
    hop_sum: List[float],
):
    """Per-packet header state (slack, priority, deadline, hop vectors).

    The shipped initializers are evaluated in batch with the exact float
    expressions of their ``initialize`` methods (``None`` encoded as
    ``math.inf``, which keys and decrements identically).  Any other
    initializer runs for real, on real packets against a freshly built
    network, in record order — slower, but behaviourally indistinguishable
    from the python backend.
    """
    n = len(records)
    inf = math.inf
    slack: Optional[List[float]] = None
    priority: Optional[List[float]] = None
    deadline: Optional[List[float]] = None
    vectors: Optional[List[List[float]]] = None
    kind = type(initializer)

    if kind is BlackBoxSlackInitializer:
        # slack = o - i - tmin(path); deadline = o.  The tmin fold matches
        # Network.tmin_along: total += (tx + prop), link by link, forward
        # (hop_sum[f] is the elementwise tx + prop of hop f).
        slack = []
        deadline = []
        for j, record in enumerate(records):
            # reduce() drives the same left fold from C: ((0.0 + a) + b) + ...
            tmin = _reduce(_add, hop_sum[off[j] : off[j + 1]], 0.0)
            slack.append(record.output_time - record.ingress_time - tmin)
            deadline.append(record.output_time)
    elif kind is OutputTimePriorityInitializer:
        priority = [r.output_time for r in records]
        deadline = list(priority)
    elif kind is OmniscientInitializer:
        vectors = [r.hop_output_times() for r in records]
        deadline = [r.output_time for r in records]
    elif kind is ZeroSlackInitializer:
        slack = [0.0] * n
        deadline = [inf if r.deadline is None else r.deadline for r in records]
    elif kind is StaticDelaySlackInitializer:
        slack = [initializer.slack_seconds] * n
        deadline = [inf if r.deadline is None else r.deadline for r in records]
    elif kind is DeadlineSlackInitializer:
        # Same min as the initializer's per-network cache takes over
        # network.links: full-duplex links share one bandwidth, so the
        # spec-level min is the same float.
        bottleneck = min(spec.bandwidth_bps for spec in topology.links)
        fallback = initializer.no_deadline_slack
        slack = []
        deadline = []
        for record in records:
            target = record.deadline
            if target is None:
                slack.append(fallback)
                deadline.append(inf)
                continue
            flow_bytes = record.flow_size_bytes
            if flow_bytes is None:
                flow_bytes = record.size_bytes
            # Same float form as DeadlineSlackInitializer.initialize.
            residual = flow_bytes * 8 / bottleneck
            slack.append(target - record.ingress_time - residual)
            deadline.append(target)
    else:
        # Unknown initializer: run the real thing on real packets against a
        # real network, exactly as ReplayInjector._inject builds them.  The
        # build is deferred to here because only this path needs it.
        network = topology.build(
            Simulator(),
            replay_scheduler_factory(mode),
            tracer=Tracer(),
            default_buffer_bytes=None,
        )
        slack = []
        priority = []
        deadline = []
        vectors = []
        for record in records:
            packet = Packet(
                flow_id=record.flow_id,
                src=record.src,
                dst=record.dst,
                size_bytes=record.size_bytes,
                ptype=PacketType.DATA,
                route=list(record.path),
                replay_of=record.packet_id,
            )
            packet.header.flow_size_bytes = record.flow_size_bytes
            packet.flow_deadline = record.deadline
            initializer.initialize(packet, record, network)
            header = packet.header
            slack.append(inf if header.slack is None else header.slack)
            priority.append(inf if header.priority is None else header.priority)
            deadline.append(inf if header.deadline is None else header.deadline)
            vectors.append(
                list(header.hop_output_times)
                if header.hop_output_times is not None
                else []
            )
        return slack, priority, deadline, vectors

    if slack is None:
        slack = [inf] * n
    if priority is None:
        priority = [inf] * n
    if deadline is None:
        deadline = [inf] * n
    if vectors is None:
        vectors = [[] for _ in range(n)]
    return slack, priority, deadline, vectors


register_backend("vectorized", VectorizedBackend)
