"""Executable versions of the paper's theoretical results.

The appendix proves its theorems with small constructed networks in which
every congestion point is a unit-transmission-time resource and every other
element is instantaneous.  This module rebuilds those constructions on top of
the real simulator so they can be *run*, not just read:

* :func:`appendix_c_example` — the two-case counterexample showing no UPS
  exists under black-box initialization (Appendix C).
* :func:`appendix_f_example` — the priority cycle showing simple priorities
  cannot replay schedules with two congestion points per packet (Appendix F);
  the same scenario doubles as a witness that LSTF *can* (Appendix G's
  positive direction).
* :func:`appendix_g_example` — the three-congestion-point schedule that LSTF
  cannot replay (Appendix G's negative direction).

Each example returns a :class:`TheoryExample` holding the topology, one or
more hand-built viable schedules (exactly the tables in the paper's figures),
and the named packets the argument hinges on, so tests can both verify the
schedules' structure and replay them with the real engine.

A congestion point with transmission time ``T`` is modelled as a two-node
segment ``<name>-in -> <name>-out`` joined by a link whose bandwidth makes a
unit packet take ``T`` seconds; every packet crossing the congestion point is
routed over that shared link, reproducing the abstract single-server
congestion point of the proofs.  All other links are effectively instant
(``FAST_BANDWIDTH``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.schedule import HopTiming, PacketRecord, Schedule
from repro.topology.base import Topology
from repro.utils.units import BITS_PER_BYTE

#: Size (bytes) of the unit packets used in the theory constructions.
UNIT_PACKET_BYTES = 1.0

#: Bandwidth of "instantaneous" links: a unit packet takes 1e-12 s, which is
#: below every comparison tolerance used in the examples.
FAST_BANDWIDTH_BPS = UNIT_PACKET_BYTES * BITS_PER_BYTE / 1e-12


def bandwidth_for_transmission_time(transmission_time: float, size_bytes: float = UNIT_PACKET_BYTES) -> float:
    """Link bandwidth that makes a packet of ``size_bytes`` take ``transmission_time``."""
    if transmission_time <= 0:
        raise ValueError("transmission time must be positive")
    return size_bytes * BITS_PER_BYTE / transmission_time


def add_congestion_segment(
    topology: Topology,
    name: str,
    transmission_time: float,
    size_bytes: float = UNIT_PACKET_BYTES,
) -> Tuple[str, str]:
    """Add a congestion point as an ``-in``/``-out`` router pair joined by a slow link.

    Returns the (ingress-side, egress-side) router names of the segment.
    """
    in_name = topology.add_router(f"{name}-in")
    out_name = topology.add_router(f"{name}-out")
    topology.add_link(
        in_name, out_name, bandwidth_for_transmission_time(transmission_time, size_bytes)
    )
    return in_name, out_name


@dataclass
class TheoryExample:
    """A constructed scenario from the paper's appendix.

    Attributes:
        name: Which appendix construction this is.
        topology: The network the schedules live on.
        schedules: One or more viable schedules (Appendix C has two cases).
        packet_names: Maps human-readable packet names (``"a"``, ``"x"``, ...)
            to the packet ids used inside each schedule.
        notes: Short description of what the example demonstrates.
    """

    name: str
    topology: Topology
    schedules: List[Schedule]
    packet_names: Dict[str, int]
    notes: str = ""

    @property
    def schedule(self) -> Schedule:
        """The (first) schedule, for single-schedule examples."""
        return self.schedules[0]


def _record(
    packet_id: int,
    src: str,
    dst: str,
    path: Sequence[str],
    ingress: float,
    output: float,
    hops: Optional[Sequence[Tuple[str, float, float]]] = None,
    flow_id: Optional[int] = None,
) -> PacketRecord:
    """Create a hand-built packet record.

    ``hops`` lists ``(node, arrival_time, service_time)`` triples for the
    congestion points the packet visits (used by the priority-cycle detector
    and for congestion-point counting).
    """
    hop_timings = []
    if hops:
        for node, arrival, service in hops:
            hop_timings.append(
                HopTiming(
                    node=node,
                    arrival_time=arrival,
                    start_service_time=service,
                    departure_time=None,
                )
            )
    return PacketRecord(
        packet_id=packet_id,
        flow_id=flow_id if flow_id is not None else packet_id,
        src=src,
        dst=dst,
        size_bytes=UNIT_PACKET_BYTES,
        ingress_time=ingress,
        output_time=output,
        path=list(path),
        hops=hop_timings,
    )


# ---------------------------------------------------------------------- #
# Appendix C: no UPS under black-box initialization
# ---------------------------------------------------------------------- #
def appendix_c_example() -> TheoryExample:
    """The two-case counterexample of Appendix C (Figure 5).

    Packets ``a`` and ``x`` have identical ``(i(p), o(p), path(p))`` in both
    cases, yet case 1 is only viable if ``a`` is scheduled before ``x`` at
    their shared first congestion point, and case 2 only if ``x`` precedes
    ``a``.  A deterministic scheduler whose header initialization sees only
    ``(i, o, path)`` must therefore fail on at least one of the two cases.
    """
    topo = Topology("appendix-c")
    # Congestion points alpha0..alpha4, each with unit transmission time.
    segments = {}
    for index in range(5):
        segments[index] = add_congestion_segment(topo, f"alpha{index}", 1.0)

    hosts = {}
    for flow in ("A", "B", "C", "X", "Y", "Z"):
        hosts[f"S{flow}"] = topo.add_host(f"S{flow}")
        hosts[f"D{flow}"] = topo.add_host(f"D{flow}")

    fast = FAST_BANDWIDTH_BPS
    # Flow A: SA -> a0 -> a1 -> a2 -> DA ; Flow X: SX -> a0 -> a3 -> a4 -> DX.
    topo.add_link("SA", segments[0][0], fast)
    topo.add_link("SX", segments[0][0], fast)
    topo.add_link(segments[0][1], segments[1][0], fast)
    topo.add_link(segments[0][1], segments[3][0], fast)
    topo.add_link(segments[1][1], segments[2][0], fast)
    topo.add_link(segments[2][1], "DA", fast)
    topo.add_link(segments[3][1], segments[4][0], fast)
    topo.add_link(segments[4][1], "DX", fast)
    # Flow B enters at alpha1, C at alpha2, Y at alpha3, Z at alpha4.
    topo.add_link("SB", segments[1][0], fast)
    topo.add_link(segments[1][1], "DB", fast)
    topo.add_link("SC", segments[2][0], fast)
    topo.add_link(segments[2][1], "DC", fast)
    topo.add_link("SY", segments[3][0], fast)
    topo.add_link(segments[3][1], "DY", fast)
    topo.add_link("SZ", segments[4][0], fast)
    topo.add_link(segments[4][1], "DZ", fast)

    def seg_path(*indices: int) -> List[str]:
        nodes: List[str] = []
        for index in indices:
            nodes.extend(segments[index])
        return nodes

    path_a = ["SA"] + seg_path(0, 1, 2) + ["DA"]
    path_x = ["SX"] + seg_path(0, 3, 4) + ["DX"]
    path_b = ["SB"] + seg_path(1) + ["DB"]
    path_c = ["SC"] + seg_path(2) + ["DC"]
    path_y = ["SY"] + seg_path(3) + ["DY"]
    path_z = ["SZ"] + seg_path(4) + ["DZ"]

    a0, a1, a2, a3, a4 = (segments[i][0] for i in range(5))

    # Case 1: a scheduled before x at alpha0.
    case1 = Schedule(
        [
            _record(1, "SA", "DA", path_a, 0.0, 5.0,
                    hops=[(a0, 0.0, 0.0), (a1, 1.0, 1.0), (a2, 2.0, 4.0)]),
            _record(2, "SX", "DX", path_x, 0.0, 4.0,
                    hops=[(a0, 0.0, 1.0), (a3, 2.0, 2.0), (a4, 3.0, 3.0)]),
            _record(3, "SB", "DB", path_b, 2.0, 3.0, hops=[(a1, 2.0, 2.0)]),
            _record(4, "SB", "DB", path_b, 3.0, 4.0, hops=[(a1, 3.0, 3.0)]),
            _record(5, "SB", "DB", path_b, 4.0, 5.0, hops=[(a1, 4.0, 4.0)]),
            _record(6, "SC", "DC", path_c, 2.0, 3.0, hops=[(a2, 2.0, 2.0)]),
            _record(7, "SC", "DC", path_c, 3.0, 4.0, hops=[(a2, 3.0, 3.0)]),
            _record(8, "SY", "DY", path_y, 2.0, 4.0, hops=[(a3, 2.0, 3.0)]),
            _record(9, "SY", "DY", path_y, 3.0, 5.0, hops=[(a3, 3.0, 4.0)]),
            _record(10, "SZ", "DZ", path_z, 2.0, 3.0, hops=[(a4, 2.0, 2.0)]),
        ]
    )

    # Case 2: x scheduled before a at alpha0.  a and x keep the same
    # (ingress, output, path) attributes as in case 1.
    case2 = Schedule(
        [
            _record(1, "SA", "DA", path_a, 0.0, 5.0,
                    hops=[(a0, 0.0, 1.0), (a1, 2.0, 2.0), (a2, 3.0, 4.0)]),
            _record(2, "SX", "DX", path_x, 0.0, 4.0,
                    hops=[(a0, 0.0, 0.0), (a3, 1.0, 1.0), (a4, 2.0, 3.0)]),
            _record(3, "SB", "DB", path_b, 2.0, 4.0, hops=[(a1, 2.0, 3.0)]),
            _record(4, "SB", "DB", path_b, 3.0, 5.0, hops=[(a1, 3.0, 4.0)]),
            _record(5, "SB", "DB", path_b, 4.0, 6.0, hops=[(a1, 4.0, 5.0)]),
            _record(6, "SC", "DC", path_c, 2.0, 3.0, hops=[(a2, 2.0, 2.0)]),
            _record(7, "SC", "DC", path_c, 3.0, 4.0, hops=[(a2, 3.0, 3.0)]),
            _record(8, "SY", "DY", path_y, 2.0, 3.0, hops=[(a3, 2.0, 2.0)]),
            _record(9, "SY", "DY", path_y, 3.0, 4.0, hops=[(a3, 3.0, 3.0)]),
            _record(10, "SZ", "DZ", path_z, 2.0, 3.0, hops=[(a4, 2.0, 2.0)]),
        ]
    )

    return TheoryExample(
        name="appendix-c",
        topology=topo,
        schedules=[case1, case2],
        packet_names={"a": 1, "x": 2},
        notes=(
            "Packets a and x have identical (i, o, path) in both cases but "
            "must be ordered differently at alpha0; no deterministic black-box "
            "initialization can replay both."
        ),
    )


# ---------------------------------------------------------------------- #
# Appendix F: simple priorities fail at two congestion points per packet
# ---------------------------------------------------------------------- #
def appendix_f_example() -> TheoryExample:
    """The priority-cycle example of Appendix F (Figure 6).

    Three flows, each crossing two congestion points, whose viable schedule
    requires priority(a) < priority(b) < priority(c) < priority(a) — an
    impossible assignment for static priorities, while LSTF replays the
    schedule exactly (Appendix G's positive direction).
    """
    topo = Topology("appendix-f")
    a1 = add_congestion_segment(topo, "alpha1", 1.0)
    a2 = add_congestion_segment(topo, "alpha2", 0.5)
    a3 = add_congestion_segment(topo, "alpha3", 0.2)
    for flow in ("A", "B", "C"):
        topo.add_host(f"S{flow}")
        topo.add_host(f"D{flow}")

    fast = FAST_BANDWIDTH_BPS
    topo.add_link("SA", a1[0], fast)
    topo.add_link("SB", a1[0], fast)
    # Link L: alpha1 -> alpha3 with propagation delay 2 (on flow A's path).
    topo.add_link(a1[1], a3[0], fast, propagation_delay=2.0)
    topo.add_link(a1[1], a2[0], fast)
    topo.add_link("SC", a2[0], fast)
    topo.add_link(a2[1], "DB", fast)
    topo.add_link(a2[1], a3[0], fast)
    topo.add_link(a3[1], "DA", fast)
    topo.add_link(a3[1], "DC", fast)

    path_a = ["SA", a1[0], a1[1], a3[0], a3[1], "DA"]
    path_b = ["SB", a1[0], a1[1], a2[0], a2[1], "DB"]
    path_c = ["SC", a2[0], a2[1], a3[0], a3[1], "DC"]

    schedule = Schedule(
        [
            _record(1, "SA", "DA", path_a, 0.0, 3.4,
                    hops=[(a1[0], 0.0, 0.0), (a3[0], 3.0, 3.2)]),
            _record(2, "SB", "DB", path_b, 0.0, 2.5,
                    hops=[(a1[0], 0.0, 1.0), (a2[0], 2.0, 2.0)]),
            _record(3, "SC", "DC", path_c, 2.0, 3.2,
                    hops=[(a2[0], 2.0, 2.5), (a3[0], 3.0, 3.0)]),
        ]
    )
    return TheoryExample(
        name="appendix-f",
        topology=topo,
        schedules=[schedule],
        packet_names={"a": 1, "b": 2, "c": 3},
        notes=(
            "Viable two-congestion-point schedule with a priority cycle: "
            "simple priorities cannot replay it, LSTF can."
        ),
    )


# ---------------------------------------------------------------------- #
# Appendix G: LSTF fails at three congestion points per packet
# ---------------------------------------------------------------------- #
def appendix_g_example() -> TheoryExample:
    """The three-congestion-point LSTF failure example (Figure 7)."""
    topo = Topology("appendix-g")
    a0 = add_congestion_segment(topo, "alpha0", 1.0)
    a1 = add_congestion_segment(topo, "alpha1", 1.0)
    a2 = add_congestion_segment(topo, "alpha2", 1.0)
    for flow in ("A", "B", "C", "D"):
        topo.add_host(f"S{flow}")
        topo.add_host(f"D{flow}")

    fast = FAST_BANDWIDTH_BPS
    topo.add_link("SA", a0[0], fast)
    topo.add_link("SB", a0[0], fast)
    topo.add_link(a0[1], "DB", fast)
    topo.add_link(a0[1], a1[0], fast)
    topo.add_link("SC", a1[0], fast)
    topo.add_link(a1[1], "DC", fast)
    topo.add_link(a1[1], a2[0], fast)
    topo.add_link("SD", a2[0], fast)
    topo.add_link(a2[1], "DD", fast)
    topo.add_link(a2[1], "DA", fast)

    path_a = ["SA", a0[0], a0[1], a1[0], a1[1], a2[0], a2[1], "DA"]
    path_b = ["SB", a0[0], a0[1], "DB"]
    path_c = ["SC", a1[0], a1[1], "DC"]
    path_d = ["SD", a2[0], a2[1], "DD"]

    schedule = Schedule(
        [
            _record(1, "SA", "DA", path_a, 0.0, 5.0,
                    hops=[(a0[0], 0.0, 0.0), (a1[0], 1.0, 1.0), (a2[0], 2.0, 4.0)]),
            _record(2, "SB", "DB", path_b, 0.0, 2.0, hops=[(a0[0], 0.0, 1.0)]),
            _record(3, "SC", "DC", path_c, 2.0, 3.0, hops=[(a1[0], 2.0, 2.0)]),
            _record(4, "SC", "DC", path_c, 3.0, 4.0, hops=[(a1[0], 3.0, 3.0)]),
            _record(5, "SD", "DD", path_d, 2.0, 3.0, hops=[(a2[0], 2.0, 2.0)]),
            _record(6, "SD", "DD", path_d, 3.0, 4.0, hops=[(a2[0], 3.0, 3.0)]),
        ]
    )
    return TheoryExample(
        name="appendix-g",
        topology=topo,
        schedules=[schedule],
        packet_names={"a": 1, "b": 2, "c1": 3, "c2": 4, "d1": 5, "d2": 6},
        notes=(
            "Flow A crosses three congestion points; LSTF cannot divide A's "
            "slack correctly among them and some packet misses its target."
        ),
    )


# ---------------------------------------------------------------------- #
# Structural analyses
# ---------------------------------------------------------------------- #
def priority_order_constraints(schedule: Schedule, epsilon: float = 1e-12) -> nx.DiGraph:
    """Required precedence constraints a static priority assignment must satisfy.

    For every node with recorded hop timings, if packet ``p`` was scheduled
    there before packet ``q`` *while q was already waiting* (q's arrival is
    no later than p's service time), then any replay restricted to static
    priorities must give ``p`` a higher priority: edge ``p -> q``.

    Returns a directed graph over packet ids; a cycle in this graph proves
    that no static priority assignment can reproduce the schedule.
    """
    graph = nx.DiGraph()
    per_node: Dict[str, List[Tuple[float, float, int]]] = {}
    for record in schedule:
        graph.add_node(record.packet_id)
        for hop in record.hops:
            if hop.start_service_time is None:
                continue
            per_node.setdefault(hop.node, []).append(
                (hop.arrival_time, hop.start_service_time, record.packet_id)
            )
    for node, entries in per_node.items():
        for arrival_p, service_p, pid in entries:
            for arrival_q, service_q, qid in entries:
                if pid == qid:
                    continue
                if service_p < service_q - epsilon and arrival_q <= service_p + epsilon:
                    graph.add_edge(pid, qid)
    return graph


def has_priority_cycle(schedule: Schedule) -> bool:
    """Whether the schedule's precedence constraints contain a cycle."""
    graph = priority_order_constraints(schedule)
    return not nx.is_directed_acyclic_graph(graph)


def blackbox_attributes(record: PacketRecord) -> Tuple[float, float, Tuple[str, ...]]:
    """The information available to black-box initialization: ``(i, o, path)``."""
    return (record.ingress_time, record.output_time, tuple(record.path))


def identical_blackbox_views(
    schedule_a: Schedule, schedule_b: Schedule, packet_id: int
) -> bool:
    """Whether a packet looks identical to black-box initialization in two schedules."""
    return blackbox_attributes(schedule_a.record(packet_id)) == blackbox_attributes(
        schedule_b.record(packet_id)
    )
