"""Slack initialization.

LSTF's behaviour is entirely determined by how the slack in each packet's
header is initialized at the ingress.  This module collects every
initialization scheme used in the paper:

**Replay initializers** (Section 2) consume a recorded original schedule and
stamp each replayed packet with

    ``slack(p) = o(p) - i(p) - tmin(p, src(p), dest(p))``

(black-box initialization), the per-hop output-time vector (omniscient
initialization), or a static priority ``o(p)`` (the simple-priorities
comparison point).

**Heuristic policies** (Section 3) need no knowledge of any schedule; they
stamp slack at send time to pursue a performance objective: flow-size-
proportional slack for mean FCT, a constant slack for tail latency (making
LSTF behave as FIFO+), and a virtual-clock style slack for fairness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, Optional, Tuple

from repro.core.schedule import PacketRecord, Schedule
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.utils.units import BITS_PER_BYTE


# ---------------------------------------------------------------------- #
# Replay-time initializers (Section 2)
# ---------------------------------------------------------------------- #
class ReplayInitializer(ABC):
    """Initializes a replayed packet's header from its original-schedule record."""

    @abstractmethod
    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        """Stamp ``packet``'s header for the replay run."""


class BlackBoxSlackInitializer(ReplayInitializer):
    """The paper's black-box initialization: only ``o(p)`` and ``path(p)`` are known.

    Sets ``header.slack = o(p) - i(p) - tmin(path)`` (for LSTF) and
    ``header.deadline = o(p)`` (so the same initialization also serves
    network-wide EDF, which the paper proves equivalent to LSTF).
    """

    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        tmin = network.tmin_along(record.size_bytes, record.path)
        packet.header.slack = record.output_time - record.ingress_time - tmin
        packet.header.deadline = record.output_time


class OutputTimePriorityInitializer(ReplayInitializer):
    """Simple-priorities replay: static priority equal to the target output time.

    This is the "most intuitive" priority assignment the paper compares
    against in Section 2.3 item (7): earlier target output times get higher
    priority, and the value never changes along the path.
    """

    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        packet.header.priority = record.output_time
        packet.header.deadline = record.output_time


class OmniscientInitializer(ReplayInitializer):
    """Omniscient initialization: the per-hop output times ``o(p, alpha_i)``.

    The header carries an n-dimensional vector; every router pops the head
    entry and uses it as the packet's priority.  Appendix B proves this
    replays any viable schedule perfectly.
    """

    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        packet.header.hop_output_times = deque(record.hop_output_times())
        packet.header.deadline = record.output_time


# ---------------------------------------------------------------------- #
# Heuristic initializers (Section 3, applied to replayed traffic)
# ---------------------------------------------------------------------- #
# These stamp a replayed packet's header *without* consulting the recorded
# output times: the recorded schedule only supplies the offered traffic
# (ingress times, sizes, paths, flow deadlines), so a replay under one of
# these initializers answers "what would LSTF/EDF have done on this exact
# traffic with slack assigned by a practical heuristic?" — the paper's
# Section-3 question, asked on the same packets the replay harness already
# knows how to drive.  The registry in :mod:`repro.core.slack_policy` names
# and parameterizes them for scenarios, cache keys, and the CLI.


class ZeroSlackInitializer(ReplayInitializer):
    """Delay-minimization heuristic: every packet starts with zero slack.

    With equal (zero) initial slack, LSTF serves the packet that has been
    queued longest — the limiting case of the constant-slack FIFO+ heuristic
    of Section 3.2, aimed at minimizing worst-case queueing delay.  The real
    flow deadline (when the workload tagged one) is kept in the header so
    deadline-aware schedulers replaying the same traffic see it.
    """

    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        packet.header.slack = 0.0
        packet.header.deadline = record.deadline


class StaticDelaySlackInitializer(ReplayInitializer):
    """Tail-latency heuristic: one constant slack for every packet (FIFO+).

    The replay-side counterpart of :class:`ConstantSlackPolicy`: each packet
    of every flow receives the same ``slack_seconds`` budget at the ingress,
    so LSTF degrades gracefully to FIFO+ ordering (serve the packet that has
    accumulated the most queueing delay).  Section 3.2 uses 1 second.

    Args:
        slack_seconds: The per-flow constant slack in seconds.
    """

    def __init__(self, slack_seconds: float = 1.0) -> None:
        if slack_seconds < 0:
            raise ValueError(f"slack must be non-negative, got {slack_seconds}")
        self.slack_seconds = slack_seconds

    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        packet.header.slack = self.slack_seconds
        packet.header.deadline = record.deadline


class DeadlineSlackInitializer(ReplayInitializer):
    """Deadline-driven slack: deadline minus the ideal bottleneck residual.

    For a packet of a deadline-tagged flow the initializer computes how much
    queueing the flow can still absorb and meet its deadline:

        ``slack(p) = deadline(p) - i(p) - residual(p)``

    where ``residual(p)`` is the *ideal* time the flow's remaining bytes need
    on the network's bottleneck link
    (:meth:`~repro.sim.network.Network.bottleneck_transmission_time` of the
    flow size — the same quantity
    :meth:`repro.topology.base.Topology.bottleneck_transmission_time` exposes
    on topology specs).  Flows closer to their deadline, relative to the work
    they still represent, get less slack and are served first; an infeasible
    deadline yields negative slack, i.e. maximal urgency.  This is the
    paper's Section-3 deadline heuristic, and the slack assignment that
    joint deadline/priority scheduling formulations (Raviv & Leshem) arrive
    at as well.

    Untagged flows receive the constant ``no_deadline_slack`` (seconds), so
    background traffic keeps FIFO+ ordering among itself and yields to any
    deadline flow that is at risk.

    Args:
        no_deadline_slack: Slack (seconds) for packets of flows that carry
            no deadline.
    """

    def __init__(self, no_deadline_slack: float = 1.0) -> None:
        if no_deadline_slack < 0:
            raise ValueError(
                f"no-deadline slack must be non-negative, got {no_deadline_slack}"
            )
        self.no_deadline_slack = no_deadline_slack
        # Per-network bottleneck cache: initialize() runs once per injected
        # packet on the replay hot path, and the network's bottleneck scan
        # is O(links) — resolve it once per network instead of per packet.
        self._bottleneck_network: Optional[Network] = None
        self._bottleneck_bps: float = 0.0

    def initialize(self, packet: Packet, record: PacketRecord, network: Network) -> None:
        deadline = record.deadline
        packet.header.deadline = deadline
        if deadline is None:
            packet.header.slack = self.no_deadline_slack
            return
        flow_bytes = record.flow_size_bytes
        if flow_bytes is None:
            flow_bytes = record.size_bytes
        if network is not self._bottleneck_network:
            self._bottleneck_network = network
            self._bottleneck_bps = min(
                link.bandwidth_bps for link in network.links.values()
            )
        # Same float form as Network.bottleneck_transmission_time
        # (transmission_delay: bytes * 8 / bandwidth) — bit-identical result.
        residual = flow_bytes * BITS_PER_BYTE / self._bottleneck_bps
        packet.header.slack = deadline - record.ingress_time - residual


# ---------------------------------------------------------------------- #
# Live heuristics (Section 3)
# ---------------------------------------------------------------------- #
class SlackPolicy(ABC):
    """A slack-assignment heuristic applied as packets are injected.

    A policy is installed on a network (``network.slack_policy = policy``);
    every host then calls :meth:`on_packet_sent` for every packet it injects.
    """

    @abstractmethod
    def on_packet_sent(self, packet: Packet, now: float) -> None:
        """Stamp ``packet.header.slack`` (and related fields) at send time."""


class FlowSizeSlackPolicy(SlackPolicy):
    """Mean-FCT heuristic: ``slack(p) = flow_size(p) * D`` (Section 3.1).

    With ``D`` much larger than any queueing delay, LSTF orders packets by
    flow size — approximating SJF — while still using any leftover slack to
    resolve ties in favour of packets that have already waited.

    Args:
        scale: The constant ``D`` in seconds per byte of flow size.  The
            paper uses D = 1 second (with flow sizes measured in bytes).
    """

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    def on_packet_sent(self, packet: Packet, now: float) -> None:
        flow_size = packet.header.flow_size_bytes
        if flow_size is None:
            flow_size = packet.size_bytes
        packet.header.slack = flow_size * self.scale


class ConstantSlackPolicy(SlackPolicy):
    """Tail-latency heuristic: every packet gets the same slack (Section 3.2).

    With equal initial slack, LSTF serves the packet that has accumulated the
    most queueing delay so far — which is exactly FIFO+.

    Args:
        slack: The constant slack in seconds (paper: 1 second).
    """

    def __init__(self, slack: float = 1.0) -> None:
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        self.slack = slack

    def on_packet_sent(self, packet: Packet, now: float) -> None:
        packet.header.slack = self.slack


class FairnessSlackPolicy(SlackPolicy):
    """Fairness heuristic: virtual-clock style slack accumulation (Section 3.3).

    The first packet of a flow gets zero slack; each subsequent packet gets

        ``slack(p_i) = max(0, slack(p_{i-1}) + credit - (i(p_i) - i(p_{i-1})))``

    where ``credit`` is the time a fair share of the estimated rate ``rest``
    would need to carry the previous packet.  The paper expresses the credit
    as ``1 / rest``; we use ``previous_size * 8 / rest`` so the heuristic is
    well defined for variable packet sizes (the two coincide for the paper's
    fixed-size packets up to the choice of unit for ``rest``).  The paper
    proves the resulting schedule converges to the fair share for any
    ``rest`` below the true fair rate, as long as all flows use the same
    value; that asymptotic-fairness property is what Figure 4 (and our
    reproduction) measures.

    Args:
        rate_estimate_bps: The fair-share rate estimate ``rest`` in bits/second.
        data_packets_only: If true (default), acknowledgement packets are
            given the constant slack ``ack_slack`` instead of participating
            in the per-flow accumulation, so reverse-path ACK streams do not
            perturb a flow's forward-path state.
        ack_slack: Slack assigned to ACKs when ``data_packets_only`` is set.
    """

    def __init__(
        self,
        rate_estimate_bps: float,
        data_packets_only: bool = True,
        ack_slack: float = 0.0,
    ) -> None:
        if rate_estimate_bps <= 0:
            raise ValueError(f"rate estimate must be positive, got {rate_estimate_bps}")
        self.rate_estimate_bps = rate_estimate_bps
        self.data_packets_only = data_packets_only
        self.ack_slack = ack_slack
        # Per (flow, direction) state: (previous slack, previous ingress time,
        # previous packet size).
        self._state: Dict[Tuple[int, str], Tuple[float, float, float]] = {}

    def on_packet_sent(self, packet: Packet, now: float) -> None:
        if self.data_packets_only and packet.is_ack:
            packet.header.slack = self.ack_slack
            return
        key = (packet.flow_id, packet.src)
        previous = self._state.get(key)
        if previous is None:
            slack = 0.0
        else:
            previous_slack, previous_time, previous_size = previous
            credit = previous_size * BITS_PER_BYTE / self.rate_estimate_bps
            slack = max(0.0, previous_slack + credit - (now - previous_time))
        packet.header.slack = slack
        self._state[key] = (slack, now, packet.size_bytes)

    def reset(self) -> None:
        """Forget all per-flow state (useful when reusing a policy across runs)."""
        self._state.clear()


class NullSlackPolicy(SlackPolicy):
    """A policy that leaves headers untouched (useful as an explicit default)."""

    def on_packet_sent(self, packet: Packet, now: float) -> None:  # noqa: D401
        return
