"""The record-and-replay engine (Section 2.3's experiment harness).

The workflow mirrors the paper exactly:

1. **Record**: run the input workload through the topology with some
   collection of "original" scheduling algorithms (Random, FIFO, FQ, SJF,
   LIFO, a FQ/FIFO+ mixture, ...) and record the resulting schedule — every
   packet's ingress time ``i(p)``, path, per-hop service times, and network
   output time ``o(p)``.
2. **Replay**: rebuild the *same* topology, deploy the candidate universal
   scheduler (LSTF by default) at every port, re-inject exactly the same
   packets at exactly the same ingress times along exactly the same paths
   (source routing), with headers initialized from the recorded schedule
   (black-box slack, static output-time priority, or the omniscient per-hop
   vector).
3. **Compare**: count overdue packets and packets overdue by more than one
   bottleneck-link transmission time, and collect queueing-delay ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.metrics import ReplayMetrics, compare_schedules
from repro.core.schedule import PacketRecord, Schedule
from repro.core.slack import (
    BlackBoxSlackInitializer,
    OmniscientInitializer,
    OutputTimePriorityInitializer,
    ReplayInitializer,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.factory import alternating_factory, uniform_factory
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.lstf import LstfScheduler, PreemptiveLstfScheduler
from repro.schedulers.omniscient import OmniscientReplayScheduler
from repro.schedulers.priority import StaticPriorityScheduler
from repro.sim.backend import SimBackend, register_backend, resolve_backend
from repro.sim.engine import Simulator
from repro.sim.flow import DEFAULT_MSS
from repro.sim.network import Network, SchedulerFactory
from repro.sim.packet import Packet, PacketType
from repro.sim.tracer import Tracer
from repro.topology.base import Topology
from repro.traffic.workload import WorkloadSpec
from repro.utils.rng import RandomState


#: Replay modes: the candidate universal scheduler deployed during the replay
#: and the header initializer that goes with it.
REPLAY_MODES: Dict[str, tuple] = {
    "lstf": (LstfScheduler, BlackBoxSlackInitializer),
    "lstf-preemptive": (PreemptiveLstfScheduler, BlackBoxSlackInitializer),
    "edf": (EdfScheduler, BlackBoxSlackInitializer),
    "priority": (StaticPriorityScheduler, OutputTimePriorityInitializer),
    "omniscient": (OmniscientReplayScheduler, OmniscientInitializer),
    # FIFO replay: the slack-oblivious baseline the faults experiments
    # degrade against (headers still carry black-box slack; FIFO ignores it).
    "fifo": (FifoScheduler, BlackBoxSlackInitializer),
}


class ReplayInjector:
    """Re-injects the packets of a recorded schedule into a fresh network.

    Injection is *streaming*: instead of pre-scheduling one heap event per
    recorded packet (which made the engine heap O(total packets) before the
    first packet even moved), :meth:`install` arms a single self-rescheduling
    cursor that walks the ingress-time-sorted records.  The heap stays
    O(in-flight packets), so every push/pop sifts a far shallower heap.

    The replay is bit-identical to the old upfront injector: the cursor is
    scheduled with :meth:`~repro.sim.engine.Simulator.schedule_at_front`, so
    injections at time ``t`` fire before any simulation event at ``t`` —
    exactly the ordering the upfront injector guaranteed by grabbing the
    lowest sequence numbers — and records sharing one ingress time are
    injected back-to-back in record order, just as their back-to-back
    pre-scheduled events used to fire.  :meth:`install_upfront` keeps the
    original implementation as the reference for the equivalence tests.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        schedule: Schedule,
        initializer: ReplayInitializer,
    ) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self.initializer = initializer
        self.injected = 0
        self._records: List[PacketRecord] = []
        self._cursor = 0

    def install(self) -> None:
        """Arm the streaming cursor at the first recorded ingress time."""
        self._records = self.schedule.records()
        self._cursor = 0
        if self._records:
            self.sim.schedule_at_front(self._records[0].ingress_time, self._advance)

    def install_upfront(self) -> None:
        """Reference implementation: pre-schedule one event per record.

        Kept (and exercised by the determinism test suite) as the behavioural
        specification the streaming cursor must match bit-for-bit; prefer
        :meth:`install` everywhere else.
        """
        for record in self.schedule.records():
            self.sim.schedule_at(record.ingress_time, self._inject, record)

    def _advance(self) -> None:
        """Inject every record due now, then reschedule at the next ingress time."""
        records = self._records
        total = len(records)
        index = self._cursor
        now = self.sim.now
        inject = self._inject
        while index < total and records[index].ingress_time <= now:
            inject(records[index])
            index += 1
        self._cursor = index
        if index < total:
            self.sim.schedule_at_front(records[index].ingress_time, self._advance)

    def _inject(self, record: PacketRecord) -> None:
        packet = Packet(
            flow_id=record.flow_id,
            src=record.src,
            dst=record.dst,
            size_bytes=record.size_bytes,
            ptype=PacketType.DATA,
            route=list(record.path),
            replay_of=record.packet_id,
        )
        packet.header.flow_size_bytes = record.flow_size_bytes
        packet.flow_deadline = record.deadline
        self.initializer.initialize(packet, record, self.network)
        self.network.host(record.src).send(packet)
        self.injected += 1


@dataclass
class ReplayResult:
    """Outcome of replaying one original schedule with one candidate UPS."""

    mode: str
    original: Schedule
    replayed: Schedule
    metrics: ReplayMetrics

    @property
    def overdue_fraction(self) -> float:
        """Fraction of packets that exited later than in the original schedule."""
        return self.metrics.overdue_fraction

    @property
    def overdue_beyond_threshold_fraction(self) -> float:
        """Fraction of packets overdue by more than the bottleneck transmission time."""
        return self.metrics.overdue_beyond_threshold_fraction

    # ------------------------------------------------------------------ #
    # Deadline-aware evaluation (deadline-tagged workloads)
    # ------------------------------------------------------------------ #
    @property
    def has_deadlines(self) -> bool:
        """Whether the original schedule carried any flow deadlines."""
        return self.metrics.deadline_total > 0

    @property
    def deadline_met_fraction_original(self) -> float:
        """Fraction of deadline-tagged flows on time in the original run."""
        return self.metrics.deadline_met_fraction_original

    @property
    def deadline_met_fraction_replay(self) -> float:
        """Fraction of deadline-tagged flows on time in the replay."""
        return self.metrics.deadline_met_fraction_replay


def replay_scheduler_factory(mode: str) -> SchedulerFactory:
    """Scheduler factory deploying the replay-mode scheduler at every port."""
    scheduler_cls, _ = _lookup_mode(mode)
    return uniform_factory(scheduler_cls)


def replay_initializer(mode: str) -> ReplayInitializer:
    """Header initializer matching a replay mode."""
    _, initializer_cls = _lookup_mode(mode)
    return initializer_cls()


def _lookup_mode(mode: str):
    try:
        return REPLAY_MODES[mode]
    except KeyError:
        known = ", ".join(sorted(REPLAY_MODES))
        raise KeyError(f"unknown replay mode {mode!r}; known modes: {known}") from None


class PythonBackend(SimBackend):
    """The reference backend: the OO engine, unchanged behaviour.

    This is the behavioural specification every other backend must match
    bit-for-bit; it supports every replay configuration (all modes, finite
    buffers, preemption, arbitrary initializers).
    """

    name = "python"
    replay_note = (
        "reference OO engine; supports every replay configuration "
        "(all modes, finite buffers, preemption, custom initializers)"
    )

    def replay(
        self,
        topology: Topology,
        schedule: Schedule,
        mode: str = "lstf",
        default_buffer_bytes: Optional[float] = None,
        max_events: Optional[int] = None,
        initializer: Optional[ReplayInitializer] = None,
        faults=None,
    ) -> Schedule:
        sim = Simulator()
        tracer = Tracer()
        network = topology.build(
            sim,
            replay_scheduler_factory(mode),
            tracer=tracer,
            default_buffer_bytes=default_buffer_bytes,
        )
        if initializer is None:
            initializer = replay_initializer(mode)
        injector = ReplayInjector(sim, network, schedule, initializer)
        injector.install()
        if faults is not None and not faults.is_empty():
            # The fault horizon is the span traffic actually enters over:
            # the last recorded ingress time (records are ingress-sorted).
            records = schedule.records()
            horizon = records[-1].ingress_time if records else 0.0
            network.install_faults(faults, horizon=horizon if horizon > 0.0 else 1.0)
        # Without faults there are no feedback loops and no drops, and with
        # them destroyed packets simply never reach their sink: either way
        # the event queue drains once every surviving packet has exited.
        sim.run(until=None, max_events=max_events)
        return Schedule.from_packets(tracer.delivered_data_packets(), use_replay_ids=True)


register_backend("python", PythonBackend)


def replay_schedule(
    topology: Topology,
    schedule: Schedule,
    mode: str = "lstf",
    default_buffer_bytes: Optional[float] = None,
    max_events: Optional[int] = None,
    initializer: Optional[ReplayInitializer] = None,
    backend: Union[str, SimBackend, None] = None,
    faults=None,
) -> Schedule:
    """Replay a recorded schedule on a fresh instance of ``topology``.

    Returns the replay's schedule, keyed by the *original* packet ids so it
    can be compared directly against ``schedule``.

    Args:
        topology: Topology to rebuild for the replay run.
        schedule: The recorded original schedule supplying the traffic.
        mode: Replay mode selecting the candidate scheduler (and, when
            ``initializer`` is not given, the matching header initializer).
        default_buffer_bytes: Buffer capacity (``None`` = infinite).
        max_events: Safety valve forwarded to the engine.
        initializer: Header initializer overriding the mode's default —
            how slack-policy replays (:mod:`repro.core.slack_policy`) stamp
            heuristic slack instead of recorded output times.
        backend: Engine selector — a registry name, a
            :class:`~repro.sim.backend.SimBackend` instance, or ``None``
            (environment default, normally ``"python"``).  A backend that
            does not support this exact configuration falls back to the
            reference python backend; results are bit-identical either way.
        faults: Optional :class:`repro.faults.FaultPlan` installed on the
            replay network (``None`` or an empty plan replays fault-free).
            Accelerated backends decline fault-bearing replays, so these
            silently fall back to the reference engine.
    """
    engine = resolve_backend(backend)
    if not engine.supports_replay(
        mode,
        default_buffer_bytes=default_buffer_bytes,
        initializer=initializer,
        topology=topology,
        faults=faults,
    ):
        engine = resolve_backend("python")
    return engine.replay(
        topology,
        schedule,
        mode=mode,
        default_buffer_bytes=default_buffer_bytes,
        max_events=max_events,
        initializer=initializer,
        faults=faults,
    )


def replay_pair(
    topology: Topology,
    schedule: Schedule,
    backend_a: Union[str, SimBackend, None],
    backend_b: Union[str, SimBackend, None],
    mode: str = "lstf",
    initializer: Optional[ReplayInitializer] = None,
    faults=None,
) -> tuple:
    """Replay ``schedule`` twice — once per backend — for differential comparison.

    This is the diff tool's replay entry (:mod:`repro.diff`): both legs
    replay the *same* recorded schedule on fresh instances of the same
    topology, with the global packet/flow id counters reset before each leg
    so neither run can perturb the other.  By the backend bit-identity
    contract the two replayed schedules must be identical — any difference
    is a backend bug, and :func:`repro.diff.first_divergence` pinpoints it.

    Passing the same backend twice is the determinism twin: it verifies a
    single engine replays reproducibly run-over-run.

    Returns:
        ``(replayed_a, replayed_b)`` — both keyed by original packet ids.
    """
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    legs = []
    for backend in (backend_a, backend_b):
        reset_packet_ids()
        reset_flow_ids()
        legs.append(
            replay_schedule(
                topology,
                schedule,
                mode=mode,
                initializer=initializer,
                backend=backend,
                faults=faults,
            )
        )
    return legs[0], legs[1]


def evaluate_replay(
    topology: Topology,
    original: Schedule,
    mode: str = "lstf",
    threshold: Optional[float] = None,
    threshold_packet_bytes: float = float(DEFAULT_MSS),
    default_buffer_bytes: Optional[float] = None,
    initializer: Optional[ReplayInitializer] = None,
    backend: Union[str, SimBackend, None] = None,
    faults=None,
) -> ReplayResult:
    """Replay ``original`` with ``mode`` and compute the Table-1 metrics.

    Args:
        topology: The topology both runs share.
        original: The recorded original schedule.
        mode: Replay mode (see :data:`REPLAY_MODES`).
        threshold: Lateness threshold ``T``; defaults to one transmission
            time of ``threshold_packet_bytes`` on the slowest link.
        threshold_packet_bytes: Packet size used for the default threshold.
        default_buffer_bytes: Buffer capacity in the replay network (``None``
            = infinite, the paper's setting).
        initializer: Header initializer overriding the mode's default (see
            :func:`replay_schedule`); used by slack-policy replays.
        backend: Engine selector forwarded to :func:`replay_schedule`.
        faults: Optional fault plan forwarded to :func:`replay_schedule`;
            destroyed packets surface as ``missing`` in the metrics (see
            :attr:`~repro.core.metrics.ReplayMetrics.delivered_fraction`).
    """
    replayed = replay_schedule(
        topology,
        original,
        mode=mode,
        default_buffer_bytes=default_buffer_bytes,
        initializer=initializer,
        backend=backend,
        faults=faults,
    )
    if threshold is None:
        threshold = topology.bottleneck_transmission_time(threshold_packet_bytes)
    metrics = compare_schedules(original, replayed, threshold=threshold)
    return ReplayResult(mode=mode, original=original, replayed=replayed, metrics=metrics)


# ---------------------------------------------------------------------- #
# Original-schedule recording
# ---------------------------------------------------------------------- #
def original_scheduler_factory(
    name: str, topology: Topology, rng: Optional[RandomState] = None
) -> SchedulerFactory:
    """Scheduler factory for an "original schedule" algorithm by name.

    Supports every per-port algorithm in the registry plus the Table-1
    mixture ``"fq+fifo+"`` (half the routers run fair queueing, half FIFO+;
    hosts keep FIFO since the mixture in the paper applies to routers).
    """
    normalized = name.lower()
    if normalized in ("fq+fifo+", "fifo+ & fq", "fq/fifo+"):
        return alternating_factory(
            topology.router_names(),
            uniform_factory("fq"),
            uniform_factory("fifo+"),
            default=uniform_factory("fifo"),
        )
    return uniform_factory(normalized, rng=rng)


def record_schedule(
    topology: Topology,
    scheduler_factory: SchedulerFactory,
    workload: WorkloadSpec,
    seed: int = 0,
    sources: Optional[Sequence[str]] = None,
    destinations: Optional[Sequence[str]] = None,
    default_buffer_bytes: Optional[float] = None,
    max_events: Optional[int] = None,
    slack_policy=None,
    faults=None,
) -> Schedule:
    """Run the workload under the original schedulers and record the schedule.

    Flow arrivals stop at ``workload.duration``; the run then continues until
    every in-flight packet has drained so that each recorded packet has a
    complete path and output time.

    Args:
        slack_policy: Optional send-time
            :class:`~repro.core.slack.SlackPolicy` installed on the network
            while recording, so every injected packet is stamped as sources
            emit it (the live application mode of
            :mod:`repro.core.slack_policy`).  ``None`` records exactly as
            before.
        faults: Optional :class:`repro.faults.FaultPlan` installed while
            recording, with the workload duration as the fault horizon.
            The pipeline records fault-free and injects faults at replay
            time only; this parameter exists for direct API use (e.g.
            recording what FIFO itself does under loss).
    """
    from repro.sim.simulation import Simulation

    simulation = Simulation(
        topology,
        scheduler_factory,
        default_buffer_bytes=default_buffer_bytes,
        slack_policy=slack_policy,
        seed=seed,
    )
    if faults is not None and not faults.is_empty():
        simulation.network.install_faults(faults, horizon=float(workload.duration))
    simulation.add_poisson_traffic(
        workload, sources=sources, destinations=destinations, stop_time=workload.duration
    )
    simulation.sim.run(until=None, max_events=max_events)
    return Schedule.from_tracer(simulation.tracer)


class ReplayExperiment:
    """End-to-end record-then-replay experiment for one scenario.

    Args:
        topology: Topology specification shared by both runs.
        original: Name of the original scheduling algorithm (registry name or
            ``"fq+fifo+"``) or an explicit scheduler factory.
        workload: Offered traffic description.
        seed: Seed for the workload (and for the Random scheduler if used).
        sources: Source hosts (defaults to every host).
        destinations: Destination hosts (defaults to every host).
    """

    def __init__(
        self,
        topology: Topology,
        original,
        workload: WorkloadSpec,
        seed: int = 0,
        sources: Optional[Sequence[str]] = None,
        destinations: Optional[Sequence[str]] = None,
    ) -> None:
        self.topology = topology
        self.workload = workload
        self.seed = seed
        self.sources = sources
        self.destinations = destinations
        rng = RandomState(seed + 1)
        if callable(original):
            self.original_name = getattr(original, "__name__", "custom")
            self.original_factory = original
        else:
            self.original_name = str(original)
            self.original_factory = original_scheduler_factory(
                self.original_name, topology, rng=rng
            )
        self._recorded: Optional[Schedule] = None

    def record(self) -> Schedule:
        """Run the original schedule once (cached across replay modes)."""
        if self._recorded is None:
            self._recorded = record_schedule(
                self.topology,
                self.original_factory,
                self.workload,
                seed=self.seed,
                sources=self.sources,
                destinations=self.destinations,
            )
        return self._recorded

    def replay(self, mode: str = "lstf", threshold: Optional[float] = None) -> ReplayResult:
        """Replay the recorded schedule with the given candidate UPS."""
        return evaluate_replay(
            self.topology,
            self.record(),
            mode=mode,
            threshold=threshold,
            threshold_packet_bytes=float(self.workload.mss),
        )

    def run(self, modes: Sequence[str] = ("lstf",)) -> Dict[str, ReplayResult]:
        """Record once, then replay with every requested mode."""
        return {mode: self.replay(mode) for mode in modes}
