"""The slack-policy registry: named, parameterized slack initialization.

LSTF is one mechanism with many personalities: everything interesting about
it lives in how each packet's slack is initialized at the ingress.  Section 2
of the paper initializes slack from a recorded schedule (replay); Section 3
replaces the recording with practical heuristics (zero slack for delay
minimization, deadline-minus-residual for deadline traffic, a per-flow
constant for FIFO+-style tail latency) and shows LSTF remains competitive.

A :class:`SlackPolicyDef` captures one such initialization scheme as plain
data — a ``kind`` naming the :class:`~repro.core.slack.ReplayInitializer`
implementation plus keyword parameters — mirroring the
:mod:`repro.traffic.registry` pattern: definitions are frozen, hashable,
picklable value objects with a lossless ``to_dict``/``from_dict`` round-trip,
so they can feed the schedule cache's content hash, ship to pool workers,
and be listed by the CLI (``python -m repro list --slack-policies``).

The global :data:`SLACK_POLICIES` registry ships four built-in policies:

========== ============================================================
``replay``       the Section-2 black-box replay initialization
                 (``o(p) - i(p) - tmin``) — today's default behaviour
``zero``         zero slack for every packet (delay minimization)
``deadline``     flow deadline minus the ideal bottleneck residual
                 (deadline traffic first; untagged flows get a constant)
``static-delay`` one constant slack per flow (LSTF as FIFO+)
========== ============================================================

A :class:`~repro.pipeline.scenario.Scenario` references a policy by name via
its ``slack_policy`` field; when the field is ``None`` nothing changes —
cache keys, replay behaviour, and every pre-existing experiment are
bit-identical to the policy-less pipeline (pinned by the golden-key tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type

from repro.core.slack import (
    BlackBoxSlackInitializer,
    DeadlineSlackInitializer,
    ReplayInitializer,
    StaticDelaySlackInitializer,
    ZeroSlackInitializer,
)

#: Initializer constructors by serialization kind.
POLICY_KINDS: Dict[str, Callable[..., ReplayInitializer]] = {
    "replay": BlackBoxSlackInitializer,
    "zero": ZeroSlackInitializer,
    "deadline": DeadlineSlackInitializer,
    "static-delay": StaticDelaySlackInitializer,
}

#: Replay modes a slack policy can drive.  Policies stamp ``header.slack``
#: (and the real flow deadline); the omniscient and static-priority modes
#: read other header fields that only the recorded schedule can supply.
POLICY_COMPATIBLE_MODES: Tuple[str, ...] = ("lstf", "lstf-preemptive", "edf")


@dataclass(frozen=True)
class SlackPolicyDef:
    """One named slack-initialization policy as plain data.

    Attributes:
        name: Registry key (what scenarios and the CLI reference).
        kind: Initializer kind (a key of :data:`POLICY_KINDS`).
        params: Keyword parameters for the initializer, as a sorted tuple of
            ``(name, value)`` pairs so definitions stay hashable/picklable.
        description: One-line summary shown by ``python -m repro list
            --slack-policies``.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("slack-policy definitions need a non-empty name")
        if self.kind not in POLICY_KINDS:
            known = ", ".join(sorted(POLICY_KINDS))
            raise ValueError(f"unknown slack-policy kind {self.kind!r}; known: {known}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def build(self) -> ReplayInitializer:
        """Instantiate the header initializer this policy describes."""
        return POLICY_KINDS[self.kind](**dict(self.params))

    def describe_params(self) -> str:
        """Comma-joined ``name=value`` parameter summary (``"-"`` when bare)."""
        if not self.params:
            return "-"
        return ", ".join(
            f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
            for name, value in self.params
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> dict:
        """The behavioral fields only — what feeds the schedule-cache hash.

        Restricted to ``kind`` and ``params`` (mirroring
        :func:`repro.pipeline.cache.workload_fingerprint`): renaming a
        policy or rewording its description must never invalidate cache
        entries, because neither changes what the initializer does.
        """
        return {"kind": self.kind, "params": dict(self.params)}

    def to_dict(self) -> dict:
        """Lossless JSON-serializable form (registry/CLI round-trips)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "params": dict(self.params),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SlackPolicyDef":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            params=tuple(data.get("params", {}).items()),
            description=data.get("description", ""),
        )


class SlackPolicyRegistry:
    """Maps slack-policy names to their definitions, in registration order."""

    def __init__(self) -> None:
        self._definitions: Dict[str, SlackPolicyDef] = {}

    def register(self, definition: SlackPolicyDef) -> SlackPolicyDef:
        """Add (or replace) a definition; returns it for chaining."""
        self._definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> SlackPolicyDef:
        """The definition for ``name`` (KeyError listing known names if absent)."""
        try:
            return self._definitions[name]
        except KeyError:
            known = ", ".join(sorted(self._definitions))
            raise KeyError(f"unknown slack policy {name!r}; known: {known}") from None

    def names(self) -> List[str]:
        """All registered policy names, in registration order."""
        return list(self._definitions)

    def definitions(self) -> List[SlackPolicyDef]:
        """All registered definitions, in registration order."""
        return list(self._definitions.values())

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self):
        return iter(self._definitions.values())


#: The process-wide slack-policy registry (populated below at import time).
SLACK_POLICIES = SlackPolicyRegistry()


def register_slack_policy(definition: SlackPolicyDef) -> SlackPolicyDef:
    """Register ``definition`` in the global registry."""
    return SLACK_POLICIES.register(definition)


# ---------------------------------------------------------------------- #
# Built-in definitions
# ---------------------------------------------------------------------- #
register_slack_policy(
    SlackPolicyDef(
        name="replay",
        kind="replay",
        description="black-box replay slack o(p) - i(p) - tmin (Section 2; the default)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="zero",
        kind="zero",
        description="zero slack for every packet: delay minimization (Section 3.2 limit)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="deadline",
        kind="deadline",
        params=(("no_deadline_slack", 1.0),),
        description="deadline minus ideal bottleneck residual; untagged flows get 1s",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="static-delay",
        kind="static-delay",
        params=(("slack_seconds", 1.0),),
        description="per-flow constant slack (LSTF as FIFO+, Section 3.2)",
    )
)
