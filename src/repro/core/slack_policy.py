"""The slack-policy registry: named, parameterized slack initialization.

LSTF is one mechanism with many personalities: everything interesting about
it lives in how each packet's slack is initialized at the ingress.  Section 2
of the paper initializes slack from a recorded schedule (replay); Section 3
replaces the recording with practical heuristics (zero slack for delay
minimization, deadline-minus-residual for deadline traffic, a per-flow
constant for FIFO+-style tail latency, flow-size-proportional slack for mean
FCT, a virtual-clock credit for fairness) and shows LSTF remains competitive.

A :class:`SlackPolicyDef` captures one such initialization scheme as plain
data — a ``kind`` naming the implementation plus keyword parameters —
mirroring the :mod:`repro.traffic.registry` pattern: definitions are frozen,
hashable, picklable value objects with a lossless ``to_dict``/``from_dict``
round-trip, so they can feed the schedule cache's content hash, ship to pool
workers, and be listed by the CLI (``python -m repro list --slack-policies``).

Every kind can materialize in up to two **application modes**, and the
registry is the single source of truth for both faces of the paper:

* **replay** (:meth:`SlackPolicyDef.build_initializer`) — a
  :class:`~repro.core.slack.ReplayInitializer` stamping headers of packets
  re-injected from a recorded schedule (the Section-2 harness, and
  Section-3 heuristics evaluated on recorded traffic);
* **live** (:meth:`SlackPolicyDef.build_live`) — a
  :class:`~repro.core.slack.SlackPolicy` stamping packets at send time as
  sources emit them (the Section-3 deployment Figures 2–4 measure; no
  recorded schedule exists or is needed).

The global :data:`SLACK_POLICIES` registry ships the built-in policies:

============== ========= ====================================================
``replay``     replay    the Section-2 black-box replay initialization
                         (``o(p) - i(p) - tmin``) — the replay default
``zero``       both      zero slack for every packet (delay minimization)
``deadline``   replay    flow deadline minus the ideal bottleneck residual
                         (deadline traffic first; untagged flows get a
                         constant)
``static-delay`` both    one constant slack per packet (LSTF as FIFO+)
``flow-size``  live      ``slack(p) = flow_size(p) * D`` — LSTF approximates
                         SJF (Section 3.1; Figure 2)
``fairness``   live      virtual-clock credit accumulation (Section 3.3;
                         Figure 4)
``null``       live      leave headers untouched (explicit no-op)
============== ========= ====================================================

A :class:`~repro.pipeline.scenario.Scenario` references a policy by name via
its ``slack_policy`` field (and picks the application mode via
``slack_mode``); when the field is ``None`` nothing changes — cache keys,
replay behaviour, and every pre-existing experiment are bit-identical to the
policy-less pipeline (pinned by the golden-key tests).  The full contract a
policy must satisfy is documented in ``docs/slack-policies.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.slack import (
    BlackBoxSlackInitializer,
    ConstantSlackPolicy,
    DeadlineSlackInitializer,
    FairnessSlackPolicy,
    FlowSizeSlackPolicy,
    NullSlackPolicy,
    ReplayInitializer,
    SlackPolicy,
    StaticDelaySlackInitializer,
    ZeroSlackInitializer,
)


@dataclass(frozen=True)
class PolicyKind:
    """One slack-initialization implementation and the modes it supports.

    Attributes:
        name: Serialization kind (the key of :data:`POLICY_KINDS`).
        replay_factory: Constructor for the kind's
            :class:`~repro.core.slack.ReplayInitializer`, or ``None`` when
            the kind cannot initialize from a recorded schedule.
        live_factory: Constructor for the kind's send-time
            :class:`~repro.core.slack.SlackPolicy`, or ``None`` when the
            kind needs a recorded schedule to compute slack at all.
    """

    name: str
    replay_factory: Optional[Callable[..., ReplayInitializer]] = None
    live_factory: Optional[Callable[..., SlackPolicy]] = None

    @property
    def supports_replay(self) -> bool:
        """Whether this kind can stamp replayed packets from records."""
        return self.replay_factory is not None

    @property
    def supports_live(self) -> bool:
        """Whether this kind can stamp packets at send time."""
        return self.live_factory is not None


def _zero_live() -> SlackPolicy:
    """Live face of the ``zero`` kind: every packet starts with zero slack."""
    return ConstantSlackPolicy(slack=0.0)


def _static_delay_live(slack_seconds: float = 1.0) -> SlackPolicy:
    """Live face of ``static-delay``: the same constant, stamped at send time."""
    return ConstantSlackPolicy(slack=slack_seconds)


#: Policy implementations by serialization kind.  A kind missing one factory
#: simply does not support that application mode — asking for it is a
#: :class:`ValueError`, never a silent fallback.
POLICY_KINDS: Dict[str, PolicyKind] = {
    kind.name: kind
    for kind in (
        PolicyKind("replay", replay_factory=BlackBoxSlackInitializer),
        PolicyKind(
            "zero", replay_factory=ZeroSlackInitializer, live_factory=_zero_live
        ),
        PolicyKind("deadline", replay_factory=DeadlineSlackInitializer),
        PolicyKind(
            "static-delay",
            replay_factory=StaticDelaySlackInitializer,
            live_factory=_static_delay_live,
        ),
        PolicyKind("flow-size", live_factory=FlowSizeSlackPolicy),
        PolicyKind("fairness", live_factory=FairnessSlackPolicy),
        PolicyKind("null", live_factory=NullSlackPolicy),
    )
}

#: Replay modes a slack policy can drive.  Policies stamp ``header.slack``
#: (and the real flow deadline); the omniscient and static-priority modes
#: read other header fields that only the recorded schedule can supply.
POLICY_COMPATIBLE_MODES: Tuple[str, ...] = ("lstf", "lstf-preemptive", "edf")

#: The two application modes a scenario can request (``Scenario.slack_mode``).
SLACK_MODES: Tuple[str, ...] = ("replay", "live")


@dataclass(frozen=True)
class SlackPolicyDef:
    """One named slack-initialization policy as plain data.

    Attributes:
        name: Registry key (what scenarios and the CLI reference).
        kind: Initializer kind (a key of :data:`POLICY_KINDS`).
        params: Keyword parameters for the initializer, as a sorted tuple of
            ``(name, value)`` pairs so definitions stay hashable/picklable.
        description: One-line summary shown by ``python -m repro list
            --slack-policies``.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, object], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("slack-policy definitions need a non-empty name")
        if self.kind not in POLICY_KINDS:
            known = ", ".join(sorted(POLICY_KINDS))
            raise ValueError(f"unknown slack-policy kind {self.kind!r}; known: {known}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # ------------------------------------------------------------------ #
    # Capabilities
    # ------------------------------------------------------------------ #
    @property
    def supports_replay(self) -> bool:
        """Whether this policy can initialize replayed packets from records."""
        return POLICY_KINDS[self.kind].supports_replay

    @property
    def supports_live(self) -> bool:
        """Whether this policy can stamp packets at send time (live traffic)."""
        return POLICY_KINDS[self.kind].supports_live

    def capability(self) -> str:
        """Human-readable mode support: ``replay``, ``live``, or ``live+replay``."""
        modes = []
        if self.supports_live:
            modes.append("live")
        if self.supports_replay:
            modes.append("replay")
        return "+".join(modes)

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def build_initializer(self) -> ReplayInitializer:
        """Instantiate this policy's replay-path header initializer.

        Raises:
            ValueError: if the policy is live-only (its slack cannot be
                computed from a :class:`~repro.core.schedule.PacketRecord`).
        """
        kind = POLICY_KINDS[self.kind]
        if kind.replay_factory is None:
            raise ValueError(
                f"slack policy {self.name!r} is live-only (capability "
                f"{self.capability()!r}): it cannot initialize replayed packets"
            )
        return kind.replay_factory(**dict(self.params))

    def build(self) -> ReplayInitializer:
        """Alias of :meth:`build_initializer` (the pre-unification name)."""
        return self.build_initializer()

    def build_live(self) -> SlackPolicy:
        """Instantiate this policy's send-time :class:`SlackPolicy`.

        The returned object is installed on a network
        (``network.slack_policy = ...``) so hosts stamp every injected
        packet via ``on_packet_sent`` — no recorded schedule involved.

        Raises:
            ValueError: if the policy is replay-only (its slack depends on
                recorded output times).
        """
        kind = POLICY_KINDS[self.kind]
        if kind.live_factory is None:
            raise ValueError(
                f"slack policy {self.name!r} is replay-only (capability "
                f"{self.capability()!r}): it cannot stamp live packets at send time"
            )
        return kind.live_factory(**dict(self.params))

    def with_params(self, **updates) -> "SlackPolicyDef":
        """A derived definition with ``updates`` merged over the parameters.

        Used when an experiment sweeps a policy parameter (e.g. Figure 4's
        fair-share rate estimate): the derived definition keeps the name and
        kind, so its cache-key fingerprint differs from the base definition
        exactly in the swept parameters.

        Parameter names are validated against the kind's factory signatures
        up front, so a typo'd sweep fails here — at expansion time, with the
        accepted names in the message — rather than as a ``TypeError`` deep
        inside a pool worker (after the bogus name already fed a cache key).
        """
        import inspect

        kind = POLICY_KINDS[self.kind]
        for factory in (kind.replay_factory, kind.live_factory):
            if factory is None:
                continue
            signature = inspect.signature(factory)
            if any(
                parameter.kind is inspect.Parameter.VAR_KEYWORD
                for parameter in signature.parameters.values()
            ):
                continue
            unknown = set(updates) - set(signature.parameters)
            if unknown:
                raise ValueError(
                    f"slack policy {self.name!r} (kind {self.kind!r}) does not "
                    f"accept parameter(s) {', '.join(sorted(unknown))}; "
                    f"accepted: {', '.join(sorted(signature.parameters))}"
                )
        merged = dict(self.params)
        merged.update(updates)
        return SlackPolicyDef(
            name=self.name,
            kind=self.kind,
            params=tuple(merged.items()),
            description=self.description,
        )

    def describe_params(self) -> str:
        """Comma-joined ``name=value`` parameter summary (``"-"`` when bare)."""
        if not self.params:
            return "-"
        return ", ".join(
            f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
            for name, value in self.params
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> dict:
        """The behavioral fields only — what feeds the schedule-cache hash.

        Restricted to ``kind`` and ``params`` (mirroring
        :func:`repro.pipeline.cache.workload_fingerprint`): renaming a
        policy or rewording its description must never invalidate cache
        entries, because neither changes what the initializer does.
        """
        return {"kind": self.kind, "params": dict(self.params)}

    def to_dict(self) -> dict:
        """Lossless JSON-serializable form (registry/CLI round-trips)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "params": dict(self.params),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SlackPolicyDef":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            params=tuple(data.get("params", {}).items()),
            description=data.get("description", ""),
        )


class SlackPolicyRegistry:
    """Maps slack-policy names to their definitions, in registration order."""

    def __init__(self) -> None:
        self._definitions: Dict[str, SlackPolicyDef] = {}

    def register(self, definition: SlackPolicyDef) -> SlackPolicyDef:
        """Add (or replace) a definition; returns it for chaining."""
        self._definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> SlackPolicyDef:
        """The definition for ``name`` (KeyError listing known names if absent)."""
        try:
            return self._definitions[name]
        except KeyError:
            known = ", ".join(sorted(self._definitions))
            raise KeyError(f"unknown slack policy {name!r}; known: {known}") from None

    def names(self) -> List[str]:
        """All registered policy names, in registration order."""
        return list(self._definitions)

    def definitions(self) -> List[SlackPolicyDef]:
        """All registered definitions, in registration order."""
        return list(self._definitions.values())

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self):
        return iter(self._definitions.values())


#: The process-wide slack-policy registry (populated below at import time).
SLACK_POLICIES = SlackPolicyRegistry()


def register_slack_policy(definition: SlackPolicyDef) -> SlackPolicyDef:
    """Register ``definition`` in the global registry."""
    return SLACK_POLICIES.register(definition)


# ---------------------------------------------------------------------- #
# Built-in definitions
# ---------------------------------------------------------------------- #
register_slack_policy(
    SlackPolicyDef(
        name="replay",
        kind="replay",
        description="black-box replay slack o(p) - i(p) - tmin (Section 2; the default)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="zero",
        kind="zero",
        description="zero slack for every packet: delay minimization (Section 3.2 limit)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="deadline",
        kind="deadline",
        params=(("no_deadline_slack", 1.0),),
        description="deadline minus ideal bottleneck residual; untagged flows get 1s",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="static-delay",
        kind="static-delay",
        params=(("slack_seconds", 1.0),),
        description="per-flow constant slack (LSTF as FIFO+, Section 3.2)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="flow-size",
        kind="flow-size",
        params=(("scale", 1.0),),
        description="slack(p) = flow_size(p) * D: LSTF approximates SJF (Section 3.1)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="fairness",
        kind="fairness",
        params=(("rate_estimate_bps", 1e6),),
        description="virtual-clock credit at a fair-share rate estimate (Section 3.3)",
    )
)
register_slack_policy(
    SlackPolicyDef(
        name="null",
        kind="null",
        description="leave headers untouched (explicit no-op live policy)",
    )
)
