"""Replay evaluation metrics.

Section 2.3 evaluates a replay with two headline numbers — the fraction of
packets that are *overdue* (exit later than in the original schedule) and the
fraction overdue by more than a threshold ``T`` (one transmission time on the
bottleneck link) — plus the CDF of per-packet queueing-delay ratios shown in
Figure 1.  This module computes all three from a pair of schedules.

Two implementation paths coexist:

* the **reference** path (:func:`compare_schedules`,
  :func:`schedule_statistics`) materializes per-packet lists and computes
  exact percentiles — what every existing experiment row and golden fixture
  pins, bit for bit;
* the **streaming** path (:class:`StreamingScheduleStatistics`,
  :class:`StreamingReplayComparison`) folds records one at a time into
  mergeable accumulators — exact count/sum/max fields, sketch-based
  percentiles within the documented ε (see
  :class:`repro.utils.stats.QuantileSketch` and docs/scale.md) — so a
  scale-tier cell never holds a full per-packet delay or ratio list, and
  per-shard partials merge deterministically in shard-index order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.core.schedule import PacketRecord, Schedule
from repro.utils.stats import QuantileSketch


@dataclass
class ReplayMetrics:
    """Comparison of a replay against the original schedule it targeted.

    Attributes:
        total_packets: Number of packets matched between the two schedules.
        missing_packets: Packets of the original schedule that never exited
            in the replay (e.g. still queued when the replay run ended).
            They are counted as overdue.
        overdue_count: Packets with ``o'(p) > o(p)`` (beyond ``tolerance``).
        overdue_beyond_threshold_count: Packets with ``o'(p) > o(p) + threshold``.
        threshold: The lateness threshold ``T`` used (seconds).
        mean_lateness: Mean of ``max(0, o'(p) - o(p))`` over matched packets.
        max_lateness: Largest lateness observed.
        queueing_delay_ratios: Per-packet ratio of replay queueing delay to
            original queueing delay (Figure 1); packets with zero original
            queueing delay are skipped.
        deadline_total: Flows carrying a completion deadline (0 when the
            workload was not deadline-tagged).
        deadline_met_original: Deadline flows whose *last packet's original*
            output time met the deadline.
        deadline_met_replay: Deadline flows whose *last packet's replay*
            output time met the deadline (a flow with any packet missing
            from the replay counts as missed).
        deadline_flows_delivered: Deadline flows with *no* packet missing
            from the replay — the denominator that separates "missed because
            late" from "missed because the network destroyed a packet" under
            fault injection.
    """

    total_packets: int = 0
    missing_packets: int = 0
    overdue_count: int = 0
    overdue_beyond_threshold_count: int = 0
    threshold: float = 0.0
    mean_lateness: float = 0.0
    max_lateness: float = 0.0
    queueing_delay_ratios: List[float] = field(default_factory=list)
    deadline_total: int = 0
    deadline_met_original: int = 0
    deadline_met_replay: int = 0
    deadline_flows_delivered: int = 0

    @property
    def overdue_fraction(self) -> float:
        """Fraction of packets overdue (the paper's "Total" column in Table 1)."""
        if self.total_packets == 0:
            return 0.0
        return self.overdue_count / self.total_packets

    @property
    def overdue_beyond_threshold_fraction(self) -> float:
        """Fraction overdue by more than ``threshold`` (Table 1's "> T" column)."""
        if self.total_packets == 0:
            return 0.0
        return self.overdue_beyond_threshold_count / self.total_packets

    @property
    def deadline_met_fraction_original(self) -> float:
        """Fraction of deadline-tagged flows on time in the original run."""
        if self.deadline_total == 0:
            return 0.0
        return self.deadline_met_original / self.deadline_total

    @property
    def deadline_met_fraction_replay(self) -> float:
        """Fraction of deadline-tagged flows on time in the replay."""
        if self.deadline_total == 0:
            return 0.0
        return self.deadline_met_replay / self.deadline_total

    @property
    def delivered_fraction(self) -> float:
        """Fraction of original packets that exited in the replay.

        1.0 on a fault-free replay of a drop-free recording; under fault
        injection this is the packet-level survival rate.  An empty
        comparison counts as fully delivered.
        """
        if self.total_packets == 0:
            return 1.0
        return (self.total_packets - self.missing_packets) / self.total_packets

    @property
    def deadline_met_over_delivered_fraction(self) -> float:
        """Deadline-met fraction among fully *delivered* deadline flows.

        Conditions the replay deadline metric on survival: of the deadline
        flows whose packets all made it through, how many were on time?
        Separates scheduling quality from fault-induced loss (under faults,
        :attr:`deadline_met_fraction_replay` conflates the two).
        """
        if self.deadline_flows_delivered == 0:
            return 0.0
        return self.deadline_met_replay / self.deadline_flows_delivered

    def summary(self) -> Dict[str, float]:
        """Headline numbers as a dictionary (used by the experiment tables)."""
        return {
            "total_packets": float(self.total_packets),
            "overdue_fraction": self.overdue_fraction,
            "overdue_beyond_threshold_fraction": self.overdue_beyond_threshold_fraction,
            "mean_lateness": self.mean_lateness,
            "max_lateness": self.max_lateness,
        }


def compare_schedules(
    original: Schedule,
    replay: Schedule,
    threshold: float,
    tolerance: float = 1e-9,
) -> ReplayMetrics:
    """Compare a replay schedule against the original it tried to reproduce.

    Packets are matched by packet id (the replay engine keys replayed records
    by the original packet's id).  A packet present in the original but
    absent from the replay — it never exited before the replay run ended —
    counts as overdue and as overdue-beyond-threshold.

    Args:
        original: The target schedule.
        replay: The schedule the candidate UPS produced.
        threshold: The paper's ``T`` — one transmission time on the
            bottleneck link.
        tolerance: Numerical slop below which a late exit is not counted as
            overdue (floating-point guard, default 1 ns).
    """
    metrics = ReplayMetrics(threshold=threshold)
    lateness_total = 0.0
    # Deadlines are *flow*-completion targets: a flow meets its deadline only
    # if its last packet does, so deadline accounting aggregates per flow id
    # as [deadline, last original output, last replay output, any missing].
    deadline_flows: Dict[int, List[float]] = {}

    for record in original:
        metrics.total_packets += 1
        replayed = replay.get(record.packet_id)
        if record.deadline is not None:
            entry = deadline_flows.setdefault(
                record.flow_id, [record.deadline, -math.inf, -math.inf, False]
            )
            entry[1] = max(entry[1], record.output_time)
            if replayed is None:
                entry[3] = True
            else:
                entry[2] = max(entry[2], replayed.output_time)
        if replayed is None:
            metrics.missing_packets += 1
            metrics.overdue_count += 1
            metrics.overdue_beyond_threshold_count += 1
            continue
        lateness = replayed.output_time - record.output_time
        if lateness > tolerance:
            metrics.overdue_count += 1
            if lateness > threshold:
                metrics.overdue_beyond_threshold_count += 1
            lateness_total += lateness
            metrics.max_lateness = max(metrics.max_lateness, lateness)

        original_queueing = record.total_queueing_delay
        if original_queueing > 0:
            metrics.queueing_delay_ratios.append(
                replayed.total_queueing_delay / original_queueing
            )

    for deadline, original_last, replay_last, missing in deadline_flows.values():
        metrics.deadline_total += 1
        if original_last <= deadline + tolerance:
            metrics.deadline_met_original += 1
        if not missing:
            metrics.deadline_flows_delivered += 1
            if replay_last <= deadline + tolerance:
                metrics.deadline_met_replay += 1

    if metrics.total_packets:
        metrics.mean_lateness = lateness_total / metrics.total_packets
    return metrics


@dataclass
class ScheduleStatistics:
    """Standalone quality metrics of one schedule (no replay comparison).

    Where :class:`ReplayMetrics` judges a replay *against* the original it
    targeted, this judges a schedule on its own terms — the view the paper's
    Section-3 heuristic comparison needs, where FIFO, SRPT, and heuristic
    LSTF each produce their own schedule from the same offered traffic.

    Attributes:
        packets: Delivered packets in the schedule.
        mean_delay: Mean end-to-end packet delay ``o(p) - i(p)`` (seconds).
        p99_delay: 99th-percentile end-to-end packet delay (seconds).
        max_delay: Largest end-to-end packet delay (seconds).
        deadline_total: Flows carrying a completion deadline.
        deadline_met: Deadline flows whose last packet exited on time.
    """

    packets: int = 0
    mean_delay: float = 0.0
    p99_delay: float = 0.0
    max_delay: float = 0.0
    deadline_total: int = 0
    deadline_met: int = 0

    @property
    def deadline_met_fraction(self) -> float:
        """Fraction of deadline-tagged flows completed on time."""
        if self.deadline_total == 0:
            return 0.0
        return self.deadline_met / self.deadline_total


def schedule_statistics(schedule: Schedule, tolerance: float = 1e-9) -> ScheduleStatistics:
    """Delay and deadline statistics of one schedule, measured directly.

    A flow meets its deadline when its *last* packet's output time does
    (same per-flow aggregation as :func:`compare_schedules`, so a direct
    measurement of a schedule and the replay-side deadline accounting
    agree on what "met" means).

    Args:
        schedule: The schedule to summarize.
        tolerance: Numerical slop applied to the deadline comparison
            (floating-point guard, default 1 ns).
    """
    from repro.utils.stats import percentile

    stats = ScheduleStatistics()
    delays: List[float] = []
    deadline_flows: Dict[int, List[float]] = {}
    # Iterate in canonical (ingress time, packet id) order, not insertion
    # order: float summation is order-sensitive, and a schedule loaded from
    # the cache is inserted in sorted order while a freshly recorded one is
    # inserted in delivery order — the mean must be bit-identical either way.
    for record in schedule.records():
        stats.packets += 1
        delays.append(record.network_delay)
        if record.deadline is not None:
            entry = deadline_flows.setdefault(record.flow_id, [record.deadline, -math.inf])
            entry[1] = max(entry[1], record.output_time)
    if delays:
        stats.mean_delay = sum(delays) / len(delays)
        stats.p99_delay = percentile(delays, 99)
        stats.max_delay = max(delays)
    for deadline, last_output in deadline_flows.values():
        stats.deadline_total += 1
        if last_output <= deadline + tolerance:
            stats.deadline_met += 1
    return stats


def fraction_overdue(
    original: Schedule, replay: Schedule, tolerance: float = 1e-9
) -> float:
    """Convenience wrapper returning only the overdue fraction."""
    return compare_schedules(original, replay, threshold=0.0, tolerance=tolerance).overdue_fraction


def lateness_distribution(
    original: Schedule, replay: Schedule
) -> List[float]:
    """Per-packet lateness ``o'(p) - o(p)`` for every packet present in both runs."""
    lateness: List[float] = []
    for record in original:
        replayed = replay.get(record.packet_id)
        if replayed is not None:
            lateness.append(replayed.output_time - record.output_time)
    return lateness


# ---------------------------------------------------------------------- #
# Streaming / mergeable metrics (the scale tier's path)
# ---------------------------------------------------------------------- #
class StreamingScheduleStatistics:
    """Mergeable streaming accumulator behind :func:`schedule_statistics`.

    Folds records one at a time — O(1) state for count/sum/max, a
    :class:`~repro.utils.stats.QuantileSketch` for the delay percentile, and
    an O(#deadline-flows) dict for deadline accounting — so a cell
    summarizing a million-packet schedule never materializes the per-packet
    delay list the reference path builds.

    **Equivalence contract** (asserted by the golden equivalence tests):
    fed the same records in the same order as the reference path,
    :meth:`finalize` reproduces :func:`schedule_statistics` *bit-identically*
    for ``packets`` / ``mean_delay`` / ``max_delay`` / ``deadline_total`` /
    ``deadline_met`` (the mean is a plain left-fold running sum, the same
    arithmetic as ``sum(list) / len``), and within the sketch's documented
    relative error ε for ``p99_delay``.

    **Merge contract**: partial accumulators over disjoint record chunks
    merge into one.  Integer counts and the sketch's bins merge exactly
    (commutative); float sums are folded ``self then other``, so merging
    shard partials **in shard-index order** yields the same bits on every
    run, serial or parallel — the shard runner's determinism rule.
    """

    def __init__(self, alpha: float = QuantileSketch.DEFAULT_ALPHA) -> None:
        self.delays = QuantileSketch(alpha)
        # flow id -> [deadline, last output time]; same per-flow aggregation
        # as schedule_statistics.
        self._deadline_flows: Dict[int, List[float]] = {}

    @property
    def packets(self) -> int:
        """Records folded in so far."""
        return self.delays.count

    def add(self, record: PacketRecord) -> None:
        """Fold one packet record into the accumulator."""
        self.delays.add(record.network_delay)
        if record.deadline is not None:
            entry = self._deadline_flows.setdefault(
                record.flow_id, [record.deadline, -math.inf]
            )
            entry[1] = max(entry[1], record.output_time)

    def extend(self, records: Iterable[PacketRecord]) -> None:
        """Fold many records (e.g. one shard's cursor) into the accumulator."""
        for record in records:
            self.add(record)

    def merge(self, other: "StreamingScheduleStatistics") -> "StreamingScheduleStatistics":
        """A new accumulator equivalent to seeing both record streams.

        Fold order is ``self`` then ``other``: callers merging shard
        partials must do so in shard-index order for bit-stable sums.
        """
        merged = StreamingScheduleStatistics(alpha=self.delays.alpha)
        merged.delays = self.delays.merge(other.delays)
        merged._deadline_flows = {
            flow_id: list(entry) for flow_id, entry in self._deadline_flows.items()
        }
        for flow_id, entry in other._deadline_flows.items():
            mine = merged._deadline_flows.setdefault(flow_id, [entry[0], -math.inf])
            mine[1] = max(mine[1], entry[1])
        return merged

    def finalize(self, tolerance: float = 1e-9) -> ScheduleStatistics:
        """The accumulated :class:`ScheduleStatistics`.

        ``p99_delay`` comes from the sketch (within ε of the exact
        percentile); every other field is exact.
        """
        stats = ScheduleStatistics(packets=self.packets)
        if self.packets:
            stats.mean_delay = self.delays.mean
            stats.p99_delay = self.delays.quantile(99)
            stats.max_delay = self.delays.maximum
        for deadline, last_output in self._deadline_flows.values():
            stats.deadline_total += 1
            if last_output <= deadline + tolerance:
                stats.deadline_met += 1
        return stats

    # ------------------------------------------------------------------ #
    # Serialization (shard partials cross process boundaries as dicts)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable form (lossless)."""
        return {
            "delays": self.delays.to_dict(),
            "deadline_flows": {
                str(flow_id): list(entry)
                for flow_id, entry in sorted(self._deadline_flows.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingScheduleStatistics":
        """Inverse of :meth:`to_dict`."""
        stats = cls()
        stats.delays = QuantileSketch.from_dict(data["delays"])
        stats._deadline_flows = {
            int(flow_id): list(entry)
            for flow_id, entry in data["deadline_flows"].items()
        }
        return stats


def streaming_schedule_statistics(
    records: Iterable[PacketRecord],
    tolerance: float = 1e-9,
    alpha: float = QuantileSketch.DEFAULT_ALPHA,
) -> ScheduleStatistics:
    """:func:`schedule_statistics` over a record *iterator*, streamed.

    Accepts any record source — ``schedule.records()``, a shard cursor
    (:func:`repro.core.schedule.iter_schedule_records`) — and holds O(sketch)
    memory instead of a per-packet delay list.  Same equivalence contract as
    :class:`StreamingScheduleStatistics`.
    """
    accumulator = StreamingScheduleStatistics(alpha=alpha)
    accumulator.extend(records)
    return accumulator.finalize(tolerance=tolerance)


class StreamingReplayComparison:
    """Mergeable streaming accumulator behind :func:`compare_schedules`.

    Walks original records one at a time against a replay schedule, keeping
    the Figure-1 queueing-delay ratios in a
    :class:`~repro.utils.stats.QuantileSketch` instead of the per-packet
    list :attr:`ReplayMetrics.queueing_delay_ratios` materializes — the last
    unbounded per-packet list on the replay evaluation path.

    **Equivalence contract** (asserted by the golden equivalence tests): fed
    the original records in the same order as :func:`compare_schedules`,
    :meth:`finalize` reproduces every count field
    (``total_packets`` / ``missing_packets`` / ``overdue_count`` /
    ``overdue_beyond_threshold_count`` / all deadline counters) exactly,
    ``mean_lateness`` / ``max_lateness`` bit-identically (same left-fold
    arithmetic), and summarizes the ratio distribution exactly for
    count/sum/min/max with sketch-ε percentiles.  The finalized
    :class:`ReplayMetrics` carries an **empty** ``queueing_delay_ratios``
    list — by design, that list is what this path exists to avoid.

    **Merge contract**: partials over disjoint original-record chunks merge
    with the same shard-index-order rule as
    :class:`StreamingScheduleStatistics`.
    """

    def __init__(
        self,
        replay: Schedule,
        threshold: float,
        tolerance: float = 1e-9,
        alpha: float = QuantileSketch.DEFAULT_ALPHA,
    ) -> None:
        self.replay = replay
        self.threshold = threshold
        self.tolerance = tolerance
        self.total_packets = 0
        self.missing_packets = 0
        self.overdue_count = 0
        self.overdue_beyond_threshold_count = 0
        self.lateness_total = 0.0
        self.max_lateness = 0.0
        self.ratios = QuantileSketch(alpha)
        # flow id -> [deadline, last original output, last replay output,
        # any-packet-missing flag]; same aggregation as compare_schedules.
        self._deadline_flows: Dict[int, List[float]] = {}

    def add(self, record: PacketRecord) -> None:
        """Fold one *original* record, matching it against the replay."""
        self.total_packets += 1
        replayed = self.replay.get(record.packet_id)
        if record.deadline is not None:
            entry = self._deadline_flows.setdefault(
                record.flow_id, [record.deadline, -math.inf, -math.inf, False]
            )
            entry[1] = max(entry[1], record.output_time)
            if replayed is None:
                entry[3] = True
            else:
                entry[2] = max(entry[2], replayed.output_time)
        if replayed is None:
            self.missing_packets += 1
            self.overdue_count += 1
            self.overdue_beyond_threshold_count += 1
            return
        lateness = replayed.output_time - record.output_time
        if lateness > self.tolerance:
            self.overdue_count += 1
            if lateness > self.threshold:
                self.overdue_beyond_threshold_count += 1
            self.lateness_total += lateness
            self.max_lateness = max(self.max_lateness, lateness)
        original_queueing = record.total_queueing_delay
        if original_queueing > 0:
            self.ratios.add(replayed.total_queueing_delay / original_queueing)

    def extend(self, records: Iterable[PacketRecord]) -> None:
        """Fold many original records (e.g. one shard's cursor)."""
        for record in records:
            self.add(record)

    def merge(self, other: "StreamingReplayComparison") -> "StreamingReplayComparison":
        """A new accumulator equivalent to seeing both original-record streams.

        Fold order is ``self`` then ``other`` (shard-index order for
        bit-stable float sums); both sides must compare against the same
        replay under the same threshold/tolerance.
        """
        if (other.threshold, other.tolerance) != (self.threshold, self.tolerance):
            raise ValueError(
                "cannot merge replay comparisons with different "
                f"threshold/tolerance ({self.threshold}/{self.tolerance} != "
                f"{other.threshold}/{other.tolerance})"
            )
        merged = StreamingReplayComparison(
            self.replay, self.threshold, self.tolerance, alpha=self.ratios.alpha
        )
        merged.total_packets = self.total_packets + other.total_packets
        merged.missing_packets = self.missing_packets + other.missing_packets
        merged.overdue_count = self.overdue_count + other.overdue_count
        merged.overdue_beyond_threshold_count = (
            self.overdue_beyond_threshold_count + other.overdue_beyond_threshold_count
        )
        merged.lateness_total = self.lateness_total + other.lateness_total
        merged.max_lateness = max(self.max_lateness, other.max_lateness)
        merged.ratios = self.ratios.merge(other.ratios)
        merged._deadline_flows = {
            flow_id: list(entry) for flow_id, entry in self._deadline_flows.items()
        }
        for flow_id, entry in other._deadline_flows.items():
            mine = merged._deadline_flows.setdefault(
                flow_id, [entry[0], -math.inf, -math.inf, False]
            )
            mine[1] = max(mine[1], entry[1])
            mine[2] = max(mine[2], entry[2])
            mine[3] = bool(mine[3]) or bool(entry[3])
        return merged

    def finalize(self) -> ReplayMetrics:
        """The accumulated :class:`ReplayMetrics` (empty ratio list by design)."""
        metrics = ReplayMetrics(
            total_packets=self.total_packets,
            missing_packets=self.missing_packets,
            overdue_count=self.overdue_count,
            overdue_beyond_threshold_count=self.overdue_beyond_threshold_count,
            threshold=self.threshold,
            max_lateness=self.max_lateness,
        )
        for deadline, original_last, replay_last, missing in self._deadline_flows.values():
            metrics.deadline_total += 1
            if original_last <= deadline + self.tolerance:
                metrics.deadline_met_original += 1
            if not missing:
                metrics.deadline_flows_delivered += 1
                if replay_last <= deadline + self.tolerance:
                    metrics.deadline_met_replay += 1
        if metrics.total_packets:
            metrics.mean_lateness = self.lateness_total / metrics.total_packets
        return metrics


def compare_schedules_streaming(
    original_records: Iterable[PacketRecord],
    replay: Schedule,
    threshold: float,
    tolerance: float = 1e-9,
) -> ReplayMetrics:
    """:func:`compare_schedules` over an original-record *iterator*, streamed.

    Same equivalence contract as :class:`StreamingReplayComparison`; the
    returned metrics carry no per-packet ratio list (the ratio summary lives
    in the comparison object — construct one directly when the sketch is
    needed).
    """
    comparison = StreamingReplayComparison(replay, threshold, tolerance=tolerance)
    comparison.extend(original_records)
    return comparison.finalize()
