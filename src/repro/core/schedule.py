"""Schedules: the paper's central object.

A *schedule* is the set ``{(path(p), i(p), o(p))}`` produced by running some
collection of scheduling algorithms over a fixed input load (Section 2.1).
:class:`PacketRecord` captures one packet's entry, :class:`Schedule` the whole
set, along with the per-hop timing detail needed for omniscient replay and for
congestion-point analysis.

Schedules come from three places:

* recorded from a simulation run (:meth:`Schedule.from_tracer`),
* constructed by hand (the theory counterexamples build small viable
  schedules directly, exactly as the paper's appendix figures do), or
* loaded from disk (:func:`load_schedule`) — the pipeline's "record once,
  replay many" workflow persists recorded schedules as gzipped JSON-lines
  so replays (possibly in other processes) never re-record.

The on-disk format (``repro-schedule/1``) is one JSON object per line: a
header carrying free-form metadata (the pipeline stores the topology spec and
the cache key there) followed by one line per :class:`PacketRecord`.  The
round-trip is lossless: floats are serialized with full ``repr`` precision,
so a loaded schedule replays bit-identically to the in-memory original.

Large schedules may instead be **sharded** (``repro-schedule-manifest/1``):
a single-line JSON manifest (``<key>.manifest.json``) naming ingress-time
chunks stored as ordinary ``repro-schedule/1`` files
(``<key>.shard-<i>.jsonl.gz``), each covering a contiguous slice of the
canonical ``(ingress_time, packet_id)`` order.  Sharding is pure storage
layout: it never enters cache keys, and :func:`load_schedule` returns the
same schedule either way.  :func:`iter_schedule_records` cursors through
either form one record at a time, so scale-tier consumers (the streaming
injector, the flat-array kernels, the streaming metrics) never hold a whole
schedule in memory.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.sim.packet import Packet
from repro.sim.tracer import Tracer

#: Format tag written into the header line of serialized schedules.
SCHEDULE_FORMAT = "repro-schedule/1"

#: Format tag of the shard manifest for sharded schedules.
MANIFEST_FORMAT = "repro-schedule-manifest/1"

#: Filename suffix that marks a shard manifest.
MANIFEST_SUFFIX = ".manifest.json"


@dataclass(slots=True)
class HopTiming:
    """Original-schedule timing of one packet at one node.

    Treated as immutable by convention (not enforced: schedules construct
    millions of these on the replay hot path, and a frozen dataclass pays
    an ``object.__setattr__`` per field — ~3x the construction cost).

    Attributes:
        node: Node name.
        arrival_time: When the packet (last bit) arrived at the node.
        start_service_time: When the node started transmitting the packet —
            the paper's ``o(p, alpha)``.
        departure_time: When the last bit left the node.
    """

    node: str
    arrival_time: float
    start_service_time: Optional[float]
    departure_time: Optional[float]

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting in the node's queue before service began."""
        if self.start_service_time is None:
            return 0.0
        return self.start_service_time - self.arrival_time

    def to_list(self) -> list:
        """Compact JSON form: ``[node, arrival, start_service, departure]``."""
        return [self.node, self.arrival_time, self.start_service_time, self.departure_time]

    @classmethod
    def from_list(cls, data: Sequence) -> "HopTiming":
        """Inverse of :meth:`to_list`."""
        node, arrival, start, departure = data
        return cls(
            node=node,
            arrival_time=arrival,
            start_service_time=start,
            departure_time=departure,
        )


@dataclass(slots=True)
class PacketRecord:
    """One packet's entry in a schedule.

    Attributes:
        packet_id: Identifier of the packet in the original run.
        flow_id: Flow the packet belonged to.
        src: Source host name (the packet's ingress).
        dst: Destination host name (the packet's egress).
        size_bytes: Packet size.
        ingress_time: ``i(p)`` — when the packet entered the network.
        output_time: ``o(p)`` — when the packet's last bit left the network.
        path: Node names from source to destination (inclusive).
        hops: Per-hop timing from the original run (may be empty for
            hand-built schedules that only specify end-to-end times).
        flow_size_bytes: Size of the packet's flow, carried through so that
            replay modes that need it (e.g. SJF-flavoured analyses) have it.
        deadline: Absolute completion deadline of the packet's flow
            (``None`` when the workload carried no deadlines).  Set by
            deadline-tagging perturbations; replay evaluation reports
            deadline-met fractions for original and replay when present.
    """

    packet_id: int
    flow_id: int
    src: str
    dst: str
    size_bytes: float
    ingress_time: float
    output_time: float
    path: List[str]
    hops: List[HopTiming] = field(default_factory=list)
    flow_size_bytes: Optional[float] = None
    deadline: Optional[float] = None

    @classmethod
    def from_packet(cls, packet: Packet) -> "PacketRecord":
        """Build a record from a delivered packet of a finished simulation."""
        if packet.egress_time is None:
            raise ValueError(
                f"packet {packet.packet_id} has not exited the network; only "
                "delivered packets can enter a schedule"
            )
        hops = [
            HopTiming(
                node=hop.node,
                arrival_time=hop.arrival_time,
                start_service_time=hop.start_service_time,
                departure_time=hop.departure_time,
            )
            for hop in packet.hops
        ]
        path = [hop.node for hop in packet.hops]
        if not path or path[-1] != packet.dst:
            path = path + [packet.dst]
        return cls(
            packet_id=packet.packet_id,
            flow_id=packet.flow_id,
            src=packet.src,
            dst=packet.dst,
            size_bytes=packet.size_bytes,
            ingress_time=packet.ingress_time if packet.ingress_time is not None else 0.0,
            output_time=packet.egress_time,
            path=path,
            hops=hops,
            flow_size_bytes=packet.header.flow_size_bytes,
            deadline=packet.flow_deadline,
        )

    @property
    def network_delay(self) -> float:
        """End-to-end delay ``o(p) - i(p)`` in the original schedule."""
        return self.output_time - self.ingress_time

    @property
    def total_queueing_delay(self) -> float:
        """Sum of per-hop queueing delays in the original schedule."""
        return sum(hop.queueing_delay for hop in self.hops)

    def congestion_points(self, epsilon: float = 1e-12) -> int:
        """Number of nodes at which the packet waited more than ``epsilon``.

        This is the paper's notion of a congestion point: "a node where a
        packet is forced to wait during a given schedule".
        """
        return sum(1 for hop in self.hops if hop.queueing_delay > epsilon)

    def hop_output_times(self) -> List[float]:
        """The per-hop service-start times ``o(p, alpha_i)`` (omniscient header)."""
        times: List[float] = []
        for hop in self.hops:
            if hop.start_service_time is not None:
                times.append(hop.start_service_time)
        return times

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable form of this record (lossless)."""
        return {
            "packet_id": self.packet_id,
            "flow_id": self.flow_id,
            "src": self.src,
            "dst": self.dst,
            "size_bytes": self.size_bytes,
            "ingress_time": self.ingress_time,
            "output_time": self.output_time,
            "path": list(self.path),
            "hops": [hop.to_list() for hop in self.hops],
            "flow_size_bytes": self.flow_size_bytes,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PacketRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            packet_id=data["packet_id"],
            flow_id=data["flow_id"],
            src=data["src"],
            dst=data["dst"],
            size_bytes=data["size_bytes"],
            ingress_time=data["ingress_time"],
            output_time=data["output_time"],
            path=list(data["path"]),
            hops=[HopTiming.from_list(hop) for hop in data["hops"]],
            flow_size_bytes=data.get("flow_size_bytes"),
            deadline=data.get("deadline"),
        )


# Canonical record order (ingress time, then packet id).  attrgetter builds
# the key tuples in C — records() sits on the replay hot path, where the
# equivalent lambda costs ~2.5x as much per sort.
_RECORD_ORDER = attrgetter("ingress_time", "packet_id")


class Schedule:
    """A set of packet records indexed by packet id."""

    def __init__(self, records: Optional[Iterable[PacketRecord]] = None) -> None:
        self._records: Dict[int, PacketRecord] = {}
        #: Mutation counter: bumped by every ``add``, so derived views (the
        #: vectorized backend's per-schedule flattening cache) can detect
        #: staleness exactly instead of guessing from lengths.
        self._version = 0
        if records is not None:
            for record in records:
                self.add(record)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, record: PacketRecord) -> None:
        """Insert a record (packet ids must be unique)."""
        if record.packet_id in self._records:
            raise ValueError(f"duplicate packet id {record.packet_id} in schedule")
        self._records[record.packet_id] = record
        self._version += 1

    @classmethod
    def from_packets(
        cls, packets: Iterable[Packet], use_replay_ids: bool = False
    ) -> "Schedule":
        """Build a schedule from delivered packets.

        Args:
            packets: Delivered packets (must have egress times).
            use_replay_ids: If true, records are keyed by each packet's
                ``replay_of`` id, so a replay run's schedule lines up with the
                original schedule it was replaying.
        """
        schedule = cls()
        for packet in packets:
            record = PacketRecord.from_packet(packet)
            if use_replay_ids and packet.replay_of is not None:
                record.packet_id = packet.replay_of
            schedule.add(record)
        return schedule

    @classmethod
    def from_tracer(cls, tracer: Tracer, data_only: bool = True) -> "Schedule":
        """Build a schedule from a finished simulation's tracer."""
        packets = tracer.delivered_data_packets() if data_only else tracer.delivered
        return cls.from_packets(packets)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self._records.values())

    def __contains__(self, packet_id: int) -> bool:
        return packet_id in self._records

    def record(self, packet_id: int) -> PacketRecord:
        """The record for ``packet_id`` (raises ``KeyError`` if absent)."""
        return self._records[packet_id]

    def get(self, packet_id: int) -> Optional[PacketRecord]:
        """The record for ``packet_id``, or ``None``."""
        return self._records.get(packet_id)

    def records(self) -> List[PacketRecord]:
        """All records, ordered by ingress time (then packet id)."""
        return sorted(self._records.values(), key=_RECORD_ORDER)

    def canonical_records(self) -> List[PacketRecord]:
        """Records in the comparator's canonical order.

        The canonical order is ``(ingress_time, packet_id)`` across records,
        with each record's hops visited in ``hop_index`` order — the walk
        order of the first-divergence comparator (:mod:`repro.diff`), of
        replay injection, and of the on-disk format.  Today this is exactly
        :meth:`records`; the alias exists so every canonical-order consumer
        names the contract it depends on.
        """
        return self.records()

    def packet_ids(self) -> List[int]:
        """All packet ids present in the schedule."""
        return list(self._records.keys())

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def max_congestion_points(self, epsilon: float = 1e-12) -> int:
        """Largest per-packet congestion-point count in the schedule."""
        return max((r.congestion_points(epsilon) for r in self), default=0)

    def congestion_point_histogram(self, epsilon: float = 1e-12) -> Dict[int, int]:
        """Histogram mapping congestion-point count to number of packets."""
        histogram: Dict[int, int] = {}
        for record in self:
            count = record.congestion_points(epsilon)
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def time_span(self) -> Tuple[float, float]:
        """(earliest ingress, latest output) across all records."""
        if not self._records:
            return (0.0, 0.0)
        start = min(record.ingress_time for record in self)
        end = max(record.output_time for record in self)
        return (start, end)

    def total_bytes(self) -> float:
        """Sum of all packet sizes in the schedule."""
        return sum(record.size_bytes for record in self)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: Union[str, "os.PathLike"], meta: Optional[dict] = None) -> None:
        """Write this schedule to ``path`` as (optionally gzipped) JSON-lines.

        Paths ending in ``.gz`` are gzip-compressed.  ``meta`` is stored in
        the header line and returned by :func:`load_schedule`; the pipeline
        uses it to carry the topology spec and cache-key provenance.
        """
        save_schedule(path, self, meta=meta)

    @classmethod
    def from_jsonl(cls, path: Union[str, "os.PathLike"]) -> "Schedule":
        """Load a schedule previously written by :meth:`to_jsonl`."""
        schedule, _ = load_schedule(path)
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Schedule packets={len(self)}>"


# ---------------------------------------------------------------------- #
# On-disk JSON-lines format
# ---------------------------------------------------------------------- #
def _open_for_write(path: str, compressed: bool) -> io.TextIOBase:
    if compressed:
        return gzip.open(path, "wt", encoding="utf-8", compresslevel=5)
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: str) -> io.TextIOBase:
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _atomic_write_lines(path: str, lines: Iterable[str]) -> None:
    """Write text lines to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with _open_for_write(tmp_path, compressed=path.endswith(".gz")) as stream:
            for line in lines:
                stream.write(line)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _schedule_lines(records: Sequence[PacketRecord], meta: Optional[dict]) -> Iterator[str]:
    header = {
        "format": SCHEDULE_FORMAT,
        "packets": len(records),
        "meta": meta or {},
    }
    yield json.dumps(header) + "\n"
    for record in records:
        yield json.dumps(record.to_dict()) + "\n"


def save_schedule(
    path: Union[str, "os.PathLike"],
    schedule: Schedule,
    meta: Optional[dict] = None,
) -> None:
    """Serialize ``schedule`` to ``path`` (gzipped when the name ends in ``.gz``).

    The write is atomic (temp file + ``os.replace``) so concurrent pipeline
    workers racing to populate the same cache entry cannot leave a truncated
    file behind.
    """
    path = os.fspath(path)
    _atomic_write_lines(path, _schedule_lines(schedule.records(), meta))


def shard_file_name(manifest_path: Union[str, "os.PathLike"], index: int) -> str:
    """Filename (no directory) of shard ``index`` of a sharded schedule.

    The manifest ``<key>.manifest.json`` owns shards
    ``<key>.shard-<i>.jsonl.gz`` in the same directory — the naming is a
    pure function of the manifest path, so callers never guess.
    """
    base = os.path.basename(os.fspath(manifest_path))
    if not base.endswith(MANIFEST_SUFFIX):
        raise ValueError(f"{manifest_path}: manifest paths must end in {MANIFEST_SUFFIX}")
    return f"{base[: -len(MANIFEST_SUFFIX)]}.shard-{index}.jsonl.gz"


def save_schedule_sharded(
    path: Union[str, "os.PathLike"],
    schedule: Schedule,
    meta: Optional[dict] = None,
    shard_packets: int = 100_000,
) -> List[str]:
    """Serialize ``schedule`` as ingress-time shards plus a manifest.

    ``path`` must end in :data:`MANIFEST_SUFFIX`; shards land next to it as
    ``<key>.shard-<i>.jsonl.gz``, each a self-contained ``repro-schedule/1``
    file covering ``shard_packets`` consecutive records of the canonical
    ``(ingress_time, packet_id)`` order (so shard boundaries are ingress-time
    chunks and concatenating shards in manifest order reproduces the
    canonical stream exactly).  Every shard is written — atomically — before
    the manifest is, so a crash can never leave a manifest naming a missing
    shard; a dangling shard without a manifest is invisible garbage.

    Returns the shard file names (no directory), in order.
    """
    path = os.fspath(path)
    if shard_packets < 1:
        raise ValueError(f"shard_packets must be >= 1, got {shard_packets}")
    records = schedule.records()
    directory = os.path.dirname(path) or "."
    shards: List[dict] = []
    for index, start in enumerate(range(0, len(records), shard_packets)):
        chunk = records[start : start + shard_packets]
        name = shard_file_name(path, index)
        _atomic_write_lines(
            os.path.join(directory, name),
            _schedule_lines(chunk, {"shard_index": index}),
        )
        shards.append(
            {
                "file": name,
                "packets": len(chunk),
                "ingress_min": chunk[0].ingress_time,
                "ingress_max": chunk[-1].ingress_time,
            }
        )
    manifest = {
        "format": MANIFEST_FORMAT,
        "packets": len(records),
        "meta": meta or {},
        "shards": shards,
    }
    _atomic_write_lines(path, [json.dumps(manifest) + "\n"])
    return [shard["file"] for shard in shards]


def load_manifest(path: Union[str, "os.PathLike"]) -> dict:
    """Load and validate a shard manifest written by :func:`save_schedule_sharded`."""
    path = os.fspath(path)
    with _open_for_read(path) as stream:
        line = stream.readline()
    if not line.strip():
        raise ValueError(f"{path}: empty manifest file")
    manifest = json.loads(line)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{path}: not a {MANIFEST_FORMAT} file (format={manifest.get('format')!r})"
        )
    shards = manifest["shards"]
    total = sum(shard["packets"] for shard in shards)
    if total != manifest["packets"]:
        raise ValueError(
            f"{path}: manifest promises {manifest['packets']} packets but its "
            f"shards sum to {total}"
        )
    return manifest


def _iter_single_file_records(path: str) -> Iterator[PacketRecord]:
    """Yield the records of one ``repro-schedule/1`` file, validating the count."""
    with _open_for_read(path) as stream:
        header_line = stream.readline()
        if not header_line:
            raise ValueError(f"{path}: empty schedule file")
        header = json.loads(header_line)
        if header.get("format") != SCHEDULE_FORMAT:
            raise ValueError(
                f"{path}: not a {SCHEDULE_FORMAT} file (format={header.get('format')!r})"
            )
        count = 0
        for line in stream:
            if line.strip():
                count += 1
                yield PacketRecord.from_dict(json.loads(line))
    if count != header.get("packets", count):
        raise ValueError(
            f"{path}: header promises {header.get('packets')} packets, "
            f"found {count} (truncated file?)"
        )


def stored_schedule_packets(path: Union[str, "os.PathLike"]) -> int:
    """Packet count of a stored schedule, read from its header/manifest only.

    Costs one line of I/O regardless of schedule size — how shard planners
    size their partitions without touching any record data.
    """
    path = os.fspath(path)
    if path.endswith(MANIFEST_SUFFIX):
        return load_manifest(path)["packets"]
    with _open_for_read(path) as stream:
        header_line = stream.readline()
    if not header_line:
        raise ValueError(f"{path}: empty schedule file")
    header = json.loads(header_line)
    if header.get("format") != SCHEDULE_FORMAT:
        raise ValueError(
            f"{path}: not a {SCHEDULE_FORMAT} file (format={header.get('format')!r})"
        )
    return int(header["packets"])


def iter_schedule_records(path: Union[str, "os.PathLike"]) -> Iterator[PacketRecord]:
    """Cursor through a stored schedule's records in canonical order.

    Works on both on-disk forms — a single ``repro-schedule/1`` file or a
    ``repro-schedule-manifest/1`` manifest (shards are visited in manifest
    order, which *is* canonical ``(ingress_time, packet_id)`` order) — and
    holds one record at a time, never the whole schedule.  This is the
    scale tier's read path: the streaming metrics and per-shard replay
    cursors consume it directly.

    Raises the same errors as :func:`load_schedule` on malformed input:
    ``ValueError`` for truncated or foreign files, ``OSError`` (e.g.
    ``FileNotFoundError``) for a shard the manifest names but the directory
    lacks.
    """
    path = os.fspath(path)
    if path.endswith(MANIFEST_SUFFIX):
        manifest = load_manifest(path)
        directory = os.path.dirname(path) or "."
        for shard in manifest["shards"]:
            shard_path = os.path.join(directory, shard["file"])
            count = 0
            for record in _iter_single_file_records(shard_path):
                count += 1
                yield record
            if count != shard["packets"]:
                raise ValueError(
                    f"{shard_path}: manifest promises {shard['packets']} packets, "
                    f"found {count} (truncated shard?)"
                )
    else:
        yield from _iter_single_file_records(path)


def load_schedule(path: Union[str, "os.PathLike"]) -> Tuple[Schedule, dict]:
    """Load a schedule written by :func:`save_schedule` or :func:`save_schedule_sharded`.

    Manifest paths (ending in :data:`MANIFEST_SUFFIX`) load every shard and
    return a schedule identical to the single-file form — shard layout is
    storage, not content.

    Returns:
        ``(schedule, meta)`` where ``meta`` is the free-form metadata stored
        in the file's header line (the manifest's, for sharded schedules).
    """
    path = os.fspath(path)
    if path.endswith(MANIFEST_SUFFIX):
        manifest = load_manifest(path)
        schedule = Schedule()
        for record in iter_schedule_records(path):
            schedule.add(record)
        if len(schedule) != manifest["packets"]:
            raise ValueError(
                f"{path}: manifest promises {manifest['packets']} packets, "
                f"found {len(schedule)} (truncated shards?)"
            )
        return schedule, manifest.get("meta", {})
    with _open_for_read(path) as stream:
        header_line = stream.readline()
        if not header_line:
            raise ValueError(f"{path}: empty schedule file")
        header = json.loads(header_line)
        if header.get("format") != SCHEDULE_FORMAT:
            raise ValueError(
                f"{path}: not a {SCHEDULE_FORMAT} file (format={header.get('format')!r})"
            )
        schedule = Schedule()
        for line in stream:
            if line.strip():
                schedule.add(PacketRecord.from_dict(json.loads(line)))
    if len(schedule) != header.get("packets", len(schedule)):
        raise ValueError(
            f"{path}: header promises {header.get('packets')} packets, "
            f"found {len(schedule)} (truncated file?)"
        )
    return schedule, header.get("meta", {})
