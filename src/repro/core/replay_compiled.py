"""The ``"compiled"`` replay backend: the flat kernel as native code.

Same orchestration as the ``"vectorized"`` backend — numpy batch precompute
of every per-hop float (exact ``bytes * 8 / bw`` forms), cached flattening,
bulk schedule rebuild — but the inner event loop runs in the compiled
kernel extension (:mod:`repro.sim._kernel`, a hand-written CPython C
extension transliterating :func:`repro.sim.vectorized.run_flat_replay`; see
``_kernel.c`` for the bit-identity argument).  The backend therefore
inherits the vectorized backend's entire contract surface: the same
``supports_replay`` fast path (non-preemptive key modes, infinite buffers),
the same fallback behaviour, and the same equivalence and golden-rows gates
— only :meth:`VectorizedBackend._kernel` is swapped.

Availability is a *build* question, not an install question: the extension
is an optional build (``setup.py`` marks it ``optional=True``), so
environments without a C toolchain simply never have it.
:meth:`CompiledBackend.check_available` reports the precise reason
(missing numpy, or the unbuilt kernel with build instructions) via
``PipelineConfigError`` — CLI exit 2 — and ``replay_schedule`` falls back
per the seam contract everywhere the backend is not explicitly selected.
"""

from __future__ import annotations

from typing import Optional

from repro.core.replay_vectorized import VectorizedBackend
from repro.core.slack import ReplayInitializer
from repro.sim.backend import register_backend
from repro.sim.compiled import (
    kernel_available,
    kernel_build_info,
    kernel_run_flat_replay,
    unavailable_reason,
)
from repro.topology.base import Topology


def _config_error(message: str) -> Exception:
    from repro.pipeline.scenario import PipelineConfigError

    return PipelineConfigError(message)


class CompiledBackend(VectorizedBackend):
    """The vectorized backend's orchestration driving the native kernel."""

    name = "compiled"
    replay_note = (
        "replay fast path (lstf/edf/priority/omniscient, infinite buffers); "
        "native C event loop (optional build: tools/build_compiled.py)"
    )

    def check_available(self) -> None:
        """Missing numpy *or* an unbuilt kernel extension both decline."""
        super().check_available()  # numpy (shared with vectorized)
        if not kernel_available():
            raise _config_error(f"backend 'compiled' is unavailable: {unavailable_reason()}")

    def supports_replay(
        self,
        mode: str,
        default_buffer_bytes: Optional[float] = None,
        initializer: Optional[ReplayInitializer] = None,
        topology: Optional[Topology] = None,
        faults=None,
    ) -> bool:
        """The vectorized fast path, gated additionally on the built kernel."""
        return kernel_available() and super().supports_replay(
            mode,
            default_buffer_bytes=default_buffer_bytes,
            initializer=initializer,
            topology=topology,
            faults=faults,
        )

    def build_info(self) -> Optional[dict]:
        """Kernel build metadata for the bench payload."""
        return kernel_build_info()

    def _kernel(self, *args, **kwargs):
        return kernel_run_flat_replay()(*args, **kwargs)


register_backend("compiled", CompiledBackend)
