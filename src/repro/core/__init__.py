"""The paper's primary contribution: schedules, slack initialization, replay, and theory."""

from repro.core.metrics import (
    ReplayMetrics,
    compare_schedules,
    fraction_overdue,
    lateness_distribution,
)
from repro.core.replay import (
    REPLAY_MODES,
    ReplayExperiment,
    ReplayInjector,
    ReplayResult,
    evaluate_replay,
    original_scheduler_factory,
    record_schedule,
    replay_schedule,
)
from repro.core.schedule import HopTiming, PacketRecord, Schedule
from repro.core.slack import (
    BlackBoxSlackInitializer,
    ConstantSlackPolicy,
    FairnessSlackPolicy,
    FlowSizeSlackPolicy,
    NullSlackPolicy,
    OmniscientInitializer,
    OutputTimePriorityInitializer,
    ReplayInitializer,
    SlackPolicy,
)
from repro.core.theory import (
    TheoryExample,
    appendix_c_example,
    appendix_f_example,
    appendix_g_example,
    has_priority_cycle,
    identical_blackbox_views,
    priority_order_constraints,
)

__all__ = [
    "Schedule",
    "PacketRecord",
    "HopTiming",
    "ReplayMetrics",
    "compare_schedules",
    "fraction_overdue",
    "lateness_distribution",
    "ReplayExperiment",
    "ReplayResult",
    "ReplayInjector",
    "REPLAY_MODES",
    "evaluate_replay",
    "replay_schedule",
    "record_schedule",
    "original_scheduler_factory",
    "ReplayInitializer",
    "BlackBoxSlackInitializer",
    "OutputTimePriorityInitializer",
    "OmniscientInitializer",
    "SlackPolicy",
    "FlowSizeSlackPolicy",
    "ConstantSlackPolicy",
    "FairnessSlackPolicy",
    "NullSlackPolicy",
    "TheoryExample",
    "appendix_c_example",
    "appendix_f_example",
    "appendix_g_example",
    "priority_order_constraints",
    "has_priority_cycle",
    "identical_blackbox_views",
]
