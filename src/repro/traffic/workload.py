"""Workload sizing helpers: translating a target utilization into flow arrival rates.

The paper's experiments are parameterized by "network utilization" (10-90%).
For a Poisson flow-arrival process with mean flow size ``S`` bytes, a link of
bandwidth ``B`` bits/second offered flows at rate ``lambda`` per second
carries load ``rho = lambda * 8S / B``.  The helpers below invert that
relation so experiments can say "70% utilization" and let the generator work
out the per-host arrival rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.traffic.distributions import FlowSizeDistribution
from repro.traffic.perturb import Perturbation
from repro.utils.units import BITS_PER_BYTE


def arrival_rate_for_utilization(
    utilization: float,
    bandwidth_bps: float,
    mean_flow_size_bytes: float,
) -> float:
    """Poisson flow arrival rate (flows/second) that loads a link to ``utilization``.

    Args:
        utilization: Target offered load as a fraction of link capacity (0, 1].
        bandwidth_bps: Capacity of the link whose load is being targeted.
        mean_flow_size_bytes: Mean flow size of the workload.
    """
    if not 0 < utilization <= 1.5:
        raise ValueError(f"utilization should be in (0, 1.5], got {utilization}")
    if bandwidth_bps <= 0 or mean_flow_size_bytes <= 0:
        raise ValueError("bandwidth and mean flow size must be positive")
    return utilization * bandwidth_bps / (mean_flow_size_bytes * BITS_PER_BYTE)


def utilization_of_rate(
    arrival_rate: float,
    bandwidth_bps: float,
    mean_flow_size_bytes: float,
) -> float:
    """Inverse of :func:`arrival_rate_for_utilization` (useful in tests)."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return arrival_rate * mean_flow_size_bytes * BITS_PER_BYTE / bandwidth_bps


@dataclass
class WorkloadSpec:
    """A complete description of the offered traffic for one experiment run.

    Attributes:
        utilization: Target load on the reference link (usually the
            edge-to-core access link, which every host's traffic crosses once).
        reference_bandwidth_bps: Bandwidth of that reference link.
        size_distribution: Flow-size distribution.
        transport: ``"udp"`` or ``"tcp"``.
        duration: Length of the flow-arrival window in seconds.
        mss: Maximum segment size used when packetizing flows.
        perturbations: Adversarial perturbation stack applied to the base
            arrival process (see :mod:`repro.traffic.perturb`).  Empty for
            the paper's unperturbed workloads; when non-empty it enters the
            schedule cache's workload fingerprint.
    """

    utilization: float
    reference_bandwidth_bps: float
    size_distribution: FlowSizeDistribution
    transport: str = "udp"
    duration: float = 1.0
    mss: int = 1460
    perturbations: Tuple[Perturbation, ...] = ()

    def per_host_arrival_rate(self) -> float:
        """Poisson flow arrival rate per source host for the target utilization."""
        return arrival_rate_for_utilization(
            self.utilization,
            self.reference_bandwidth_bps,
            self.size_distribution.mean(),
        )

    def expected_flows_per_host(self) -> float:
        """Expected number of flows each host originates during the run."""
        return self.per_host_arrival_rate() * self.duration
