"""Flow-size distributions.

The paper draws flow sizes "from a heavy-tailed distribution [4, 5]" — i.e.
the empirically observed pattern that most flows are short while most *bytes*
belong to a few long flows.  We provide:

* :class:`BoundedParetoSize` — the standard analytic heavy-tail model.
* :class:`EmpiricalSize` — a discrete distribution over (size, probability)
  points; :func:`web_search_workload` and :func:`data_mining_workload` give
  mixtures shaped like the datacenter workloads used by pFabric.
* :class:`ConstantSize` / :class:`ExponentialSize` — light-tailed controls
  used by tests and ablations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.utils.rng import RandomState


class FlowSizeDistribution(ABC):
    """Interface for flow-size generators (sizes in bytes)."""

    @abstractmethod
    def sample(self, rng: RandomState) -> float:
        """Draw one flow size in bytes."""

    @abstractmethod
    def mean(self) -> float:
        """Expected flow size in bytes (used for utilization targeting)."""


class ConstantSize(FlowSizeDistribution):
    """Every flow has exactly ``size_bytes`` bytes."""

    def __init__(self, size_bytes: float) -> None:
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        self.size_bytes = float(size_bytes)

    def sample(self, rng: RandomState) -> float:
        return self.size_bytes

    def mean(self) -> float:
        return self.size_bytes


class ExponentialSize(FlowSizeDistribution):
    """Exponentially distributed flow sizes with a minimum of one MSS."""

    def __init__(self, mean_bytes: float, minimum_bytes: float = 1460.0) -> None:
        if mean_bytes <= 0:
            raise ValueError(f"mean flow size must be positive, got {mean_bytes}")
        self.mean_bytes = float(mean_bytes)
        self.minimum_bytes = float(minimum_bytes)

    def sample(self, rng: RandomState) -> float:
        return max(self.minimum_bytes, rng.exponential(self.mean_bytes))

    def mean(self) -> float:
        # The clamp at minimum_bytes shifts the mean very slightly; for
        # utilization targeting the unclamped mean is accurate enough.
        return self.mean_bytes


class BoundedParetoSize(FlowSizeDistribution):
    """Bounded Pareto distribution: heavy tail with a hard maximum.

    Args:
        alpha: Tail index; smaller values give heavier tails (typical
            measurements are around 1.1-1.4).
        minimum_bytes: Smallest possible flow.
        maximum_bytes: Largest possible flow.
    """

    def __init__(
        self,
        alpha: float = 1.2,
        minimum_bytes: float = 1460.0,
        maximum_bytes: float = 10e6,
    ) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if minimum_bytes <= 0 or maximum_bytes <= minimum_bytes:
            raise ValueError("need 0 < minimum_bytes < maximum_bytes")
        self.alpha = alpha
        self.minimum_bytes = float(minimum_bytes)
        self.maximum_bytes = float(maximum_bytes)

    def sample(self, rng: RandomState) -> float:
        # Inverse-CDF sampling of the bounded Pareto.
        low, high, alpha = self.minimum_bytes, self.maximum_bytes, self.alpha
        u = rng.uniform(0.0, 1.0)
        ratio = (low / high) ** alpha
        value = low / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)
        return min(high, max(low, value))

    def mean(self) -> float:
        low, high, alpha = self.minimum_bytes, self.maximum_bytes, self.alpha
        if math.isclose(alpha, 1.0):
            return low * math.log(high / low) / (1.0 - low / high)
        numerator = (low**alpha) * alpha / (alpha - 1.0)
        return numerator * (low ** (1.0 - alpha) - high ** (1.0 - alpha)) / (
            1.0 - (low / high) ** alpha
        )


class EmpiricalSize(FlowSizeDistribution):
    """Discrete flow-size distribution over (size_bytes, probability) points."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise ValueError("need at least one (size, probability) point")
        total = sum(probability for _, probability in points)
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        self.sizes: List[float] = [float(size) for size, _ in points]
        self.probabilities: List[float] = [probability / total for _, probability in points]
        if any(size <= 0 for size in self.sizes):
            raise ValueError("flow sizes must be positive")

    def sample(self, rng: RandomState) -> float:
        u = rng.uniform(0.0, 1.0)
        cumulative = 0.0
        for size, probability in zip(self.sizes, self.probabilities):
            cumulative += probability
            if u <= cumulative:
                return size
        return self.sizes[-1]

    def mean(self) -> float:
        return sum(s * p for s, p in zip(self.sizes, self.probabilities))


_KB = 1e3
_MB = 1e6

#: (size_bytes, probability) points of the web-search flow-size mixture.
#: Shared by :func:`web_search_workload` and the workload registry so the two
#: can never drift apart (the points feed the schedule cache's content hash).
WEB_SEARCH_POINTS: Tuple[Tuple[float, float], ...] = (
    (6 * _KB, 0.15),
    (13 * _KB, 0.20),
    (19 * _KB, 0.15),
    (33 * _KB, 0.10),
    (53 * _KB, 0.08),
    (133 * _KB, 0.08),
    (667 * _KB, 0.08),
    (1.3 * _MB, 0.06),
    (3.3 * _MB, 0.05),
    (6.7 * _MB, 0.03),
    (20 * _MB, 0.02),
)

#: (size_bytes, probability) points of the data-mining flow-size mixture.
DATA_MINING_POINTS: Tuple[Tuple[float, float], ...] = (
    (1.5 * _KB, 0.50),
    (3 * _KB, 0.15),
    (10 * _KB, 0.12),
    (30 * _KB, 0.08),
    (100 * _KB, 0.05),
    (1 * _MB, 0.04),
    (10 * _MB, 0.04),
    (100 * _MB, 0.02),
)


def web_search_workload() -> EmpiricalSize:
    """Heavy-tailed flow-size mixture shaped like the web-search workload.

    Roughly 60% of flows are under 100 KB but the tail (flows of 1-30 MB)
    carries most of the bytes, which is the property the paper's SJF/SRPT
    comparison depends on.
    """
    return EmpiricalSize(WEB_SEARCH_POINTS)


def data_mining_workload() -> EmpiricalSize:
    """Flow-size mixture shaped like the data-mining workload (even heavier tail)."""
    return EmpiricalSize(DATA_MINING_POINTS)


def paper_default_workload() -> BoundedParetoSize:
    """The default heavy-tailed distribution used by the replay experiments.

    A bounded Pareto with tail index 1.2 between 1.5 KB and 3 MB: small enough
    that short simulations finish, heavy-tailed enough that the slack skew
    phenomena (SJF/LIFO replay difficulty) appear.
    """
    return BoundedParetoSize(alpha=1.2, minimum_bytes=1460.0, maximum_bytes=3e6)
