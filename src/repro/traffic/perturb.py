"""Composable workload perturbations: the adversarial traffic layer.

The paper's universality claim is tested against benign Poisson/heavy-tail
workloads; this module supplies the adversarial counterparts (in the spirit
of "On Packet Scheduling with Adversarial Jamming and Speedup",
arXiv:1705.07018) as *perturbations* that wrap any base workload:

* :class:`IncastBurst` — synchronized many-to-one bursts aimed at a single
  victim host (the classic datacenter incast pattern);
* :class:`OnOffJamming` — ON/OFF modulation of the Poisson arrival rate
  (adversarial jamming windows followed by quiet periods);
* :class:`HeavyTailInflation` — random inflation of flow sizes, making an
  already heavy tail heavier;
* :class:`DeadlineTagging` — tags a fraction of flows with completion
  deadlines so replay quality can be judged in deadline terms.

Perturbations are frozen, picklable value objects with a lossless
``to_dict``/``from_dict`` round-trip; their serialized form feeds the
schedule cache's content hash, so two workloads that differ only in their
perturbations never share a cache entry.  All randomness is drawn from the
flow generator's seeded stream, which keeps perturbed arrivals deterministic
under a fixed seed — in-process, across processes, and across machines.
"""

from __future__ import annotations

import dataclasses
from abc import ABC
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.flow import Flow
    from repro.utils.rng import RandomState


@dataclass(frozen=True)
class PerturbationContext:
    """Static facts about the run a perturbation may consult.

    Attributes:
        duration: Length of the flow-arrival window in seconds.
        reference_bandwidth_bps: Bandwidth of the workload's reference link
            (``None`` when the generator was built without a workload spec).
        sources: Host names that originate flows, in generator order.
        destinations: Candidate destination host names.
        mss: Maximum segment size used when packetizing flows.
        start: When the flow-arrival window opens (generator ``start_time``);
            time-based perturbations (jamming cycles, burst epochs) are
            phased relative to this, not to simulation time zero.
    """

    duration: float
    reference_bandwidth_bps: Optional[float]
    sources: Tuple[str, ...]
    destinations: Tuple[str, ...]
    mss: int
    start: float = 0.0


#: Perturbation kinds by name (populated by :func:`register_perturbation`).
PERTURBATION_KINDS: Dict[str, Type["Perturbation"]] = {}


def register_perturbation(cls: Type["Perturbation"]) -> Type["Perturbation"]:
    """Class decorator adding a perturbation to :data:`PERTURBATION_KINDS`."""
    if not getattr(cls, "kind", ""):
        raise ValueError(f"{cls.__name__} needs a non-empty `kind`")
    PERTURBATION_KINDS[cls.kind] = cls
    return cls


class Perturbation(ABC):
    """One composable transformation of a base workload.

    Subclasses are frozen dataclasses; every hook has a no-op default so a
    perturbation only overrides the aspects of traffic generation it
    actually touches.  Hooks are called by
    :class:`~repro.traffic.flowgen.PoissonFlowGenerator`.
    """

    #: Stable serialization tag (also the registry key).
    kind: ClassVar[str] = ""

    # ------------------------------------------------------------------ #
    # Hooks (all optional)
    # ------------------------------------------------------------------ #
    def rate_multiplier(self, time: float, context: PerturbationContext) -> float:
        """Multiplier on the Poisson arrival rate at ``time`` (1.0 = unchanged)."""
        return 1.0

    def next_transition(
        self, time: float, context: PerturbationContext
    ) -> Optional[float]:
        """The next instant after ``time`` at which :meth:`rate_multiplier`
        changes, or ``None`` if it never does (used to skip zero-rate windows)."""
        return None

    def transform_size(
        self, size: float, rng: "RandomState", context: PerturbationContext
    ) -> float:
        """Rewrite one sampled flow size (bytes)."""
        return size

    def annotate_flow(
        self, flow: "Flow", rng: "RandomState", context: PerturbationContext
    ) -> None:
        """Attach metadata (e.g. a deadline) to a freshly created flow."""

    def extra_flows(
        self, rng: "RandomState", context: PerturbationContext
    ) -> List["Flow"]:
        """Adversarial flows injected on top of the base arrival process."""
        return []

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Lossless JSON-serializable form (feeds the schedule-cache hash)."""
        payload = {"kind": self.kind}
        payload.update(dataclasses.asdict(self))  # type: ignore[call-overload]
        return payload

    @staticmethod
    def from_dict(data: dict) -> "Perturbation":
        """Inverse of :meth:`to_dict` (dispatches on ``kind``)."""
        params = dict(data)
        kind = params.pop("kind", None)
        try:
            cls = PERTURBATION_KINDS[kind]
        except KeyError:
            known = ", ".join(sorted(PERTURBATION_KINDS))
            raise KeyError(
                f"unknown perturbation kind {kind!r}; known: {known}"
            ) from None
        return cls(**params)

    def describe(self) -> str:
        """Short ``kind(param=value, ...)`` label for CLI listings."""
        params = dataclasses.asdict(self)  # type: ignore[call-overload]
        inner = ", ".join(f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}"
                          for name, value in params.items())
        return f"{self.kind}({inner})"


@register_perturbation
@dataclass(frozen=True)
class IncastBurst(Perturbation):
    """Synchronized many-to-one bursts aimed at one victim host.

    At ``bursts`` evenly spaced epochs inside the arrival window, ``fanin``
    sources simultaneously open a ``flow_bytes`` flow to the same victim —
    the datacenter incast pattern that stresses a single egress queue far
    beyond what Poisson arrivals produce.

    Attributes:
        bursts: Number of burst epochs across the arrival window.
        fanin: Flows per burst (sources cycle deterministically).
        flow_bytes: Size of each burst flow.
        victim_index: Index into the sorted destination list selecting the
            victim host (deterministic, so replays agree across processes).
    """

    kind: ClassVar[str] = "incast-burst"

    bursts: int = 3
    fanin: int = 8
    flow_bytes: float = 30_000.0
    victim_index: int = 0

    def extra_flows(
        self, rng: "RandomState", context: PerturbationContext
    ) -> List["Flow"]:
        from repro.sim.flow import Flow

        if context.duration <= 0 or not context.destinations:
            return []
        victims = sorted(context.destinations)
        victim = victims[self.victim_index % len(victims)]
        senders = [name for name in sorted(context.sources) if name != victim]
        if not senders:
            return []
        flows: List[Flow] = []
        for burst in range(self.bursts):
            start = context.start + context.duration * (burst + 1) / (self.bursts + 1)
            for lane in range(self.fanin):
                src = senders[(burst * self.fanin + lane) % len(senders)]
                flows.append(
                    Flow(
                        src=src,
                        dst=victim,
                        size_bytes=float(self.flow_bytes),
                        start_time=start,
                        mss=context.mss,
                    )
                )
        return flows


@register_perturbation
@dataclass(frozen=True)
class OnOffJamming(Perturbation):
    """ON/OFF modulation of the arrival rate (adversarial jamming windows).

    The arrival window is split into ``cycles`` equal cycles; the first
    ``on_fraction`` of each cycle multiplies the Poisson rate by
    ``on_multiplier`` (a jamming burst), the remainder by ``off_multiplier``
    (quiet, possibly silent when 0).  Mean offered load is preserved when
    ``on_fraction * on_multiplier + (1 - on_fraction) * off_multiplier == 1``.
    """

    kind: ClassVar[str] = "on-off-jamming"

    cycles: int = 4
    on_fraction: float = 0.25
    on_multiplier: float = 4.0
    off_multiplier: float = 0.0

    def _cycle_length(self, context: PerturbationContext) -> float:
        if context.duration <= 0 or self.cycles <= 0:
            return 0.0
        return context.duration / self.cycles

    def rate_multiplier(self, time: float, context: PerturbationContext) -> float:
        cycle = self._cycle_length(context)
        if cycle <= 0:
            return 1.0
        elapsed = max(0.0, time - context.start)
        phase = (elapsed % cycle) / cycle
        return self.on_multiplier if phase < self.on_fraction else self.off_multiplier

    def next_transition(
        self, time: float, context: PerturbationContext
    ) -> Optional[float]:
        cycle = self._cycle_length(context)
        if cycle <= 0:
            return None
        elapsed = max(0.0, time - context.start)
        index = int(elapsed // cycle)
        on_end = context.start + index * cycle + self.on_fraction * cycle
        if time < on_end:
            return on_end
        return context.start + (index + 1) * cycle


@register_perturbation
@dataclass(frozen=True)
class HeavyTailInflation(Perturbation):
    """Randomly inflates sampled flow sizes, making the tail heavier.

    With probability ``probability`` a flow's size is multiplied by
    ``factor`` (capped at ``max_bytes``) — the elephant flows that dominate
    byte counts get even larger, skewing the slack distribution that LSTF
    replay depends on.
    """

    kind: ClassVar[str] = "heavy-tail-inflation"

    probability: float = 0.05
    factor: float = 10.0
    max_bytes: float = 30e6

    def transform_size(
        self, size: float, rng: "RandomState", context: PerturbationContext
    ) -> float:
        if rng.uniform(0.0, 1.0) < self.probability:
            return min(size * self.factor, self.max_bytes)
        return size


@register_perturbation
@dataclass(frozen=True)
class DeadlineTagging(Perturbation):
    """Tags a fraction of flows with completion deadlines.

    A tagged flow's deadline is its start time plus ``slack_factor`` times
    the flow's ideal (uncontended) transfer time on the reference link, plus
    ``extra_seconds``.  Deadlines ride through the recorded schedule so the
    replay evaluation can report deadline-met fractions for the original
    and the replay side by side.
    """

    kind: ClassVar[str] = "deadline-tagging"

    fraction: float = 0.5
    slack_factor: float = 2.0
    extra_seconds: float = 0.0

    def annotate_flow(
        self, flow: "Flow", rng: "RandomState", context: PerturbationContext
    ) -> None:
        if context.reference_bandwidth_bps is None or context.reference_bandwidth_bps <= 0:
            return
        if rng.uniform(0.0, 1.0) >= self.fraction:
            return
        ideal = flow.size_bytes * 8.0 / context.reference_bandwidth_bps
        flow.deadline = flow.start_time + self.slack_factor * ideal + self.extra_seconds
