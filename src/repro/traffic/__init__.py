"""Traffic generation: flow-size distributions, Poisson arrivals, and sizing helpers."""

from repro.traffic.distributions import (
    BoundedParetoSize,
    ConstantSize,
    EmpiricalSize,
    ExponentialSize,
    FlowSizeDistribution,
    data_mining_workload,
    paper_default_workload,
    web_search_workload,
)
from repro.traffic.flowgen import PoissonFlowGenerator, StaticFlowSet
from repro.traffic.workload import (
    WorkloadSpec,
    arrival_rate_for_utilization,
    utilization_of_rate,
)

__all__ = [
    "FlowSizeDistribution",
    "ConstantSize",
    "ExponentialSize",
    "BoundedParetoSize",
    "EmpiricalSize",
    "web_search_workload",
    "data_mining_workload",
    "paper_default_workload",
    "PoissonFlowGenerator",
    "StaticFlowSet",
    "WorkloadSpec",
    "arrival_rate_for_utilization",
    "utilization_of_rate",
]
