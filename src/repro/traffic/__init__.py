"""Traffic generation: the pluggable workload subsystem.

Flow-size distributions (:mod:`~repro.traffic.distributions`), Poisson
arrivals (:mod:`~repro.traffic.flowgen`), utilization sizing helpers
(:mod:`~repro.traffic.workload`), the named workload registry
(:mod:`~repro.traffic.registry`), and the composable adversarial
perturbation layer (:mod:`~repro.traffic.perturb`).
"""

from repro.traffic.distributions import (
    BoundedParetoSize,
    ConstantSize,
    EmpiricalSize,
    ExponentialSize,
    FlowSizeDistribution,
    data_mining_workload,
    paper_default_workload,
    web_search_workload,
)
from repro.traffic.flowgen import PoissonFlowGenerator, StaticFlowSet
from repro.traffic.perturb import (
    DeadlineTagging,
    HeavyTailInflation,
    IncastBurst,
    OnOffJamming,
    Perturbation,
    PerturbationContext,
    register_perturbation,
)
from repro.traffic.registry import (
    WORKLOADS,
    DistributionSpec,
    WorkloadDef,
    WorkloadRegistry,
    register_workload,
)
from repro.traffic.workload import (
    WorkloadSpec,
    arrival_rate_for_utilization,
    utilization_of_rate,
)

__all__ = [
    "FlowSizeDistribution",
    "ConstantSize",
    "ExponentialSize",
    "BoundedParetoSize",
    "EmpiricalSize",
    "web_search_workload",
    "data_mining_workload",
    "paper_default_workload",
    "PoissonFlowGenerator",
    "StaticFlowSet",
    "WorkloadSpec",
    "arrival_rate_for_utilization",
    "utilization_of_rate",
    "Perturbation",
    "PerturbationContext",
    "IncastBurst",
    "OnOffJamming",
    "HeavyTailInflation",
    "DeadlineTagging",
    "register_perturbation",
    "WORKLOADS",
    "WorkloadDef",
    "WorkloadRegistry",
    "DistributionSpec",
    "register_workload",
]
