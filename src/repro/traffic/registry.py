"""The workload registry: named, parameterized, picklable workload definitions.

A :class:`WorkloadDef` fully describes one offered-traffic pattern as plain
data: a :class:`DistributionSpec` naming the flow-size distribution and its
parameters, the arrival process (Poisson), and a tuple of composable
:class:`~repro.traffic.perturb.Perturbation` objects wrapping the base
workload.  Because definitions are frozen value objects with a lossless
``to_dict``/``from_dict`` round-trip, they can be hashed into schedule-cache
keys, shipped to pool workers, listed by the CLI, and reconstructed from
persisted experiment metadata.

The global :data:`WORKLOADS` registry replaces the hard-coded workload
factory lambdas that scenarios used to close over; the paper's three
workloads are registered in the ``"paper"`` group and the adversarial
stress-test workloads (arXiv:1705.07018-style jamming, incast, tail
inflation, deadline tagging) in the ``"adversarial"`` group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.traffic.distributions import (
    DATA_MINING_POINTS,
    WEB_SEARCH_POINTS,
    BoundedParetoSize,
    ConstantSize,
    EmpiricalSize,
    ExponentialSize,
    FlowSizeDistribution,
)
from repro.traffic.perturb import (
    DeadlineTagging,
    HeavyTailInflation,
    IncastBurst,
    OnOffJamming,
    Perturbation,
)

#: Distribution constructors by serialization kind.
DISTRIBUTION_KINDS: Dict[str, Callable[..., FlowSizeDistribution]] = {
    "bounded-pareto": BoundedParetoSize,
    "empirical": lambda points: EmpiricalSize(list(points)),
    "constant": ConstantSize,
    "exponential": ExponentialSize,
}


def _freeze(value):
    """Recursively convert lists to tuples so specs stay hashable."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, tuple):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value):
    """Recursively convert tuples to lists for JSON serialization."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class DistributionSpec:
    """A flow-size distribution as plain data: a kind plus keyword parameters.

    ``params`` is a sorted tuple of ``(name, value)`` pairs (nested sequences
    are tuples) so specs stay hashable and picklable.
    """

    kind: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in DISTRIBUTION_KINDS:
            known = ", ".join(sorted(DISTRIBUTION_KINDS))
            raise ValueError(f"unknown distribution kind {self.kind!r}; known: {known}")
        object.__setattr__(
            self, "params", tuple(sorted((name, _freeze(value)) for name, value in self.params))
        )

    def build(self) -> FlowSizeDistribution:
        """Instantiate the distribution this spec describes."""
        return DISTRIBUTION_KINDS[self.kind](**dict(self.params))

    def to_dict(self) -> dict:
        """Lossless JSON-serializable form."""
        return {
            "kind": self.kind,
            "params": {name: _thaw(value) for name, value in self.params},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DistributionSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            params=tuple((name, _freeze(value)) for name, value in data.get("params", {}).items()),
        )


@dataclass(frozen=True)
class WorkloadDef:
    """One named workload: distribution + arrival process + perturbations.

    Attributes:
        name: Registry key (what scenarios reference).
        distribution: Flow-size distribution spec.
        perturbations: Composable perturbation stack applied to the base
            arrival process, in order.
        arrival: Arrival-process kind (currently always ``"poisson"``).
        group: Scenario-matrix group (``"paper"``, ``"adversarial"``, or
            ``"heuristics"``).
        description: One-line summary shown by ``python -m repro list
            --workloads``.
    """

    name: str
    distribution: DistributionSpec
    perturbations: Tuple[Perturbation, ...] = ()
    arrival: str = "poisson"
    group: str = "paper"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload definitions need a non-empty name")
        if self.arrival != "poisson":
            raise ValueError(f"unsupported arrival process {self.arrival!r}")
        object.__setattr__(self, "perturbations", tuple(self.perturbations))

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def build_distribution(self) -> FlowSizeDistribution:
        """Instantiate this workload's flow-size distribution."""
        return self.distribution.build()

    def mean_flow_size(self) -> float:
        """Expected flow size in bytes of the (unperturbed) distribution."""
        return self.build_distribution().mean()

    def describe_perturbations(self) -> str:
        """Comma-joined perturbation labels (``"-"`` when unperturbed)."""
        if not self.perturbations:
            return "-"
        return ", ".join(p.describe() for p in self.perturbations)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Lossless JSON-serializable form (feeds the schedule-cache hash)."""
        return {
            "name": self.name,
            "arrival": self.arrival,
            "group": self.group,
            "description": self.description,
            "distribution": self.distribution.to_dict(),
            "perturbations": [p.to_dict() for p in self.perturbations],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadDef":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            distribution=DistributionSpec.from_dict(data["distribution"]),
            perturbations=tuple(
                Perturbation.from_dict(p) for p in data.get("perturbations", [])
            ),
            arrival=data.get("arrival", "poisson"),
            group=data.get("group", "paper"),
            description=data.get("description", ""),
        )


class WorkloadRegistry:
    """Maps workload names to their definitions, in registration order."""

    def __init__(self) -> None:
        self._definitions: Dict[str, WorkloadDef] = {}

    def register(self, definition: WorkloadDef) -> WorkloadDef:
        """Add (or replace) a definition; returns it for chaining."""
        self._definitions[definition.name] = definition
        return definition

    def get(self, name: str) -> WorkloadDef:
        """The definition for ``name`` (KeyError listing known names if absent)."""
        try:
            return self._definitions[name]
        except KeyError:
            known = ", ".join(sorted(self._definitions))
            raise KeyError(f"unknown workload {name!r}; known: {known}") from None

    def names(self) -> List[str]:
        """All registered workload names, in registration order."""
        return list(self._definitions)

    def definitions(self) -> List[WorkloadDef]:
        """All registered definitions, in registration order."""
        return list(self._definitions.values())

    def group(self, group: str) -> List[WorkloadDef]:
        """Definitions belonging to one scenario-matrix group, in order."""
        return [d for d in self._definitions.values() if d.group == group]

    def groups(self) -> List[str]:
        """Distinct group names, in first-appearance order."""
        seen: List[str] = []
        for definition in self._definitions.values():
            if definition.group not in seen:
                seen.append(definition.group)
        return seen

    def __contains__(self, name: str) -> bool:
        return name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def __iter__(self):
        return iter(self._definitions.values())


#: The process-wide workload registry (populated below at import time).
WORKLOADS = WorkloadRegistry()


def register_workload(definition: WorkloadDef) -> WorkloadDef:
    """Register ``definition`` in the global registry."""
    return WORKLOADS.register(definition)


# ---------------------------------------------------------------------- #
# Built-in definitions
# ---------------------------------------------------------------------- #
#: Distribution spec of the paper's default bounded-Pareto workload.  The
#: parameters must match :func:`repro.traffic.distributions
#: .paper_default_workload` exactly — the schedule cache hashes them.
PAPER_DEFAULT_SPEC = DistributionSpec(
    "bounded-pareto",
    (("alpha", 1.2), ("minimum_bytes", 1460.0), ("maximum_bytes", 3e6)),
)

register_workload(
    WorkloadDef(
        name="paper-default",
        distribution=PAPER_DEFAULT_SPEC,
        group="paper",
        description="bounded Pareto (alpha=1.2, 1.5KB-3MB), the replay default",
    )
)
register_workload(
    WorkloadDef(
        name="web-search",
        distribution=DistributionSpec("empirical", (("points", WEB_SEARCH_POINTS),)),
        group="paper",
        description="web-search flow-size mixture (pFabric-style)",
    )
)
register_workload(
    WorkloadDef(
        name="data-mining",
        distribution=DistributionSpec("empirical", (("points", DATA_MINING_POINTS),)),
        group="paper",
        description="data-mining flow-size mixture (heavier tail)",
    )
)

register_workload(
    WorkloadDef(
        name="incast-burst",
        distribution=PAPER_DEFAULT_SPEC,
        perturbations=(IncastBurst(bursts=3, fanin=8, flow_bytes=30_000.0),),
        group="adversarial",
        description="Poisson base plus synchronized many-to-one incast bursts",
    )
)
register_workload(
    WorkloadDef(
        name="on-off-jamming",
        distribution=PAPER_DEFAULT_SPEC,
        perturbations=(
            OnOffJamming(cycles=4, on_fraction=0.25, on_multiplier=4.0, off_multiplier=0.0),
        ),
        group="adversarial",
        description="arrivals compressed into ON jamming windows (mean load preserved)",
    )
)
register_workload(
    WorkloadDef(
        name="heavy-tail-extreme",
        distribution=PAPER_DEFAULT_SPEC,
        perturbations=(HeavyTailInflation(probability=0.05, factor=10.0, max_bytes=30e6),),
        group="adversarial",
        description="5% of flows inflated 10x: an even heavier elephant tail",
    )
)
register_workload(
    WorkloadDef(
        name="deadline-tagged",
        distribution=PAPER_DEFAULT_SPEC,
        perturbations=(DeadlineTagging(fraction=0.5, slack_factor=6.0),),
        group="adversarial",
        description="default workload with half the flows deadline-tagged",
    )
)
register_workload(
    WorkloadDef(
        name="deadline-tagged-tight",
        distribution=PAPER_DEFAULT_SPEC,
        perturbations=(DeadlineTagging(fraction=0.75, slack_factor=3.0),),
        group="heuristics",
        description="three quarters of the flows deadline-tagged, 3x-ideal budgets",
    )
)
register_workload(
    WorkloadDef(
        name="adversarial-combo",
        distribution=PAPER_DEFAULT_SPEC,
        perturbations=(
            OnOffJamming(cycles=4, on_fraction=0.25, on_multiplier=3.0, off_multiplier=0.25),
            IncastBurst(bursts=2, fanin=6, flow_bytes=30_000.0),
            HeavyTailInflation(probability=0.03, factor=8.0, max_bytes=30e6),
        ),
        group="adversarial",
        description="jamming + incast + tail inflation stacked on one workload",
    )
)
