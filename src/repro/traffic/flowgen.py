"""Poisson flow generation.

Each source host originates flows according to a Poisson process; every flow
picks a destination uniformly at random among the other hosts, draws its size
from the workload's heavy-tailed distribution, and is carried by either UDP
(open loop) or the simplified TCP (closed loop).  This mirrors the paper's
"each end host generates UDP flows using a Poisson inter-arrival model" with
"flow sizes picked from a heavy-tailed distribution".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.sim.flow import Flow
from repro.traffic.distributions import FlowSizeDistribution
from repro.traffic.perturb import Perturbation, PerturbationContext
from repro.transport.tcp import start_tcp_flow
from repro.transport.udp import start_udp_flow
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.network import Network


class PoissonFlowGenerator:
    """Generates flows from each source host with exponential inter-arrival times.

    Args:
        sim: Simulation engine.
        network: The network flows are injected into.
        sources: Host names that originate flows (defaults to all hosts).
        destinations: Candidate destination host names (defaults to all hosts;
            a flow never picks its own source as destination).
        arrival_rate_per_source: Poisson rate (flows/second) per source host.
        size_distribution: Flow-size distribution (bytes).
        transport: ``"udp"`` or ``"tcp"``.
        rng: Random source (a child stream is derived per source host).
        start_time: When flow generation begins.
        stop_time: When flow generation ends (flows already started keep
            running until the simulation ends).
        mss: Maximum segment size handed to the transport.
        perturbations: Adversarial perturbation stack (see
            :mod:`repro.traffic.perturb`) applied to the base Poisson
            process: rate modulation, size rewriting, flow annotation, and
            extra injected flows.
        reference_bandwidth_bps: Bandwidth of the workload's reference link,
            passed to perturbations that need it (e.g. deadline tagging).
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        arrival_rate_per_source: float,
        size_distribution: FlowSizeDistribution,
        transport: str = "udp",
        sources: Optional[Sequence[str]] = None,
        destinations: Optional[Sequence[str]] = None,
        rng: Optional[RandomState] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        mss: int = 1460,
        perturbations: Sequence[Perturbation] = (),
        reference_bandwidth_bps: Optional[float] = None,
    ) -> None:
        if arrival_rate_per_source <= 0:
            raise ValueError("arrival rate must be positive")
        if transport not in ("udp", "tcp"):
            raise ValueError(f"transport must be 'udp' or 'tcp', got {transport!r}")

        self.sim = sim
        self.network = network
        self.rate = arrival_rate_per_source
        self.size_distribution = size_distribution
        self.transport = transport
        all_hosts = [host.name for host in network.hosts()]
        self.sources: List[str] = list(sources) if sources is not None else all_hosts
        self.destinations: List[str] = (
            list(destinations) if destinations is not None else all_hosts
        )
        if not self.sources:
            raise ValueError("need at least one source host")
        if len(set(self.destinations)) < 2 and self.destinations == self.sources:
            raise ValueError("need at least two hosts to pick distinct src/dst pairs")
        self.rng = rng if rng is not None else RandomState(0)
        self.start_time = start_time
        self.stop_time = stop_time
        self.mss = mss
        self.perturbations: List[Perturbation] = list(perturbations)
        self.reference_bandwidth_bps = reference_bandwidth_bps

        self.flows: List[Flow] = []
        self.agents: List[object] = []
        self._installed = False
        self._context = PerturbationContext(
            duration=(
                (self.stop_time - self.start_time) if self.stop_time is not None else 0.0
            ),
            reference_bandwidth_bps=reference_bandwidth_bps,
            sources=tuple(self.sources),
            destinations=tuple(self.destinations),
            mss=self.mss,
            start=self.start_time,
        )

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def install(self) -> None:
        """Schedule the first flow arrival at every source host.

        Perturbations that inject extra (adversarial) flows contribute them
        here, before the Poisson stream starts, so flow ids and rng draws
        stay deterministic under a fixed seed regardless of which process
        runs the generator.
        """
        if self._installed:
            raise RuntimeError("flow generator already installed")
        self._installed = True
        for perturbation in self.perturbations:
            for flow in perturbation.extra_flows(self.rng, self._context):
                self.flows.append(flow)
                self._start_flow(flow)
        for source in self.sources:
            if self.perturbations:
                # Rate-modulated process: start the exact piecewise-constant
                # sampler at the window open (it draws the first gap at the
                # then-active rate and resamples at every rate transition).
                self.sim.schedule_at(
                    max(self.sim.now, self.start_time), self._resume, source
                )
            else:
                first_gap = self.rng.exponential(1.0 / self.rate)
                self.sim.schedule_at(
                    max(self.sim.now, self.start_time) + first_gap,
                    self._arrival,
                    source,
                )

    # ------------------------------------------------------------------ #
    # Flow arrivals
    # ------------------------------------------------------------------ #
    def _rate_multiplier(self, time: float) -> float:
        multiplier = 1.0
        for perturbation in self.perturbations:
            multiplier *= perturbation.rate_multiplier(time, self._context)
        return multiplier

    def _next_transition(self, time: float) -> Optional[float]:
        candidates = [
            transition
            for perturbation in self.perturbations
            if (transition := perturbation.next_transition(time, self._context)) is not None
            and transition > time
        ]
        return min(candidates) if candidates else None

    def _arrival(self, source: str) -> None:
        if self.stop_time is not None and self.sim.now > self.stop_time:
            return
        multiplier = self._rate_multiplier(self.sim.now)
        if multiplier <= 0.0:
            # Defensive: with gap capping arrivals never land inside a
            # silent window, but a composed multiplier could still be zero
            # at an exact boundary instant.  Treat it as a lost arrival.
            self._skip_to_next_window(source)
            return
        flow = self._create_flow(source)
        self.flows.append(flow)
        self._start_flow(flow)
        self._schedule_next_arrival(source)

    def _schedule_next_arrival(self, source: str) -> None:
        """Sample the next arrival of the (piecewise-constant) rate process.

        The gap is drawn at the currently active rate; if it would cross the
        next rate transition, the draw is discarded and resampled *at* the
        transition — exact for piecewise-constant rates by memorylessness.
        Landing an arrival on the boundary itself would instead synchronize
        every source into a burst the perturbation model never specified.
        """
        multiplier = self._rate_multiplier(self.sim.now)
        if multiplier <= 0.0:
            self._skip_to_next_window(source)
            return
        gap = self.rng.exponential(1.0 / (self.rate * multiplier))
        transition = self._next_transition(self.sim.now)
        if transition is not None and self.sim.now + gap > transition:
            self.sim.schedule_at(transition, self._resume, source)
        else:
            self.sim.schedule(gap, self._arrival, source)

    def _skip_to_next_window(self, source: str) -> None:
        transition = self._next_transition(self.sim.now)
        if transition is not None and (
            self.stop_time is None or transition <= self.stop_time
        ):
            self.sim.schedule_at(transition, self._resume, source)

    def _resume(self, source: str) -> None:
        """(Re)start the rate process at a window boundary or the window open."""
        if self.stop_time is not None and self.sim.now > self.stop_time:
            return
        self._schedule_next_arrival(source)

    def _create_flow(self, source: str) -> Flow:
        destination = self._pick_destination(source)
        size = self.size_distribution.sample(self.rng)
        for perturbation in self.perturbations:
            size = perturbation.transform_size(size, self.rng, self._context)
        flow = Flow(
            src=source,
            dst=destination,
            size_bytes=size,
            start_time=self.sim.now,
            mss=self.mss,
        )
        for perturbation in self.perturbations:
            perturbation.annotate_flow(flow, self.rng, self._context)
        return flow

    def _pick_destination(self, source: str) -> str:
        candidates = [name for name in self.destinations if name != source]
        if not candidates:
            raise RuntimeError(f"no destination available for source {source}")
        return self.rng.choice(candidates)

    def _start_flow(self, flow: Flow) -> None:
        if self.transport == "udp":
            agent = start_udp_flow(self.sim, self.network, flow)
        else:
            agent = start_tcp_flow(self.sim, self.network, flow)
        self.agents.append(agent)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def completed_flows(self) -> List[Flow]:
        """Flows that finished delivering every byte."""
        return [flow for flow in self.flows if flow.completed]

    def completion_ratio(self) -> float:
        """Fraction of generated flows that completed."""
        if not self.flows:
            return 0.0
        return len(self.completed_flows()) / len(self.flows)


class StaticFlowSet:
    """A fixed, explicitly listed set of flows (used by the fairness experiment).

    Args:
        sim: Simulation engine.
        network: Target network.
        flows: Flows to start (their ``start_time`` fields are honored).
        transport: ``"udp"`` or ``"tcp"``.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        flows: Sequence[Flow],
        transport: str = "tcp",
    ) -> None:
        if transport not in ("udp", "tcp"):
            raise ValueError(f"transport must be 'udp' or 'tcp', got {transport!r}")
        self.sim = sim
        self.network = network
        self.flows: List[Flow] = list(flows)
        self.transport = transport
        self.agents: List[object] = []
        self._installed = False

    def install(self) -> None:
        """Start every flow's transport agent."""
        if self._installed:
            raise RuntimeError("flow set already installed")
        self._installed = True
        starter: Callable = start_udp_flow if self.transport == "udp" else start_tcp_flow
        for flow in self.flows:
            self.agents.append(starter(self.sim, self.network, flow))
