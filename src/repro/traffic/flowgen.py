"""Poisson flow generation.

Each source host originates flows according to a Poisson process; every flow
picks a destination uniformly at random among the other hosts, draws its size
from the workload's heavy-tailed distribution, and is carried by either UDP
(open loop) or the simplified TCP (closed loop).  This mirrors the paper's
"each end host generates UDP flows using a Poisson inter-arrival model" with
"flow sizes picked from a heavy-tailed distribution".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.sim.flow import Flow
from repro.traffic.distributions import FlowSizeDistribution
from repro.transport.tcp import start_tcp_flow
from repro.transport.udp import start_udp_flow
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.network import Network


class PoissonFlowGenerator:
    """Generates flows from each source host with exponential inter-arrival times.

    Args:
        sim: Simulation engine.
        network: The network flows are injected into.
        sources: Host names that originate flows (defaults to all hosts).
        destinations: Candidate destination host names (defaults to all hosts;
            a flow never picks its own source as destination).
        arrival_rate_per_source: Poisson rate (flows/second) per source host.
        size_distribution: Flow-size distribution (bytes).
        transport: ``"udp"`` or ``"tcp"``.
        rng: Random source (a child stream is derived per source host).
        start_time: When flow generation begins.
        stop_time: When flow generation ends (flows already started keep
            running until the simulation ends).
        mss: Maximum segment size handed to the transport.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        arrival_rate_per_source: float,
        size_distribution: FlowSizeDistribution,
        transport: str = "udp",
        sources: Optional[Sequence[str]] = None,
        destinations: Optional[Sequence[str]] = None,
        rng: Optional[RandomState] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        mss: int = 1460,
    ) -> None:
        if arrival_rate_per_source <= 0:
            raise ValueError("arrival rate must be positive")
        if transport not in ("udp", "tcp"):
            raise ValueError(f"transport must be 'udp' or 'tcp', got {transport!r}")

        self.sim = sim
        self.network = network
        self.rate = arrival_rate_per_source
        self.size_distribution = size_distribution
        self.transport = transport
        all_hosts = [host.name for host in network.hosts()]
        self.sources: List[str] = list(sources) if sources is not None else all_hosts
        self.destinations: List[str] = (
            list(destinations) if destinations is not None else all_hosts
        )
        if not self.sources:
            raise ValueError("need at least one source host")
        if len(set(self.destinations)) < 2 and self.destinations == self.sources:
            raise ValueError("need at least two hosts to pick distinct src/dst pairs")
        self.rng = rng if rng is not None else RandomState(0)
        self.start_time = start_time
        self.stop_time = stop_time
        self.mss = mss

        self.flows: List[Flow] = []
        self.agents: List[object] = []
        self._installed = False

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def install(self) -> None:
        """Schedule the first flow arrival at every source host."""
        if self._installed:
            raise RuntimeError("flow generator already installed")
        self._installed = True
        for source in self.sources:
            first_gap = self.rng.exponential(1.0 / self.rate)
            self.sim.schedule_at(
                max(self.sim.now, self.start_time) + first_gap,
                self._arrival,
                source,
            )

    # ------------------------------------------------------------------ #
    # Flow arrivals
    # ------------------------------------------------------------------ #
    def _arrival(self, source: str) -> None:
        if self.stop_time is not None and self.sim.now > self.stop_time:
            return
        flow = self._create_flow(source)
        self.flows.append(flow)
        self._start_flow(flow)
        next_gap = self.rng.exponential(1.0 / self.rate)
        self.sim.schedule(next_gap, self._arrival, source)

    def _create_flow(self, source: str) -> Flow:
        destination = self._pick_destination(source)
        size = self.size_distribution.sample(self.rng)
        return Flow(
            src=source,
            dst=destination,
            size_bytes=size,
            start_time=self.sim.now,
            mss=self.mss,
        )

    def _pick_destination(self, source: str) -> str:
        candidates = [name for name in self.destinations if name != source]
        if not candidates:
            raise RuntimeError(f"no destination available for source {source}")
        return self.rng.choice(candidates)

    def _start_flow(self, flow: Flow) -> None:
        if self.transport == "udp":
            agent = start_udp_flow(self.sim, self.network, flow)
        else:
            agent = start_tcp_flow(self.sim, self.network, flow)
        self.agents.append(agent)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def completed_flows(self) -> List[Flow]:
        """Flows that finished delivering every byte."""
        return [flow for flow in self.flows if flow.completed]

    def completion_ratio(self) -> float:
        """Fraction of generated flows that completed."""
        if not self.flows:
            return 0.0
        return len(self.completed_flows()) / len(self.flows)


class StaticFlowSet:
    """A fixed, explicitly listed set of flows (used by the fairness experiment).

    Args:
        sim: Simulation engine.
        network: Target network.
        flows: Flows to start (their ``start_time`` fields are honored).
        transport: ``"udp"`` or ``"tcp"``.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        flows: Sequence[Flow],
        transport: str = "tcp",
    ) -> None:
        if transport not in ("udp", "tcp"):
            raise ValueError(f"transport must be 'udp' or 'tcp', got {transport!r}")
        self.sim = sim
        self.network = network
        self.flows: List[Flow] = list(flows)
        self.transport = transport
        self.agents: List[object] = []
        self._installed = False

    def install(self) -> None:
        """Start every flow's transport agent."""
        if self._installed:
            raise RuntimeError("flow set already installed")
        self._installed = True
        starter: Callable = start_udp_flow if self.transport == "udp" else start_tcp_flow
        for flow in self.flows:
            self.agents.append(starter(self.sim, self.network, flow))
