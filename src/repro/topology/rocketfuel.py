"""RocketFuel-like ISP topology.

Table 1 of the paper includes "a bigger Rocketfuel topology (with 83 routers
and 131 links in the core)".  The measured RocketFuel data files are not
redistributable here, so we generate a deterministic pseudo-random ISP-like
core with exactly 83 routers and 131 links: a random spanning tree (to
guarantee connectivity) plus extra random edges up to the target link count.
The paper's observation about this row of Table 1 depends on the topology's
scale and on "half of the core links ... set to have bandwidths smaller than
the access links", both of which are preserved.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.base import Topology
from repro.utils.rng import RandomState
from repro.utils.units import gbps, milliseconds


def rocketfuel_topology(
    num_core_routers: int = 83,
    num_core_links: int = 131,
    edge_routers_per_core: int = 1,
    hosts_per_edge: int = 1,
    access_bandwidth_bps: float = gbps(1),
    host_bandwidth_bps: float = gbps(10),
    fast_core_bandwidth_bps: float = gbps(10),
    slow_core_bandwidth_bps: float = gbps(0.62),
    seed: int = 42,
    scale: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Generate a RocketFuel-like ISP topology.

    Half of the core links use ``slow_core_bandwidth_bps`` (smaller than the
    access links) and half use ``fast_core_bandwidth_bps``, reproducing the
    bandwidth skew the paper identifies as the cause of the higher replay
    failure rate on this topology.

    Args:
        num_core_routers: Core router count (paper: 83).
        num_core_links: Core link count (paper: 131).
        edge_routers_per_core: Edge-router fan-out per core router.
        hosts_per_edge: Hosts per edge router.
        seed: Seed for the deterministic topology generator.
        scale: Divide every bandwidth by this factor for laptop-scale runs.
    """
    if num_core_links < num_core_routers - 1:
        raise ValueError("need at least a spanning tree's worth of core links")
    if scale <= 0:
        raise ValueError("scale must be positive")

    rng = RandomState(seed)
    topo = Topology(name or f"rocketfuel-{num_core_routers}r-{num_core_links}l")

    def scaled(bandwidth: float) -> float:
        return bandwidth / scale

    core_names = [topo.add_router(f"core-{i}") for i in range(num_core_routers)]

    # Random spanning tree: attach each new router to a uniformly random
    # earlier router, which yields a connected, loosely hierarchical core.
    edges = set()
    for index in range(1, num_core_routers):
        parent = rng.randint(0, index)
        edges.add((parent, index))

    # Add extra random edges until we reach the target link count.
    attempts = 0
    max_attempts = 100 * num_core_links
    while len(edges) < num_core_links and attempts < max_attempts:
        attempts += 1
        a = rng.randint(0, num_core_routers)
        b = rng.randint(0, num_core_routers)
        if a == b:
            continue
        edge = (min(a, b), max(a, b))
        if edge in edges:
            continue
        edges.add(edge)
    if len(edges) < num_core_links:
        raise RuntimeError(
            "failed to generate the requested number of core links; "
            "increase the router count or lower the link count"
        )

    ordered_edges = sorted(edges)
    for index, (a, b) in enumerate(ordered_edges):
        bandwidth = (
            slow_core_bandwidth_bps if index % 2 == 0 else fast_core_bandwidth_bps
        )
        delay = milliseconds(1.0 + (index % 7))
        topo.add_link(core_names[a], core_names[b], scaled(bandwidth), delay)

    edge_delay = milliseconds(0.5)
    host_delay = milliseconds(0.05)
    for core_index, core in enumerate(core_names):
        for edge_index in range(edge_routers_per_core):
            edge_name = f"edge-{core_index}-{edge_index}"
            topo.add_router(edge_name)
            topo.add_link(edge_name, core, scaled(access_bandwidth_bps), edge_delay)
            for host_index in range(hosts_per_edge):
                host_name = f"host-{core_index}-{edge_index}-{host_index}"
                topo.add_host(host_name)
                topo.add_link(host_name, edge_name, scaled(host_bandwidth_bps), host_delay)
    return topo
