"""Internet2-like backbone topology.

The paper's default topology is "a simplified Internet-2 topology, identical
to the one used in [21] (consisting of 10 routers and 16 links in the core)";
each core router is connected to 10 edge routers, and each edge router to one
end host.  The exact Internet2 fiber map is not load-bearing for the paper's
claims — what matters is:

* 10 core routers, 16 core links (so paths traverse 4–7 hops),
* the relative bandwidths of host↔edge, edge↔core, and core links, which the
  paper varies across Table-1 rows (1 Gbps-10 Gbps, 1 Gbps-1 Gbps,
  10 Gbps-10 Gbps), and
* a heterogeneous core in which some links are slower than the access links.

We therefore construct the core from a fixed adjacency list modelled after
the Abilene/Internet2 backbone (10 PoPs, 16 links) with kilometre-scale
propagation delays, and expose the three bandwidth knobs.

For laptop-scale runs the ``scale`` parameter divides every bandwidth by a
constant and ``edge_routers_per_core`` shrinks the fan-out; utilization-driven
experiments are insensitive to the absolute scale.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.base import Topology
from repro.utils.units import gbps, milliseconds

#: Core PoPs (10 routers), loosely named after Internet2 points of presence.
CORE_ROUTERS = [
    "seattle",
    "sunnyvale",
    "losangeles",
    "denver",
    "kansascity",
    "houston",
    "chicago",
    "atlanta",
    "washington",
    "newyork",
]

#: 16 core links (pairs of PoP indices) with one-way propagation delays in ms.
#: The adjacency gives path lengths of 1–5 core hops (4–7 hops once the edge
#: and access links are included), matching the paper's setup.
CORE_LINKS = [
    ("seattle", "sunnyvale", 4.0),
    ("seattle", "denver", 6.0),
    ("seattle", "chicago", 10.0),
    ("sunnyvale", "losangeles", 2.0),
    ("sunnyvale", "denver", 5.0),
    ("losangeles", "houston", 7.0),
    ("denver", "kansascity", 3.0),
    ("kansascity", "houston", 4.0),
    ("kansascity", "chicago", 3.0),
    ("houston", "atlanta", 5.0),
    ("chicago", "atlanta", 5.0),
    ("chicago", "newyork", 4.0),
    ("atlanta", "washington", 3.0),
    ("washington", "newyork", 2.0),
    ("losangeles", "atlanta", 10.0),
    ("denver", "chicago", 5.0),
]

#: Core-link bandwidth pattern: the Internet2-like core is heterogeneous, with
#: a little over half the links at 10 Gbps and the rest at 2.4 Gbps (OC-48
#: class).  Indexed in the same order as :data:`CORE_LINKS`.
CORE_BANDWIDTH_PATTERN_GBPS = [10, 2.4, 10, 2.4, 10, 2.4, 10, 2.4, 10, 2.4,
                               10, 2.4, 10, 2.4, 10, 10]


def internet2_topology(
    edge_core_bandwidth_bps: float = gbps(1),
    host_edge_bandwidth_bps: float = gbps(10),
    core_bandwidth_bps: Optional[float] = None,
    edge_routers_per_core: int = 10,
    hosts_per_edge: int = 1,
    scale: float = 1.0,
    propagation_scale: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Build the Internet2-like topology used throughout the paper.

    Args:
        edge_core_bandwidth_bps: Bandwidth of edge-router ↔ core-router links
            (the first number in the paper's "I2 X-Y" naming).
        host_edge_bandwidth_bps: Bandwidth of host ↔ edge-router links (the
            second number in the naming).
        core_bandwidth_bps: If given, every core link uses this bandwidth;
            otherwise the heterogeneous 10 / 2.4 Gbps pattern is used.
        edge_routers_per_core: Fan-out of each core router (paper: 10).
        hosts_per_edge: Hosts attached to each edge router (paper: 1).
        scale: Every bandwidth is divided by this factor.  Scaling all
            bandwidths equally preserves utilization and queueing behaviour
            while letting short simulations carry far fewer packets.
        propagation_scale: Multiplier on the core propagation delays (the
            fairness experiment shrinks propagation to converge faster).
        name: Override the generated topology name.
    """
    if edge_routers_per_core < 1:
        raise ValueError("need at least one edge router per core router")
    if hosts_per_edge < 1:
        raise ValueError("need at least one host per edge router")
    if scale <= 0:
        raise ValueError("scale must be positive")

    def scaled(bandwidth: float) -> float:
        return bandwidth / scale

    label = name or (
        f"I2-{edge_core_bandwidth_bps / gbps(1):g}Gbps-"
        f"{host_edge_bandwidth_bps / gbps(1):g}Gbps"
    )
    topo = Topology(label)

    for router in CORE_ROUTERS:
        topo.add_router(f"core-{router}")

    for index, (a, b, delay_ms) in enumerate(CORE_LINKS):
        if core_bandwidth_bps is not None:
            bandwidth = core_bandwidth_bps
        else:
            bandwidth = gbps(CORE_BANDWIDTH_PATTERN_GBPS[index])
        topo.add_link(
            f"core-{a}",
            f"core-{b}",
            scaled(bandwidth),
            milliseconds(delay_ms) * propagation_scale,
        )

    edge_delay = milliseconds(0.5) * propagation_scale
    host_delay = milliseconds(0.05) * propagation_scale
    for core in CORE_ROUTERS:
        for edge_index in range(edge_routers_per_core):
            edge_name = f"edge-{core}-{edge_index}"
            topo.add_router(edge_name)
            topo.add_link(
                edge_name, f"core-{core}", scaled(edge_core_bandwidth_bps), edge_delay
            )
            for host_index in range(hosts_per_edge):
                host_name = f"host-{core}-{edge_index}-{host_index}"
                topo.add_host(host_name)
                topo.add_link(
                    host_name, edge_name, scaled(host_edge_bandwidth_bps), host_delay
                )
    return topo
