"""Full-bisection-bandwidth fat-tree datacenter topology.

Table 1's "Datacenter" row uses the full-bisection-bandwidth fat-tree from
pFabric with 10 Gbps links.  We build the standard k-ary fat-tree: ``k`` pods,
each with ``k/2`` edge and ``k/2`` aggregation switches, ``(k/2)^2`` core
switches, and ``k^3/4`` hosts, every link at the same bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.base import Topology
from repro.utils.units import gbps, microseconds


def fattree_topology(
    k: int = 4,
    bandwidth_bps: float = gbps(10),
    link_delay: float = microseconds(2),
    host_link_delay: float = microseconds(1),
    scale: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Build a k-ary fat-tree.

    Args:
        k: Fat-tree arity; must be even.  ``k=4`` gives 16 hosts and 20
            switches, ``k=8`` gives 128 hosts.
        bandwidth_bps: Uniform link bandwidth (paper: 10 Gbps).
        link_delay: Propagation delay of switch-to-switch links.
        host_link_delay: Propagation delay of host-to-edge links.
        scale: Divide every bandwidth by this factor for laptop-scale runs.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat-tree arity must be a positive even number, got {k}")
    if scale <= 0:
        raise ValueError("scale must be positive")

    bandwidth = bandwidth_bps / scale
    half = k // 2
    topo = Topology(name or f"fattree-k{k}")

    core_switches = [
        topo.add_router(f"core-{i}-{j}") for i in range(half) for j in range(half)
    ]

    for pod in range(k):
        aggregation = [topo.add_router(f"agg-{pod}-{i}") for i in range(half)]
        edges = [topo.add_router(f"edge-{pod}-{i}") for i in range(half)]

        # Aggregation <-> core: aggregation switch i connects to core group i.
        for agg_index, agg in enumerate(aggregation):
            for j in range(half):
                core = core_switches[agg_index * half + j]
                topo.add_link(agg, core, bandwidth, link_delay)

        # Edge <-> aggregation: full mesh within the pod.
        for edge in edges:
            for agg in aggregation:
                topo.add_link(edge, agg, bandwidth, link_delay)

        # Hosts <-> edge.
        for edge_index, edge in enumerate(edges):
            for host_index in range(half):
                host = topo.add_host(f"host-{pod}-{edge_index}-{host_index}")
                topo.add_link(host, edge, bandwidth, host_link_delay)

    return topo
