"""Topology specifications.

A :class:`Topology` is a declarative description (nodes + links) that can be
instantiated into a live :class:`~repro.sim.network.Network` any number of
times.  The replay engine relies on this: the original run and the replay run
are built from the same specification but with different scheduler factories,
guaranteeing that only the scheduling logic differs between the two runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.engine import Simulator
from repro.sim.network import Network, SchedulerFactory
from repro.sim.tracer import Tracer


@dataclass(frozen=True)
class NodeSpec:
    """One node in a topology: a ``"host"`` or a ``"router"``."""

    name: str
    kind: str = "router"

    def __post_init__(self) -> None:
        if self.kind not in ("host", "router"):
            raise ValueError(f"node kind must be 'host' or 'router', got {self.kind!r}")


@dataclass(frozen=True)
class LinkSpec:
    """One full-duplex link in a topology."""

    a: str
    b: str
    bandwidth_bps: float
    propagation_delay: float = 0.0
    buffer_bytes: Optional[float] = None


@dataclass
class Topology:
    """A reusable topology description.

    Attributes:
        name: Human-readable topology name (appears in experiment output).
        nodes: All nodes.
        links: All full-duplex links.
    """

    name: str
    nodes: List[NodeSpec] = field(default_factory=list)
    links: List[LinkSpec] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_host(self, name: str) -> str:
        """Append a host node and return its name."""
        self.nodes.append(NodeSpec(name, "host"))
        return name

    def add_router(self, name: str) -> str:
        """Append a router node and return its name."""
        self.nodes.append(NodeSpec(name, "router"))
        return name

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        propagation_delay: float = 0.0,
        buffer_bytes: Optional[float] = None,
    ) -> None:
        """Append a full-duplex link between two declared nodes."""
        self.links.append(LinkSpec(a, b, bandwidth_bps, propagation_delay, buffer_bytes))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def host_names(self) -> List[str]:
        """Names of all hosts, in declaration order."""
        return [node.name for node in self.nodes if node.kind == "host"]

    def router_names(self) -> List[str]:
        """Names of all routers, in declaration order."""
        return [node.name for node in self.nodes if node.kind == "router"]

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        """Total number of full-duplex links."""
        return len(self.links)

    def bottleneck_bandwidth_bps(self) -> float:
        """Bandwidth of the slowest link in the topology."""
        if not self.links:
            raise ValueError(f"topology {self.name} has no links")
        return min(link.bandwidth_bps for link in self.links)

    def bottleneck_transmission_time(self, size_bytes: float) -> float:
        """Transmission time of ``size_bytes`` on the slowest link.

        This is the threshold ``T`` used in Table 1 of the paper ("overdue by
        more than one transmission time on the bottleneck link").  Computing
        it from the link specs means callers never need to instantiate a
        probe network just to find the threshold.
        """
        from repro.utils.units import transmission_delay

        return transmission_delay(size_bytes, self.bottleneck_bandwidth_bps())

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable spec (used by schedule files and the cache key)."""
        return {
            "name": self.name,
            "nodes": [[node.name, node.kind] for node in self.nodes],
            "links": [
                [
                    link.a,
                    link.b,
                    link.bandwidth_bps,
                    link.propagation_delay,
                    link.buffer_bytes,
                ]
                for link in self.links
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        """Rebuild a topology from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            nodes=[NodeSpec(name, kind) for name, kind in data["nodes"]],
            links=[
                LinkSpec(a, b, bandwidth, propagation, buffer_bytes)
                for a, b, bandwidth, propagation, buffer_bytes in data["links"]
            ],
        )

    def validate(self) -> None:
        """Check internal consistency (unique names, links reference known nodes)."""
        names = [node.name for node in self.nodes]
        if len(names) != len(set(names)):
            raise ValueError(f"topology {self.name}: duplicate node names")
        known = set(names)
        for link in self.links:
            for endpoint in (link.a, link.b):
                if endpoint not in known:
                    raise ValueError(
                        f"topology {self.name}: link references unknown node {endpoint!r}"
                    )

    # ------------------------------------------------------------------ #
    # Instantiation
    # ------------------------------------------------------------------ #
    def build(
        self,
        sim: Simulator,
        scheduler_factory: SchedulerFactory,
        tracer: Optional[Tracer] = None,
        default_buffer_bytes: Optional[float] = None,
    ) -> Network:
        """Instantiate this topology into a live network.

        Args:
            sim: The simulation engine for this run.
            scheduler_factory: Scheduler deployed at each output port.
            tracer: Optional trace collector.
            default_buffer_bytes: Buffer capacity for links that do not
                specify their own (``None`` = infinite).
        """
        self.validate()
        network = Network(
            sim,
            scheduler_factory,
            tracer=tracer,
            default_buffer_bytes=default_buffer_bytes,
        )
        for node in self.nodes:
            if node.kind == "host":
                network.add_host(node.name)
            else:
                network.add_router(node.name)
        for link in self.links:
            network.add_link(
                link.a,
                link.b,
                link.bandwidth_bps,
                link.propagation_delay,
                buffer_bytes=link.buffer_bytes,
            )
        return network


def linear_topology(
    num_routers: int,
    bandwidth_bps: float,
    propagation_delay: float = 0.0,
    hosts_per_end: int = 1,
    access_bandwidth_bps: Optional[float] = None,
    name: str = "linear",
) -> Topology:
    """A chain of routers with hosts hanging off both ends.

    Useful for unit tests and for constructing scenarios with a controlled
    number of congestion points.
    """
    if num_routers < 1:
        raise ValueError("need at least one router")
    topo = Topology(name)
    access_bw = access_bandwidth_bps if access_bandwidth_bps is not None else bandwidth_bps
    routers = [topo.add_router(f"r{i}") for i in range(num_routers)]
    for left, right in zip(routers[:-1], routers[1:]):
        topo.add_link(left, right, bandwidth_bps, propagation_delay)
    for index in range(hosts_per_end):
        src = topo.add_host(f"src{index}")
        dst = topo.add_host(f"dst{index}")
        topo.add_link(src, routers[0], access_bw, propagation_delay)
        topo.add_link(routers[-1], dst, access_bw, propagation_delay)
    return topo


def dumbbell_topology(
    num_pairs: int,
    bottleneck_bandwidth_bps: float,
    access_bandwidth_bps: float,
    bottleneck_delay: float = 0.0,
    access_delay: float = 0.0,
    name: str = "dumbbell",
) -> Topology:
    """The classic dumbbell: N sources and N sinks sharing one bottleneck link."""
    if num_pairs < 1:
        raise ValueError("need at least one host pair")
    topo = Topology(name)
    left = topo.add_router("left")
    right = topo.add_router("right")
    topo.add_link(left, right, bottleneck_bandwidth_bps, bottleneck_delay)
    for index in range(num_pairs):
        src = topo.add_host(f"src{index}")
        dst = topo.add_host(f"dst{index}")
        topo.add_link(src, left, access_bandwidth_bps, access_delay)
        topo.add_link(right, dst, access_bandwidth_bps, access_delay)
    return topo


def single_switch_topology(
    num_hosts: int,
    bandwidth_bps: float,
    propagation_delay: float = 0.0,
    name: str = "single-switch",
) -> Topology:
    """A star: one router with ``num_hosts`` hosts attached (single congestion point)."""
    if num_hosts < 2:
        raise ValueError("need at least two hosts")
    topo = Topology(name)
    switch = topo.add_router("switch")
    for index in range(num_hosts):
        host = topo.add_host(f"h{index}")
        topo.add_link(host, switch, bandwidth_bps, propagation_delay)
    return topo
