"""Topology specifications and generators for the paper's evaluation scenarios."""

from repro.topology.base import (
    LinkSpec,
    NodeSpec,
    Topology,
    dumbbell_topology,
    linear_topology,
    single_switch_topology,
)
from repro.topology.fattree import fattree_topology
from repro.topology.internet2 import (
    CORE_LINKS,
    CORE_ROUTERS,
    internet2_topology,
)
from repro.topology.rocketfuel import rocketfuel_topology

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "Topology",
    "linear_topology",
    "dumbbell_topology",
    "single_switch_topology",
    "internet2_topology",
    "rocketfuel_topology",
    "fattree_topology",
    "CORE_ROUTERS",
    "CORE_LINKS",
]
