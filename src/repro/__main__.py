"""``python -m repro`` — the experiment pipeline CLI.

Subcommands:

* ``run`` — run experiments (all or by name), optionally fanned out across
  worker processes, with the on-disk schedule cache enabled by default::

      python -m repro run --all --workers 4
      python -m repro run table1 figure2 --scale smoke --json

* ``list`` — show every registered experiment and its cells at a scale (or
  the workload / slack-policy registries)::

      python -m repro list --scale quick
      python -m repro list --workloads
      python -m repro list --slack-policies
      python -m repro list --backends
      python -m repro list --faults

* ``record`` — record one scenario's original schedule to a file (the file
  carries the topology spec, so it is self-contained)::

      python -m repro record I2-1G-10G@70 --out schedule.jsonl.gz

* ``replay`` — replay a recorded schedule file under a candidate universal
  scheduler (optionally with heuristic slack initialization) and print the
  Table-1 metrics::

      python -m repro replay schedule.jsonl.gz --mode lstf
      python -m repro replay schedule.jsonl.gz --slack-policy deadline

* ``bench`` — measure the record→replay hot path (wall time, events/sec,
  cells/sec per experiment), optionally writing a ``BENCH_*.json`` payload
  and gating against committed baseline numbers::

      python -m repro bench --quick --repeat 3 --out BENCH_PR3.json
      python -m repro bench --quick --baseline BENCH_PR3.json --check

* ``diff`` — compare two schedules (or a schedule against a fresh replay of
  itself, or re-run a fuzz artifact) and report the first divergent packet
  with a field-level diff; exit 0 = match, 1 = diverged, 2 = config error::

      python -m repro diff a.jsonl.gz b.jsonl.gz
      python -m repro diff --replay schedule.jsonl.gz --backend compiled
      python -m repro diff --case fuzz-artifacts/case-1-7.json

* ``fuzz`` — differential fuzzing of the bit-identity contract: seeded
  random scenarios replayed through every available backend pair plus
  live-vs-replay twins, with failures shrunk to minimal repro artifacts::

      python -m repro fuzz --budget 25 --seed 1 --artifacts fuzz-artifacts

See ``docs/diff.md`` for the comparator contract and the fuzz workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

#: Default directory for the on-disk schedule cache.
DEFAULT_CACHE_DIR = ".repro-cache"


class _CLIError(Exception):
    """A user-facing configuration error (printed to stderr, exit 2)."""


def _build_initializer(mode: str, slack_policy: Optional[str]):
    """The replay initializer for ``--slack-policy``, or ``None``.

    Raises:
        _CLIError: unknown policy, policy/mode mismatch, or a live-only
            policy that cannot drive a replay.
    """
    if slack_policy is None:
        return None
    from repro.core.slack_policy import POLICY_COMPATIBLE_MODES, SLACK_POLICIES

    try:
        policy = SLACK_POLICIES.get(slack_policy)
    except KeyError as error:
        raise _CLIError(error.args[0]) from error
    if mode not in POLICY_COMPATIBLE_MODES:
        raise _CLIError(
            f"slack policy {policy.name!r} cannot drive replay mode "
            f"{mode!r}; compatible modes: {', '.join(POLICY_COMPATIBLE_MODES)}"
        )
    try:
        return policy.build_initializer()
    except ValueError as error:  # live-only policy
        raise _CLIError(str(error)) from error


def _build_fault_plan(fault: Optional[str], fault_seed: int):
    """The fault plan for ``--fault``, or ``None``.

    Raises:
        _CLIError: unknown fault-schedule name.
    """
    if fault is None:
        return None
    from repro.faults import FAULTS, FaultPlan

    try:
        return FaultPlan(FAULTS.get(fault), seed=fault_seed)
    except KeyError as error:
        raise _CLIError(error.args[0]) from error


def _load_schedule_file(path: str):
    """Load a schedule file, mapping every read/parse failure to exit 2.

    Raises:
        _CLIError: missing or unreadable file, truncated gzip stream
            (``EOFError``), malformed JSON lines (``ValueError``), or record
            lines missing required fields (``KeyError``).
    """
    from repro.core.schedule import load_schedule

    try:
        return load_schedule(path)
    except (OSError, EOFError, ValueError) as error:
        raise _CLIError(f"cannot load {path}: {error}") from error
    except KeyError as error:
        raise _CLIError(
            f"cannot load {path}: record missing required field {error}"
        ) from error


def _scale(name: str):
    from repro.experiments.config import ExperimentScale

    presets = {
        "quick": ExperimentScale.quick,
        "smoke": ExperimentScale.smoke,
        "paper": ExperimentScale.paper,
    }
    return presets[name]()


def _add_scale_argument(parser) -> None:
    parser.add_argument(
        "--scale",
        choices=("quick", "smoke", "paper"),
        default="quick",
        help="scale preset (default: quick; paper takes hours)",
    )


def _add_backend_argument(parser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        help="simulation engine for replays: python (reference), vectorized "
        "(numpy fast path), or compiled (native kernel; optional build) — "
        "all bit-identical rows; see `list --backends`. Default: "
        "$REPRO_BACKEND or python. See docs/backends.md",
    )


def _replay_scenarios(scale) -> dict:
    """All named replay scenarios across registered experiments."""
    from repro.pipeline.experiment import default_registry

    scenarios = {}
    for definition in default_registry():
        lister = getattr(definition, "scenarios", None)
        if lister is None:
            continue
        for scenario in lister(scale):
            scenarios.setdefault(scenario.name, scenario)
    return scenarios


# ---------------------------------------------------------------------- #
# run
# ---------------------------------------------------------------------- #
def cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import format_result, results_to_json
    from repro.pipeline.experiment import default_registry
    from repro.pipeline.runner import run_pipeline
    from repro.pipeline.scenario import PipelineConfigError

    registry = default_registry()
    if args.all or not args.experiments:
        names = registry.names()
    else:
        names = args.experiments
    cache_dir = None if args.no_cache else args.cache_dir
    scale_name = "quick" if args.quick else args.scale
    try:
        summary = run_pipeline(
            names=names,
            scale=_scale(scale_name),
            workers=args.workers,
            cache_dir=cache_dir,
            replicates=args.replicates,
            workload=args.workload,
            slack_policy=args.slack_policy,
            backend=args.backend,
            faults=args.fault,
            fault_seed=args.fault_seed,
            cell_timeout=args.cell_timeout,
            max_retries=args.max_retries,
            shard_packets=args.shard_packets,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except PipelineConfigError as error:
        # Expansion-time validation only (e.g. a live-only policy pinned
        # onto replay scenarios); mid-run errors keep their tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        payload = json.loads(results_to_json(summary.results))
        payload["_summary"] = {
            "cells": summary.cells,
            "workers": summary.workers,
            "wall_time": summary.wall_time,
            "cache_hits": summary.cache_hits,
            "cache_misses": summary.cache_misses,
            "records_computed": summary.records_computed,
            "notes": summary.notes,
        }
        payload["errors"] = [error.to_dict() for error in summary.errors]
        print(json.dumps(payload, indent=2, default=str))
    else:
        for result in summary.results.values():
            print(format_result(result))
            print()
        print(summary.format())
    if summary.errors:
        # The run itself completed (every surviving row was printed above);
        # the nonzero exit is how scripts and CI notice the missing cells.
        for error in summary.errors:
            print(
                f"error: cell {error.cell_id} failed after {error.attempts} "
                f"attempt(s): {error.error_type}: {error.message}",
                file=sys.stderr,
            )
        return 1
    return 0


# ---------------------------------------------------------------------- #
# list
# ---------------------------------------------------------------------- #
def _workload_entries() -> List[dict]:
    from repro.traffic.registry import WORKLOADS

    entries = []
    for definition in WORKLOADS:
        entries.append(
            {
                "name": definition.name,
                "group": definition.group,
                "distribution": definition.distribution.kind,
                "mean_flow_kb": definition.mean_flow_size() / 1e3,
                "perturbations": definition.describe_perturbations(),
                "description": definition.description,
            }
        )
    return entries


def _slack_policy_entries() -> List[dict]:
    from repro.core.slack_policy import SLACK_POLICIES

    entries = []
    for definition in SLACK_POLICIES:
        entries.append(
            {
                "name": definition.name,
                "kind": definition.kind,
                "modes": definition.capability(),
                "params": definition.describe_params(),
                "description": definition.description,
            }
        )
    return entries


def _backend_entries() -> List[dict]:
    from repro.sim.backend import describe_backends

    return describe_backends()


def _fault_entries() -> List[dict]:
    from repro.faults import FAULTS

    entries = []
    for definition in FAULTS:
        entries.append(
            {
                "name": definition.name,
                "faults": len(definition.faults),
                "kinds": ", ".join(
                    sorted({fault.kind for fault in definition.faults})
                ) or "-",
                "description": definition.description,
            }
        )
    return entries


def cmd_list(args: argparse.Namespace) -> int:
    from repro.pipeline.experiment import default_registry

    if args.backends:
        entries = _backend_entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        name_width = max(len(e["name"]) for e in entries)
        print(f"{len(entries)} backend(s) in the registry:")
        for entry in entries:
            status = "available" if entry["available"] else "UNAVAILABLE"
            print(f"  {entry['name']:<{name_width}}  {status:<11}  {entry['replay_note']}")
            if not entry["available"]:
                print(f"  {'':<{name_width}}  reason: {entry['reason']}")
            elif entry["build"]:
                build = entry["build"]
                built_with = ", ".join(
                    f"{key}={build[key]}"
                    for key in ("toolchain", "compiler", "kernel_version")
                    if build.get(key) is not None
                )
                print(f"  {'':<{name_width}}  build: {built_with}")
        print(
            "\nselect with `--backend <name>` on run/replay/bench or "
            "$REPRO_BACKEND; unavailable backends decline and replays fall "
            "back to the reference engine (docs/backends.md)"
        )
        return 0

    if args.faults:
        entries = _fault_entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        name_width = max(len(e["name"]) for e in entries)
        kinds_width = max(len(e["kinds"]) for e in entries)
        print(f"{len(entries)} fault schedule(s) in the registry:")
        for entry in entries:
            print(
                f"  {entry['name']:<{name_width}}  {entry['faults']} fault(s)  "
                f"{entry['kinds']:<{kinds_width}}  {entry['description']}"
            )
        print(
            "\nuse with `run faults --fault <name>` or `replay --fault <name>`; "
            "faults hit the replay network only (docs/faults.md)"
        )
        return 0

    if args.slack_policies:
        entries = _slack_policy_entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        name_width = max(len(e["name"]) for e in entries)
        kind_width = max(len(e["kind"]) for e in entries)
        modes_width = max(len(e["modes"]) for e in entries)
        params_width = max(len(e["params"]) for e in entries)
        print(f"{len(entries)} slack polic(ies) in the registry:")
        for entry in entries:
            print(
                f"  {entry['name']:<{name_width}}  {entry['kind']:<{kind_width}}  "
                f"{entry['modes']:<{modes_width}}  "
                f"{entry['params']:<{params_width}}  {entry['description']}"
            )
        print(
            "\nmodes: `live` policies stamp packets at send time (figure2-4, "
            "heuristics live columns);\n`replay` policies initialize replayed "
            "headers (run/replay --slack-policy)"
        )
        return 0

    if args.workloads:
        entries = _workload_entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        name_width = max(len(e["name"]) for e in entries)
        group_width = max(len(e["group"]) for e in entries)
        dist_width = max(len(e["distribution"]) for e in entries)
        print(f"{len(entries)} workload(s) in the registry:")
        for entry in entries:
            print(
                f"  {entry['name']:<{name_width}}  {entry['group']:<{group_width}}  "
                f"{entry['distribution']:<{dist_width}}  "
                f"mean {entry['mean_flow_kb']:8.1f} KB  {entry['perturbations']}"
            )
        print("\nuse with `run <experiment> --workload <name>` or via the adversarial group")
        return 0

    scale = _scale(args.scale)
    registry = default_registry()
    entries = []
    for definition in registry:
        cells = definition.cells(scale)
        entries.append(
            {
                "name": definition.name,
                "cells": len(cells),
                "labels": sorted({cell.label for cell in cells}),
                "modes": sorted({cell.mode for cell in cells}),
            }
        )
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    name_width = max(len(entry["name"]) for entry in entries)
    print(f"{len(entries)} experiment(s) at {args.scale} scale:")
    for entry in entries:
        print(
            f"  {entry['name']:<{name_width}}  {entry['cells']:>3} cell(s)  "
            f"modes: {', '.join(entry['modes'])}"
        )
    print("\nscenario labels (use with `record`):")
    for name in sorted(_replay_scenarios(scale)):
        print(f"  {name}")
    return 0


# ---------------------------------------------------------------------- #
# record
# ---------------------------------------------------------------------- #
def cmd_record(args: argparse.Namespace) -> int:
    from repro.pipeline.cache import schedule_cache_key, workload_fingerprint
    from repro.pipeline.experiment import record_scenario_schedule
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids

    scale = _scale(args.scale)
    scenarios = _replay_scenarios(scale)
    scenario = scenarios.get(args.scenario)
    if scenario is None:
        known = ", ".join(sorted(scenarios))
        print(f"error: unknown scenario {args.scenario!r}; known: {known}", file=sys.stderr)
        return 2
    reset_packet_ids()
    reset_flow_ids()
    topology = scenario.build_topology()
    workload = scenario.workload()
    schedule = record_scenario_schedule(scenario, topology, workload)
    meta = {
        "scenario": scenario.name,
        "original": scenario.original,
        "seed": scenario.seed,
        "scale": args.scale,
        "key": schedule_cache_key(
            topology,
            scenario.original,
            workload,
            scenario.seed,
            slack_policy=scenario.slack_policy_def(),
            slack_mode=scenario.slack_mode,
        ),
        "workload": workload_fingerprint(workload),
        "topology": topology.to_dict(),
        "mss": workload.mss,
    }
    schedule.to_jsonl(args.out, meta=meta)
    print(
        f"recorded {len(schedule)} packets of scenario {scenario.name} "
        f"({scenario.original} original) -> {args.out}"
    )
    return 0


# ---------------------------------------------------------------------- #
# replay
# ---------------------------------------------------------------------- #
def cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.replay import REPLAY_MODES, evaluate_replay
    from repro.pipeline.scenario import PipelineConfigError
    from repro.sim.flow import reset_flow_ids
    from repro.sim.packet import reset_packet_ids
    from repro.topology.base import Topology

    if args.mode not in REPLAY_MODES:
        known = ", ".join(sorted(REPLAY_MODES))
        print(f"error: unknown replay mode {args.mode!r}; known: {known}", file=sys.stderr)
        return 2
    try:
        initializer = _build_initializer(args.mode, args.slack_policy)
        fault_plan = _build_fault_plan(args.fault, args.fault_seed)
        schedule, meta = _load_schedule_file(args.schedule)
    except _CLIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if "topology" not in meta:
        print(
            f"error: {args.schedule} carries no topology spec; "
            "was it written by `python -m repro record`?",
            file=sys.stderr,
        )
        return 2
    reset_packet_ids()
    reset_flow_ids()
    topology = Topology.from_dict(meta["topology"])
    try:
        result = evaluate_replay(
            topology,
            schedule,
            mode=args.mode,
            threshold_packet_bytes=float(meta.get("mss", 1460)),
            initializer=initializer,
            backend=args.backend,
            faults=fault_plan,
        )
    except PipelineConfigError as error:
        # e.g. --backend vectorized without numpy installed
        print(f"error: {error}", file=sys.stderr)
        return 2
    row = {
        "scenario": meta.get("scenario"),
        "original": meta.get("original"),
        "replay_mode": args.mode,
        "slack_policy": args.slack_policy,
        "fault": args.fault,
        "fault_seed": args.fault_seed,
        "packets": result.metrics.total_packets,
        "delivered_fraction": result.metrics.delivered_fraction,
        "fraction_overdue": result.overdue_fraction,
        "fraction_overdue_beyond_T": result.overdue_beyond_threshold_fraction,
        "threshold": result.metrics.threshold,
    }
    if args.json:
        print(json.dumps(row, indent=2))
    else:
        print(
            f"replayed {row['packets']} packets of {row['scenario']} with {args.mode}: "
            f"{row['delivered_fraction']:.4%} delivered, "
            f"{row['fraction_overdue']:.4%} overdue, "
            f"{row['fraction_overdue_beyond_T']:.4%} overdue by more than "
            f"T={row['threshold']:.3e}s"
        )
    return 0


# ---------------------------------------------------------------------- #
# bench
# ---------------------------------------------------------------------- #
def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        bench_payload,
        find_regressions,
        load_bench,
        run_bench,
        save_bench,
        speedup_vs_baseline,
    )
    from repro.pipeline.scenario import PipelineConfigError

    scale_name = "quick" if args.quick else args.scale
    if args.check and args.baseline is None:
        # Pure argument validation: fail before spending minutes (or, at
        # paper scale, hours) measuring.
        print("error: --check requires --baseline", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_bench(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"error: cannot load baseline {args.baseline}: {error}", file=sys.stderr)
            return 2
    try:
        report = run_bench(
            experiments=args.experiments or None,
            scale=scale_name,
            repeat=args.repeat,
            backend=args.backend,
            replay_path=not args.no_replay_path,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    except PipelineConfigError as error:
        # e.g. --backend vectorized without numpy installed
        print(f"error: {error}", file=sys.stderr)
        return 2
    except RuntimeError as error:
        # Determinism violation: the message embeds the first-divergence
        # report (repro.diff) for the packet that broke bit-identity.
        print(f"error: {error}", file=sys.stderr)
        return 1

    payload = bench_payload(report, label=args.label, baseline=baseline)
    if args.out is not None:
        save_bench(args.out, payload)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.format())
        if baseline is not None:
            for name, entry in speedup_vs_baseline(
                report, baseline.get("results", baseline)
            ).items():
                wall = entry.get("wall_time")
                if wall is not None:
                    print(f"  speedup vs baseline [{name}]: {wall:.2f}x wall-clock")
        if args.out is not None:
            print(f"wrote {args.out}")

    if args.check:
        assert baseline is not None  # validated before the measurement ran
        regressions, digest_mismatches = find_regressions(
            report, baseline, max_slowdown=args.max_slowdown
        )
        for warning in digest_mismatches:
            print(f"warning: determinism drift — {warning}", file=sys.stderr)
        if regressions:
            for regression in regressions:
                print(
                    f"REGRESSION (> {args.max_slowdown:.0%} slowdown): "
                    f"{regression.describe()}",
                    file=sys.stderr,
                )
            return 1
        print(f"perf gate OK (threshold: {args.max_slowdown:.0%} slowdown)")
    return 0


# ---------------------------------------------------------------------- #
# diff
# ---------------------------------------------------------------------- #
def _diff_report(divergence, matched_label: str, as_json: bool) -> int:
    """Print a comparison outcome; exit 0 on match, 1 on divergence."""
    if as_json:
        payload = {
            "match": divergence is None,
            "divergence": None if divergence is None else divergence.to_dict(),
        }
        print(json.dumps(payload, indent=2, default=str))
    elif divergence is None:
        print(matched_label)
    else:
        print(divergence.format())
    return 0 if divergence is None else 1


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.diff import first_divergence
    from repro.pipeline.scenario import PipelineConfigError

    sources = [
        bool(args.schedules),
        args.replay is not None,
        args.case is not None,
    ]
    if sum(sources) != 1:
        print(
            "error: give exactly one comparison source — two schedule files, "
            "--replay <schedule>, or --case <artifact>",
            file=sys.stderr,
        )
        return 2
    if args.schedules and len(args.schedules) != 2:
        print(
            f"error: expected exactly two schedule files, got "
            f"{len(args.schedules)}",
            file=sys.stderr,
        )
        return 2

    try:
        if args.case is not None:
            # Re-run a fuzz artifact: rebuild the minimized scenario and its
            # comparison spec, then run it exactly as the fuzzer did.
            from repro.diff import load_case, run_comparison

            try:
                scenario, spec = load_case(args.case)
            except (OSError, ValueError, KeyError, TypeError) as error:
                raise _CLIError(f"cannot load case {args.case}: {error}") from error
            divergence = run_comparison(scenario, spec, context=args.context)
            return _diff_report(
                divergence,
                f"case {args.case} no longer diverges "
                f"({scenario.name}, {spec.describe()})",
                args.json,
            )

        if args.replay is not None:
            # Replay the schedule twice — reference engine versus --backend
            # (default: the reference again, a pure determinism twin) — and
            # diff the two replays.
            from repro.core.replay import REPLAY_MODES, replay_pair
            from repro.sim.backend import get_backend
            from repro.topology.base import Topology

            if args.mode not in REPLAY_MODES:
                raise _CLIError(
                    f"unknown replay mode {args.mode!r}; known: "
                    f"{', '.join(sorted(REPLAY_MODES))}"
                )
            initializer = _build_initializer(args.mode, args.slack_policy)
            fault_plan = _build_fault_plan(args.fault, args.fault_seed)
            schedule, meta = _load_schedule_file(args.replay)
            if "topology" not in meta:
                raise _CLIError(
                    f"{args.replay} carries no topology spec; "
                    "was it written by `python -m repro record`?"
                )
            topology = Topology.from_dict(meta["topology"])
            backend_name = args.backend or "python"
            backend = get_backend(backend_name)
            if backend_name != "python" and not backend.supports_replay(
                args.mode,
                initializer=initializer,
                topology=topology,
                faults=fault_plan,
            ):
                print(
                    f"note: backend {backend_name!r} declines this "
                    "configuration; its leg falls back to the reference "
                    "engine (the diff degenerates to a determinism twin)",
                    file=sys.stderr,
                )
            replayed_a, replayed_b = replay_pair(
                topology,
                schedule,
                "python",
                backend_name,
                mode=args.mode,
                initializer=initializer,
                faults=fault_plan,
            )
            label_b = (
                backend_name if backend_name != "python" else "python#2"
            )
            divergence = first_divergence(
                replayed_a,
                replayed_b,
                context=args.context,
                label_a="python",
                label_b=label_b,
            )
            return _diff_report(
                divergence,
                f"replays bit-identical: {len(replayed_a)} packets of "
                f"{args.replay} under {args.mode} (python vs {label_b})",
                args.json,
            )

        path_a, path_b = args.schedules
        schedule_a, _ = _load_schedule_file(path_a)
        schedule_b, _ = _load_schedule_file(path_b)
        divergence = first_divergence(
            schedule_a,
            schedule_b,
            context=args.context,
            label_a=path_a,
            label_b=path_b,
        )
        return _diff_report(
            divergence,
            f"schedules match: {len(schedule_a)} packets bit-identical",
            args.json,
        )
    except _CLIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except PipelineConfigError as error:
        # e.g. --backend compiled without the built kernel extension
        print(f"error: {error}", file=sys.stderr)
        return 2


# ---------------------------------------------------------------------- #
# fuzz
# ---------------------------------------------------------------------- #
def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.diff import run_fuzz
    from repro.pipeline.scenario import PipelineConfigError

    if args.budget < 1:
        print("error: --budget must be at least 1", file=sys.stderr)
        return 2
    try:
        report = run_fuzz(
            budget=args.budget,
            seed=args.seed,
            scale=_scale(args.scale),
            context=args.context,
            artifact_dir=None if args.no_artifacts else args.artifacts,
            shrink=not args.no_shrink,
            log=None if args.json else print,
        )
    except PipelineConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(report.format())
    return 0 if report.ok else 1


# ---------------------------------------------------------------------- #
# Entry point
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Universal Packet Scheduling reproduction: experiment pipeline CLI.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run experiments (parallel, cached)")
    run_parser.add_argument("experiments", nargs="*", help="experiment names (see `list`)")
    run_parser.add_argument("--all", action="store_true", help="run every experiment")
    scale_group = run_parser.add_mutually_exclusive_group()
    _add_scale_argument(scale_group)
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1 = serial)"
    )
    run_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"on-disk schedule cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk schedule cache"
    )
    run_parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="seed replicates per replay scenario (default: 1); "
        "replicated runs add mean/stddev/95%% CI summary rows",
    )
    run_parser.add_argument(
        "--workload",
        default=None,
        help="override every scenario's workload with a registry workload "
        "(see `list --workloads`)",
    )
    run_parser.add_argument(
        "--slack-policy",
        default=None,
        help="override slack initialization with a registry slack policy "
        "(see `list --slack-policies`): replay scenarios get the policy's "
        "replay initializer, live experiments (figure2/figure3) its "
        "send-time policy",
    )
    run_parser.add_argument(
        "--fault",
        default=None,
        help="pin every fault-capable experiment onto a registry fault "
        "schedule (see `list --faults`); faults hit the replay leg only",
    )
    run_parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the --fault schedule's randomness, independent of "
        "every workload seed (default: 0)",
    )
    run_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds; cells that outlive it "
        "fail (and retry under --max-retries) instead of hanging the run",
    )
    run_parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="extra rounds failed cells are retried with exponential "
        "backoff; parallel rounds use a fresh worker pool, so crashed "
        "workers are recovered (default: 0)",
    )
    run_parser.add_argument(
        "--shard-packets",
        type=int,
        default=None,
        help="schedule-cache shard size in packets: entries above this are "
        "persisted as manifest+shard files, and shard-capable experiments "
        "(e.g. scale) partition their streaming cells by it (default: "
        "100000; storage layout only, cache keys and rows do not depend "
        "on it)",
    )
    scale_group.add_argument(
        "--quick", action="store_true", help="shorthand for --scale quick"
    )
    _add_backend_argument(run_parser)
    run_parser.add_argument("--json", action="store_true", help="emit JSON instead of tables")
    run_parser.set_defaults(func=cmd_run)

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    _add_scale_argument(list_parser)
    list_parser.add_argument(
        "--workloads",
        action="store_true",
        help="list the workload registry (name, group, distribution, "
        "perturbations, mean flow size) instead of experiments",
    )
    list_parser.add_argument(
        "--slack-policies",
        action="store_true",
        help="list the slack-policy registry (name, kind, parameters) "
        "instead of experiments",
    )
    list_parser.add_argument(
        "--backends",
        action="store_true",
        help="list the simulation-backend registry (name, availability with "
        "reason, replay-support note, build metadata) instead of experiments",
    )
    list_parser.add_argument(
        "--faults",
        action="store_true",
        help="list the fault-schedule registry (name, fault kinds) instead "
        "of experiments",
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON")
    list_parser.set_defaults(func=cmd_list)

    record_parser = subparsers.add_parser(
        "record", help="record one scenario's original schedule to a file"
    )
    record_parser.add_argument("scenario", help="scenario label (see `list`)")
    record_parser.add_argument(
        "--out", default="schedule.jsonl.gz", help="output file (.gz = compressed)"
    )
    _add_scale_argument(record_parser)
    record_parser.set_defaults(func=cmd_record)

    replay_parser = subparsers.add_parser(
        "replay", help="replay a recorded schedule file and print Table-1 metrics"
    )
    replay_parser.add_argument("schedule", help="schedule file written by `record`")
    replay_parser.add_argument(
        "--mode",
        default="lstf",
        help="replay mode: lstf, lstf-preemptive, edf, priority, omniscient, fifo",
    )
    replay_parser.add_argument(
        "--slack-policy",
        default=None,
        help="stamp headers with a registry slack policy instead of the "
        "mode's recorded-schedule initializer (see `list --slack-policies`)",
    )
    replay_parser.add_argument(
        "--fault",
        default=None,
        help="inject a registry fault schedule into the replay network "
        "(see `list --faults`)",
    )
    replay_parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the --fault schedule's randomness (default: 0)",
    )
    _add_backend_argument(replay_parser)
    replay_parser.add_argument("--json", action="store_true", help="emit JSON")
    replay_parser.set_defaults(func=cmd_replay)

    bench_parser = subparsers.add_parser(
        "bench", help="measure the hot path (wall time, events/sec, cells/sec)"
    )
    bench_parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names to bench (default: table1 adversarial)",
    )
    bench_scale_group = bench_parser.add_mutually_exclusive_group()
    _add_scale_argument(bench_scale_group)
    bench_scale_group.add_argument(
        "--quick", action="store_true", help="shorthand for --scale quick"
    )
    bench_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="cold runs per experiment; the best wall time is reported (default: 1)",
    )
    bench_parser.add_argument(
        "--out", default=None, help="write the repro-bench/1 JSON payload to this file"
    )
    bench_parser.add_argument(
        "--baseline",
        default=None,
        help="bench JSON to embed as baseline and compute speedups against",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any experiment regressed beyond --max-slowdown "
        "versus the --baseline numbers",
    )
    bench_parser.add_argument(
        "--max-slowdown",
        type=float,
        default=0.25,
        help="allowed fractional wall-time slowdown for --check (default: 0.25)",
    )
    bench_parser.add_argument(
        "--no-replay-path",
        action="store_true",
        help="skip the replay-only table1:replay@<backend> groups (bench "
        "just the named experiments, e.g. the scale-tier RSS smoke)",
    )
    _add_backend_argument(bench_parser)
    bench_parser.add_argument("--label", default=None, help="free-form label for this run")
    bench_parser.add_argument("--json", action="store_true", help="emit the JSON payload")
    bench_parser.set_defaults(func=cmd_bench)

    diff_parser = subparsers.add_parser(
        "diff",
        help="first-divergence comparison of two schedules (or schedule vs "
        "fresh replay); exit 0 match, 1 diverged, 2 config error",
    )
    diff_parser.add_argument(
        "schedules",
        nargs="*",
        help="two schedule files written by `record` (omit when using "
        "--replay or --case)",
    )
    diff_parser.add_argument(
        "--replay",
        default=None,
        metavar="SCHEDULE",
        help="instead of two files: replay this schedule twice — reference "
        "engine vs --backend — and diff the replays (--backend python "
        "checks run-over-run determinism)",
    )
    diff_parser.add_argument(
        "--case",
        default=None,
        metavar="ARTIFACT",
        help="re-run a fuzz repro artifact written by `fuzz` and diff it",
    )
    diff_parser.add_argument(
        "--mode",
        default="lstf",
        help="replay mode for --replay: lstf, lstf-preemptive, edf, "
        "priority, omniscient, fifo (default: lstf)",
    )
    diff_parser.add_argument(
        "--slack-policy",
        default=None,
        help="replay-side slack policy for --replay (see `list --slack-policies`)",
    )
    diff_parser.add_argument(
        "--fault",
        default=None,
        help="fault schedule injected into both --replay legs (see `list --faults`)",
    )
    diff_parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the --fault schedule's randomness (default: 0)",
    )
    diff_parser.add_argument(
        "--context",
        type=int,
        default=8,
        help="packets of per-port ordering context around a divergence (default: 8)",
    )
    _add_backend_argument(diff_parser)
    diff_parser.add_argument("--json", action="store_true", help="emit JSON")
    diff_parser.set_defaults(func=cmd_diff)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing of the bit-identity contract across "
        "backends and live-vs-replay twins",
    )
    fuzz_parser.add_argument(
        "--budget",
        type=int,
        default=25,
        help="number of seeded random cases (default: 25)",
    )
    fuzz_parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="fuzz-stream seed; same seed = same cases everywhere (default: 1)",
    )
    fuzz_parser.add_argument(
        "--scale",
        choices=("quick", "smoke", "paper"),
        default="smoke",
        help="scale preset for the fuzzed scenarios (default: smoke — "
        "fuzzing wants many small cases)",
    )
    fuzz_parser.add_argument(
        "--context",
        type=int,
        default=8,
        help="packets of per-port ordering context in divergence reports (default: 8)",
    )
    fuzz_parser.add_argument(
        "--artifacts",
        default="fuzz-artifacts",
        metavar="DIR",
        help="directory for minimized repro artifacts (default: fuzz-artifacts)",
    )
    fuzz_parser.add_argument(
        "--no-artifacts",
        action="store_true",
        help="do not persist repro artifacts for failing cases",
    )
    fuzz_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist failing scenarios as found, without minimization",
    )
    fuzz_parser.add_argument("--json", action="store_true", help="emit JSON")
    fuzz_parser.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
