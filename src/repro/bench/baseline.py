"""On-disk bench payloads (``repro-bench/1``) and the regression gate.

A bench payload is the JSON written to ``BENCH_*.json`` at the repo root: the
current measurements, optionally the baseline they are compared against
(e.g. the numbers measured on the commit before an optimization PR), and the
resulting speedups.  The regression gate (:func:`find_regressions`) is what
CI's bench smoke job runs: it fails a build whose wall times regressed beyond
a soft threshold versus the committed numbers, and separately surfaces rows
digests that drifted (a determinism warning rather than a hard timing
failure, since digests — unlike the golden-rows pytest, which runs both
sides on one machine — may legitimately differ across platforms with
different libm rounding).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.bench.harness import BenchReport

#: Format tag of bench payload files.
BENCH_FORMAT = "repro-bench/1"

#: Soft regression threshold: fail when wall time exceeds the reference by
#: more than this fraction (0.25 = 25% slower).
DEFAULT_MAX_SLOWDOWN = 0.25


def speedup_vs_baseline(
    current: BenchReport, baseline_results: Dict[str, dict]
) -> Dict[str, Dict[str, float]]:
    """Per-experiment speedup factors of ``current`` over a baseline.

    ``{"table1": {"wall_time": 1.8, "events_per_sec": 1.8}}`` means the
    current run is 1.8x faster in wall time.  Experiments missing from
    either side are skipped.
    """
    speedups: Dict[str, Dict[str, float]] = {}
    for name, bench in current.results.items():
        reference = baseline_results.get(name)
        if not reference:
            continue
        entry: Dict[str, float] = {}
        if bench.wall_time > 0 and reference.get("wall_time"):
            entry["wall_time"] = reference["wall_time"] / bench.wall_time
        if reference.get("events_per_sec"):
            entry["events_per_sec"] = bench.events_per_sec / reference["events_per_sec"]
        if entry:
            speedups[name] = entry
    return speedups


#: Replay-path speedup the optimization work aims for, and the floor the
#: acceptance gate falls back to when Python-side dispatch dominates.
REPLAY_PATH_TARGET_SPEEDUP = 10.0
REPLAY_PATH_FLOOR_SPEEDUP = 4.0


def _replay_path_gap_note(backend_name: str, ratio: float) -> str:
    """Why ``backend_name`` lands below the 10x target, per its profile.

    The analysis is per backend because the remaining wall time lives in
    different places: the vectorized backend still pays interpreter dispatch
    in its event loop, while the compiled backend's loop is native and its
    gap (if any) is the Python-side orchestration around it.
    """
    if backend_name == "compiled":
        return (
            f"at {ratio:.2f}x of the {REPLAY_PATH_TARGET_SPEEDUP:.0f}x target: "
            "the event loop itself is native (repro.sim._kernel), so the "
            "remaining wall time is Python-side orchestration — the numpy "
            "flatten/header precompute before the loop and, dominantly, the "
            "bulk HopTiming/PacketRecord rebuild of the replayed Schedule "
            "after it. Pushing further means building the output rows in C "
            "or keeping replayed schedules in flat-array form end-to-end "
            "(the scale-tier streaming-metrics direction in ROADMAP.md)."
        )
    return (
        f"below the {REPLAY_PATH_TARGET_SPEEDUP:.0f}x target: profiling "
        "shows Python-side dispatch dominates the remaining wall time — "
        "per-event heap pops, scheduler-key tuple comparisons, and "
        "HopTiming/PacketRecord reconstruction of the replayed schedule "
        "all run in the interpreter; the vectorized backend batches the "
        "per-hop float math (numpy) but event ordering is inherently "
        "sequential, so order-equivalent per-port heaps replace the "
        "issue's numpy.lexsort sketch. The compiled backend removes the "
        "interpreter from the loop entirely. Acceptance falls back to the "
        f"{REPLAY_PATH_FLOOR_SPEEDUP:.0f}x floor."
    )


def _replay_path_summary(report: BenchReport) -> Optional[dict]:
    """Cross-backend replay-engine comparison, when the report carries one.

    Looks for the ``table1:replay@python`` reference group plus any
    ``table1:replay@<backend>`` candidate groups (see
    :func:`repro.bench.harness.bench_replay_path`) and summarizes each
    events/s ratio against the 10x target / 4x floor, with the per-backend
    gap analysis in ``notes`` when the target is missed and the backend's
    build metadata (compiler, toolchain) when it reports any.
    """
    reference = report.results.get("table1:replay@python")
    candidates = {
        name: bench
        for name, bench in report.results.items()
        if name.startswith("table1:replay@") and name != "table1:replay@python"
    }
    if reference is None or not candidates or reference.events_per_sec <= 0:
        return None
    summary: dict = {
        "reference": "table1:replay@python",
        "target_speedup": REPLAY_PATH_TARGET_SPEEDUP,
        "floor_speedup": REPLAY_PATH_FLOOR_SPEEDUP,
        "backends": {},
    }
    for name, bench in candidates.items():
        ratio = bench.events_per_sec / reference.events_per_sec
        entry = {
            "events_per_sec_ratio": ratio,
            "rows_bit_identical": bench.rows_digest == reference.rows_digest,
        }
        backend_name = name.split("@", 1)[1]
        build = _backend_build_info(backend_name)
        if build is not None:
            entry["build"] = build
        if ratio < REPLAY_PATH_TARGET_SPEEDUP:
            entry["notes"] = _replay_path_gap_note(backend_name, ratio)
        summary["backends"][name] = entry
    return summary


def _backend_build_info(backend_name: str) -> Optional[dict]:
    """Build metadata of a measured backend (``None`` when it has none).

    Resolved defensively: a payload assembled from a loaded report may name
    backends this process cannot resolve, which must not break payload
    assembly.
    """
    from repro.pipeline.scenario import PipelineConfigError
    from repro.sim.backend import get_backend

    try:
        return get_backend(backend_name).build_info()
    except PipelineConfigError:
        return None


def bench_payload(
    report: BenchReport,
    label: Optional[str] = None,
    baseline: Optional[dict] = None,
    baseline_label: Optional[str] = None,
) -> dict:
    """Assemble the JSON payload for a ``BENCH_*.json`` file.

    Args:
        report: The current measurements.
        label: Free-form tag for this run (e.g. ``"PR3"``).
        baseline: A previously saved payload (or bare ``results`` mapping)
            to embed as the comparison baseline.
        baseline_label: Overrides the embedded baseline's label.
    """
    payload = {
        "format": BENCH_FORMAT,
        "label": label,
        "python": platform.python_version(),
        "platform": sys.platform,
        **report.to_dict(),
    }
    replay_path = _replay_path_summary(report)
    if replay_path is not None:
        payload["replay_path"] = replay_path
    if baseline is not None:
        baseline_results = baseline.get("results", baseline)
        payload["baseline"] = {
            "label": baseline_label or baseline.get("label"),
            "results": baseline_results,
        }
        payload["speedup_vs_baseline"] = speedup_vs_baseline(report, baseline_results)
    return payload


def save_bench(path: Union[str, "os.PathLike"], payload: dict) -> None:
    """Write a bench payload as pretty-printed JSON (trailing newline)."""
    with open(os.fspath(path), "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")


def load_bench(path: Union[str, "os.PathLike"]) -> dict:
    """Load a bench payload written by :func:`save_bench`.

    Raises:
        ValueError: if the file is not a ``repro-bench/1`` payload.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    if payload.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{os.fspath(path)}: not a {BENCH_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    return payload


@dataclass(frozen=True)
class Regression:
    """One experiment whose wall time regressed beyond the threshold."""

    experiment: str
    wall_time: float
    reference_wall_time: float

    @property
    def slowdown(self) -> float:
        """Fractional slowdown versus the reference (0.30 = 30% slower)."""
        return self.wall_time / self.reference_wall_time - 1.0

    def describe(self) -> str:
        return (
            f"{self.experiment}: {self.wall_time:.3f}s vs reference "
            f"{self.reference_wall_time:.3f}s ({self.slowdown:+.0%})"
        )


def find_regressions(
    current: BenchReport,
    reference: dict,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> Tuple[List[Regression], List[str]]:
    """Compare a bench run against reference numbers.

    Args:
        current: The just-measured report.
        reference: A bench payload (or bare ``results`` mapping) to compare
            against — typically the committed ``BENCH_*.json``.
        max_slowdown: Allowed fractional wall-time slowdown per experiment.

    Returns:
        ``(regressions, digest_mismatches)``: experiments slower than
        ``reference * (1 + max_slowdown)``, and experiments whose rows
        digest differs from the reference (determinism drift — reported
        separately so callers can warn instead of fail).
    """
    reference_results = reference.get("results", reference)
    regressions: List[Regression] = []
    digest_mismatches: List[str] = []
    for name, bench in current.results.items():
        entry = reference_results.get(name)
        if not entry:
            continue
        reference_wall = entry.get("wall_time")
        if reference_wall and bench.wall_time > reference_wall * (1.0 + max_slowdown):
            regressions.append(
                Regression(
                    experiment=name,
                    wall_time=bench.wall_time,
                    reference_wall_time=reference_wall,
                )
            )
        reference_digest = entry.get("rows_digest")
        if reference_digest and bench.rows_digest != reference_digest:
            digest_mismatches.append(
                f"{name}: rows digest {bench.rows_digest} != reference "
                f"{reference_digest}"
            )
    return regressions, digest_mismatches
