"""Benchmark subsystem: measure the pipeline's hot path and gate regressions.

``python -m repro bench`` runs a set of registered experiments (quick scale
by default), reports wall time, engine events/second, and cells/second per
experiment, and can write a ``BENCH_*.json`` trajectory file at the repo
root.  Every measurement carries a *rows digest* — a content hash of the
experiment's output rows — so a speedup that silently changes results is
caught by the same harness that measures it.

Layout:

* :mod:`repro.bench.harness` — run experiments under a timer and an engine
  event counter (:func:`run_bench`, :class:`ExperimentBench`,
  :class:`BenchReport`).
* :mod:`repro.bench.baseline` — the on-disk ``repro-bench/1`` payload format
  plus the regression gate (:func:`find_regressions`) used by CI's bench
  smoke job.
"""

from repro.bench.baseline import (
    BENCH_FORMAT,
    DEFAULT_MAX_SLOWDOWN,
    Regression,
    bench_payload,
    find_regressions,
    load_bench,
    save_bench,
    speedup_vs_baseline,
)
from repro.bench.harness import (
    DEFAULT_EXPERIMENTS,
    BenchReport,
    ExperimentBench,
    bench_experiment,
    bench_replay_path,
    peak_rss_bytes,
    prepare_replay_cells,
    rows_digest,
    run_bench,
)

__all__ = [
    "BENCH_FORMAT",
    "DEFAULT_EXPERIMENTS",
    "DEFAULT_MAX_SLOWDOWN",
    "BenchReport",
    "ExperimentBench",
    "Regression",
    "bench_experiment",
    "bench_payload",
    "bench_replay_path",
    "find_regressions",
    "load_bench",
    "peak_rss_bytes",
    "prepare_replay_cells",
    "rows_digest",
    "run_bench",
    "save_bench",
    "speedup_vs_baseline",
]
