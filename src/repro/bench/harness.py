"""Measurement core of the bench subsystem.

Each benched experiment runs through the regular pipeline runner — serially,
with the in-memory schedule cache only — so the measurement covers exactly
the record→replay hot path a cold ``python -m repro run`` exercises: every
original schedule is recorded once and every replay cell replays it.  The
engine's process-wide event counter
(:attr:`repro.sim.engine.Simulator.events_executed_total`) is snapshotted
around each run to turn wall time into events/second, the metric the paper's
Section-5 feasibility argument is really about.

Determinism is part of the measurement: the output rows of every repeat are
content-hashed (:func:`rows_digest`) and the harness refuses to report a
number whose rows changed between repeats.  Stored digests let a later run
(or CI) detect a "speedup" that changed results.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

#: Experiments benched when none are named: the Table-1 matrix and the
#: adversarial scenario matrix — together they cover every scheduler, every
#: topology, and the perturbation layer.
DEFAULT_EXPERIMENTS = ("table1", "adversarial")


def rows_digest(rows: Sequence[dict]) -> str:
    """Content hash of an experiment's output rows (order-sensitive).

    Canonical JSON (sorted keys, no whitespace) so the digest is stable
    across processes and invocations; ``repr``-based float serialization
    makes it sensitive to any bit-level change in the results.
    """
    blob = json.dumps(list(rows), sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class ExperimentBench:
    """One experiment's measurement.

    Attributes:
        experiment: Registry name of the experiment.
        wall_time: Best-of-repeats wall-clock seconds for a full cold run.
        events: Engine events executed by one run (identical across repeats).
        events_per_sec: ``events / wall_time``.
        cells: Cells the experiment expands to at the benched scale.
        cells_per_sec: ``cells / wall_time``.
        rows: Output rows produced.
        rows_digest: Content hash of the rows (determinism fingerprint).
        repeats: Wall time of every repeat, in run order.
    """

    experiment: str
    wall_time: float
    events: int
    events_per_sec: float
    cells: int
    cells_per_sec: float
    rows: int
    rows_digest: str
    repeats: List[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "wall_time": self.wall_time,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "cells": self.cells,
            "cells_per_sec": self.cells_per_sec,
            "rows": self.rows,
            "rows_digest": self.rows_digest,
            "repeats": list(self.repeats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentBench":
        return cls(
            experiment=data["experiment"],
            wall_time=data["wall_time"],
            events=data["events"],
            events_per_sec=data["events_per_sec"],
            cells=data["cells"],
            cells_per_sec=data["cells_per_sec"],
            rows=data["rows"],
            rows_digest=data["rows_digest"],
            repeats=list(data.get("repeats", [])),
        )


@dataclass
class BenchReport:
    """A full bench run: per-experiment measurements plus totals."""

    scale: str
    repeat: int
    results: "OrderedDict[str, ExperimentBench]" = field(default_factory=OrderedDict)

    @property
    def wall_time_total(self) -> float:
        """Sum of the best-of-repeats wall times."""
        return sum(bench.wall_time for bench in self.results.values())

    @property
    def events_total(self) -> int:
        """Engine events executed across all benched experiments (one run each)."""
        return sum(bench.events for bench in self.results.values())

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "repeat": self.repeat,
            "wall_time_total": self.wall_time_total,
            "events_total": self.events_total,
            "results": {name: bench.to_dict() for name, bench in self.results.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        report = cls(scale=data["scale"], repeat=data["repeat"])
        for name, entry in data["results"].items():
            report.results[name] = ExperimentBench.from_dict(entry)
        return report

    def format(self) -> str:
        """Human-readable per-experiment table plus totals."""
        lines = [
            f"bench: {len(self.results)} experiment(s) at {self.scale} scale, "
            f"best of {self.repeat} repeat(s)"
        ]
        if self.results:
            name_width = max(len(name) for name in self.results)
            for name, bench in self.results.items():
                lines.append(
                    f"  {name:<{name_width}}  {bench.wall_time:8.3f}s  "
                    f"{bench.events_per_sec:>12,.0f} events/s  "
                    f"{bench.cells_per_sec:>6.2f} cells/s  "
                    f"({bench.cells} cells, {bench.rows} rows, "
                    f"digest {bench.rows_digest})"
                )
            lines.append(
                f"  total: {self.wall_time_total:.3f}s wall, "
                f"{self.events_total:,} engine events"
            )
        return "\n".join(lines)


def _resolve_scale(scale):
    from repro.experiments.config import ExperimentScale

    if isinstance(scale, str):
        presets = {
            "quick": ExperimentScale.quick,
            "smoke": ExperimentScale.smoke,
            "paper": ExperimentScale.paper,
        }
        return presets[scale]()
    return scale if scale is not None else ExperimentScale.quick()


def bench_experiment(
    name: str,
    scale: Union[str, object, None] = None,
    repeat: int = 1,
) -> ExperimentBench:
    """Measure one experiment's cold pipeline run, ``repeat`` times.

    Every repeat runs serially with a fresh in-memory cache (no disk layer),
    so each one performs the full record-once-replay-many workload.  Wall
    time is the best of the repeats; events/cells counts come from the last
    repeat and are checked to be identical across repeats via the rows
    digest.

    Raises:
        RuntimeError: if repeats disagree on the output rows — the run is
            not deterministic and its timing is meaningless.
    """
    from repro.pipeline.runner import run_pipeline
    from repro.sim.engine import Simulator

    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    scale_preset = _resolve_scale(scale)
    walls: List[float] = []
    events = 0
    digest: Optional[str] = None
    cells = rows = 0
    for _ in range(repeat):
        events_before = Simulator.events_executed_total
        started = time.perf_counter()
        summary = run_pipeline(names=[name], scale=scale_preset, workers=1, cache_dir=None)
        walls.append(time.perf_counter() - started)
        events = Simulator.events_executed_total - events_before
        result = summary.results[name]
        current_digest = rows_digest(result.rows)
        if digest is not None and current_digest != digest:
            raise RuntimeError(
                f"experiment {name!r} produced different rows across bench "
                f"repeats ({digest} != {current_digest}); refusing to report "
                "a timing for a non-deterministic run"
            )
        digest = current_digest
        cells = summary.cells
        rows = len(result.rows)
    best = min(walls)
    return ExperimentBench(
        experiment=name,
        wall_time=best,
        events=events,
        events_per_sec=events / best if best > 0 else 0.0,
        cells=cells,
        cells_per_sec=cells / best if best > 0 else 0.0,
        rows=rows,
        rows_digest=digest or rows_digest([]),
        repeats=walls,
    )


def run_bench(
    experiments: Optional[Sequence[str]] = None,
    scale: Union[str, object, None] = "quick",
    repeat: int = 1,
) -> BenchReport:
    """Bench a set of experiments and return the assembled report.

    Args:
        experiments: Experiment registry names (default:
            :data:`DEFAULT_EXPERIMENTS`).
        scale: Scale preset name (``"quick"``/``"smoke"``/``"paper"``) or an
            :class:`~repro.experiments.config.ExperimentScale` instance.
        repeat: Cold runs per experiment; the best wall time is reported.
    """
    names = list(experiments) if experiments else list(DEFAULT_EXPERIMENTS)
    scale_label = scale if isinstance(scale, str) else _resolve_scale(scale).label
    report = BenchReport(scale=scale_label, repeat=repeat)
    for name in names:
        report.results[name] = bench_experiment(name, scale=scale, repeat=repeat)
    return report
