"""Result analysis: FCT buckets, delay tails, fairness indices, CDF helpers."""

from repro.analysis.delay import (
    DelayStatistics,
    delay_ccdf,
    delay_statistics,
    packet_delays,
    queueing_delays,
)
from repro.analysis.fairness import (
    FairnessTimeseries,
    fairness_timeseries,
    per_flow_bytes_in_bins,
    per_flow_throughput,
)
from repro.analysis.fct import (
    PAPER_FCT_BUCKET_EDGES,
    FctBucket,
    completed_flows,
    fct_by_flow_size,
    mean_fct,
    normalized_fct,
)

__all__ = [
    "DelayStatistics",
    "packet_delays",
    "queueing_delays",
    "delay_statistics",
    "delay_ccdf",
    "FairnessTimeseries",
    "fairness_timeseries",
    "per_flow_bytes_in_bins",
    "per_flow_throughput",
    "FctBucket",
    "PAPER_FCT_BUCKET_EDGES",
    "completed_flows",
    "fct_by_flow_size",
    "mean_fct",
    "normalized_fct",
]
