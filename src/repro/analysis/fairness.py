"""Fairness analysis: per-flow throughput over time and Jain's index (Figure 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.packet import Packet, PacketType
from repro.utils.stats import jain_fairness_index


@dataclass
class FairnessTimeseries:
    """Jain's fairness index sampled once per time bin.

    Attributes:
        bin_width: Width of each bin in seconds.
        times: Right edge of each bin.
        index: Jain's fairness index of per-flow throughput within each bin.
    """

    bin_width: float
    times: List[float]
    index: List[float]

    def final_index(self) -> float:
        """Fairness index in the last bin (the "did it converge" number)."""
        return self.index[-1] if self.index else 0.0

    def time_to_reach(self, target: float) -> Optional[float]:
        """Earliest bin edge at which the index reaches ``target`` (or ``None``)."""
        for time, value in zip(self.times, self.index):
            if value >= target:
                return time
        return None


def per_flow_bytes_in_bins(
    packets: Iterable[Packet],
    bin_width: float,
    end_time: float,
    flow_ids: Optional[Sequence[int]] = None,
) -> Dict[int, List[float]]:
    """Bytes delivered per flow per time bin, keyed by flow id.

    Only data packets count; delivery time is the packet's egress time.
    """
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    num_bins = max(1, int(round(end_time / bin_width)))
    byte_bins: Dict[int, List[float]] = {}
    if flow_ids is not None:
        for flow_id in flow_ids:
            byte_bins[flow_id] = [0.0] * num_bins
    for packet in packets:
        if packet.ptype is not PacketType.DATA or packet.egress_time is None:
            continue
        if flow_ids is not None and packet.flow_id not in byte_bins:
            continue
        index = min(num_bins - 1, int(packet.egress_time / bin_width))
        byte_bins.setdefault(packet.flow_id, [0.0] * num_bins)[index] += packet.size_bytes
    return byte_bins


def fairness_timeseries(
    packets: Iterable[Packet],
    bin_width: float,
    end_time: float,
    flow_ids: Optional[Sequence[int]] = None,
) -> FairnessTimeseries:
    """Jain's fairness index of per-flow throughput, computed per time bin.

    Matches the paper's Figure 4 methodology: "fairness computed using Jain's
    Fairness Index, from the throughput each flow receives per millisecond",
    over the set of flows expected to share the network (``flow_ids``).
    Flows that have not yet started simply contribute zero throughput, which
    is why the index only reaches 1.0 after every flow is active.
    """
    byte_bins = per_flow_bytes_in_bins(packets, bin_width, end_time, flow_ids=flow_ids)
    if not byte_bins:
        return FairnessTimeseries(bin_width=bin_width, times=[], index=[])
    num_bins = len(next(iter(byte_bins.values())))
    times: List[float] = []
    index: List[float] = []
    for bin_index in range(num_bins):
        allocations = [bins[bin_index] for bins in byte_bins.values()]
        times.append((bin_index + 1) * bin_width)
        index.append(jain_fairness_index(allocations))
    return FairnessTimeseries(bin_width=bin_width, times=times, index=index)


def per_flow_throughput(
    packets: Iterable[Packet],
    duration: float,
    flow_ids: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """Average per-flow throughput (bits/second) over the whole run."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    totals: Dict[int, float] = {}
    if flow_ids is not None:
        totals = {flow_id: 0.0 for flow_id in flow_ids}
    for packet in packets:
        if packet.ptype is not PacketType.DATA or packet.egress_time is None:
            continue
        if flow_ids is not None and packet.flow_id not in totals:
            continue
        totals[packet.flow_id] = totals.get(packet.flow_id, 0.0) + packet.size_bytes
    return {flow_id: bytes_total * 8.0 / duration for flow_id, bytes_total in totals.items()}
