"""Per-packet delay statistics (Figure 3's metric)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.sim.packet import Packet, PacketType
from repro.utils.stats import ccdf_points, percentile


@dataclass
class DelayStatistics:
    """Summary of a packet-delay distribution."""

    count: int
    mean: float
    p50: float
    p99: float
    p999: float
    maximum: float


def packet_delays(packets: Iterable[Packet], data_only: bool = True) -> List[float]:
    """End-to-end delays of delivered packets (seconds)."""
    delays: List[float] = []
    for packet in packets:
        if data_only and packet.ptype is not PacketType.DATA:
            continue
        delay = packet.end_to_end_delay
        if delay is not None:
            delays.append(delay)
    return delays


def queueing_delays(packets: Iterable[Packet], data_only: bool = True) -> List[float]:
    """Total queueing delays of delivered packets (seconds)."""
    result: List[float] = []
    for packet in packets:
        if data_only and packet.ptype is not PacketType.DATA:
            continue
        if packet.egress_time is not None:
            result.append(packet.total_queueing_delay)
    return result


def delay_statistics(packets: Iterable[Packet], data_only: bool = True) -> DelayStatistics:
    """Mean / median / tail percentiles of packet delay."""
    delays = packet_delays(packets, data_only=data_only)
    if not delays:
        return DelayStatistics(count=0, mean=0.0, p50=0.0, p99=0.0, p999=0.0, maximum=0.0)
    return DelayStatistics(
        count=len(delays),
        mean=sum(delays) / len(delays),
        p50=percentile(delays, 50),
        p99=percentile(delays, 99),
        p999=percentile(delays, 99.9),
        maximum=max(delays),
    )


def delay_ccdf(
    packets: Iterable[Packet], data_only: bool = True
) -> Tuple[List[float], List[float]]:
    """Complementary CDF of packet delay (the curve plotted in Figure 3)."""
    return ccdf_points(packet_delays(packets, data_only=data_only))
