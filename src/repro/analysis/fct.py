"""Flow-completion-time statistics (Figure 2's metric)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.sim.flow import Flow


@dataclass
class FctBucket:
    """Mean FCT of flows whose size falls in ``[low_bytes, high_bytes)``."""

    low_bytes: float
    high_bytes: float
    count: int
    mean_fct: float

    @property
    def label(self) -> str:
        """Human-readable bucket label (upper bound in bytes, like the paper's x-axis)."""
        if self.high_bytes == float("inf"):
            return f">{int(self.low_bytes)}"
        return str(int(self.high_bytes))


def completed_flows(flows: Iterable[Flow]) -> List[Flow]:
    """Only the flows that finished (have a completion time)."""
    return [flow for flow in flows if flow.completed]


def mean_fct(flows: Iterable[Flow]) -> Optional[float]:
    """Mean flow completion time over completed flows (``None`` if none completed)."""
    fcts = [flow.fct for flow in flows if flow.fct is not None]
    if not fcts:
        return None
    return sum(fcts) / len(fcts)


def fct_by_flow_size(
    flows: Iterable[Flow],
    bucket_edges: Sequence[float],
) -> List[FctBucket]:
    """Mean FCT bucketed by flow size.

    Args:
        flows: Flows to analyse (incomplete flows are skipped).
        bucket_edges: Ascending flow-size boundaries in bytes; an implicit
            final bucket collects everything above the last edge.
    """
    edges = list(bucket_edges)
    if edges != sorted(edges):
        raise ValueError("bucket edges must be ascending")
    bounds: List[Tuple[float, float]] = []
    low = 0.0
    for edge in edges:
        bounds.append((low, edge))
        low = edge
    bounds.append((low, float("inf")))

    buckets: List[FctBucket] = []
    done = completed_flows(flows)
    for low, high in bounds:
        members = [flow for flow in done if low <= flow.size_bytes < high]
        if members:
            bucket_mean = sum(flow.fct for flow in members) / len(members)
        else:
            bucket_mean = 0.0
        buckets.append(
            FctBucket(low_bytes=low, high_bytes=high, count=len(members), mean_fct=bucket_mean)
        )
    return buckets


#: Flow-size bucket edges (bytes) matching the x-axis of the paper's Figure 2.
PAPER_FCT_BUCKET_EDGES = [1460, 2920, 4380, 7300, 10220, 58400, 105120, 2e5, 1e6, 3e6]


def normalized_fct(flows: Iterable[Flow], reference_fct: float) -> Optional[float]:
    """Mean FCT divided by a reference value (used for cross-scheduler comparisons)."""
    if reference_fct <= 0:
        raise ValueError("reference FCT must be positive")
    mean = mean_fct(flows)
    if mean is None:
        return None
    return mean / reference_fct
