"""High-level simulation orchestration.

:class:`Simulation` wires together the pieces a typical experiment needs —
engine, topology, schedulers, tracer, traffic — behind a small API so that
examples and experiment scripts read like the paper's experiment
descriptions rather than like plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.flow import Flow
from repro.sim.network import Network, SchedulerFactory
from repro.sim.packet import Packet
from repro.sim.tracer import Tracer
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology.base import Topology
    from repro.traffic.flowgen import PoissonFlowGenerator, StaticFlowSet
    from repro.traffic.workload import WorkloadSpec


@dataclass
class SimulationResult:
    """Summary of one simulation run.

    Attributes:
        duration: Simulated time in seconds.
        flows: Every flow that was generated during the run.
        delivered_packets: Packets that reached their destination host.
        dropped_packets: Packets dropped at full buffers.
        injected_packets: Packets injected by hosts.
    """

    duration: float
    flows: List[Flow] = field(default_factory=list)
    delivered_packets: List[Packet] = field(default_factory=list)
    dropped_packets: List[Packet] = field(default_factory=list)
    injected_packets: List[Packet] = field(default_factory=list)

    @property
    def completed_flows(self) -> List[Flow]:
        """Flows that finished delivering every byte before the run ended."""
        return [flow for flow in self.flows if flow.completed]

    @property
    def delivery_ratio(self) -> float:
        """Fraction of injected packets that were delivered."""
        if not self.injected_packets:
            return 0.0
        return len(self.delivered_packets) / len(self.injected_packets)


class Simulation:
    """One simulation run: a topology, a scheduler deployment, and traffic.

    Args:
        topology: Topology specification to instantiate.
        scheduler_factory: Scheduler deployed at every output port.
        default_buffer_bytes: Buffer capacity of every port (``None`` =
            infinite, which is the paper's replay setting).
        slack_policy: Optional slack-initialization policy applied to every
            packet as it is injected (the Section-3 heuristics).
        seed: Seed for this run's traffic random stream.
    """

    def __init__(
        self,
        topology: "Topology",
        scheduler_factory: SchedulerFactory,
        default_buffer_bytes: Optional[float] = None,
        slack_policy=None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.sim = Simulator()
        self.tracer = Tracer()
        self.network: Network = topology.build(
            self.sim,
            scheduler_factory,
            tracer=self.tracer,
            default_buffer_bytes=default_buffer_bytes,
        )
        self.network.slack_policy = slack_policy
        self.rng = RandomState(seed)
        self.generators: List[object] = []

    # ------------------------------------------------------------------ #
    # Traffic
    # ------------------------------------------------------------------ #
    def add_poisson_traffic(
        self,
        workload: "WorkloadSpec",
        sources: Optional[Sequence[str]] = None,
        destinations: Optional[Sequence[str]] = None,
        stop_time: Optional[float] = None,
    ) -> "PoissonFlowGenerator":
        """Attach Poisson flow arrivals described by ``workload`` to the network."""
        from repro.traffic.flowgen import PoissonFlowGenerator

        generator = PoissonFlowGenerator(
            self.sim,
            self.network,
            arrival_rate_per_source=workload.per_host_arrival_rate(),
            size_distribution=workload.size_distribution,
            transport=workload.transport,
            sources=sources,
            destinations=destinations,
            rng=self.rng.spawn(),
            stop_time=stop_time if stop_time is not None else workload.duration,
            mss=workload.mss,
            perturbations=workload.perturbations,
            reference_bandwidth_bps=workload.reference_bandwidth_bps,
        )
        generator.install()
        self.generators.append(generator)
        return generator

    def add_flows(self, flows: Sequence[Flow], transport: str = "tcp") -> "StaticFlowSet":
        """Attach an explicit list of flows (used by the fairness experiment)."""
        from repro.traffic.flowgen import StaticFlowSet

        flow_set = StaticFlowSet(self.sim, self.network, flows, transport=transport)
        flow_set.install()
        self.generators.append(flow_set)
        return flow_set

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until: float, max_events: Optional[int] = None) -> SimulationResult:
        """Run the simulation until ``until`` seconds and collect the results."""
        self.sim.run(until=until, max_events=max_events)
        flows: List[Flow] = []
        for generator in self.generators:
            flows.extend(getattr(generator, "flows", []))
        return SimulationResult(
            duration=self.sim.now,
            flows=flows,
            delivered_packets=list(self.tracer.delivered),
            dropped_packets=list(self.tracer.dropped),
            injected_packets=list(self.tracer.sent),
        )
