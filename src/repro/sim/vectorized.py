"""Flat replay kernel: the OO engine's event loop, specialized for replay.

This module is the inner loop of the ``"vectorized"`` backend
(:mod:`repro.core.replay_vectorized`).  The replay path has a much smaller
state space than the general simulator — no transports, no drops (infinite
buffers), no preemption, source-routed packets whose ingress times, sizes,
routes, and header keys are all known up front — so the whole OO object graph
(``Simulator`` + ``OutputPort`` + ``Scheduler`` + ``Packet``) collapses into
a handful of flat arrays indexed by *packet-hop* ``f``:

* ``hop_port[f]`` — dense id of the directed port hop ``f`` transmits on,
* ``hop_tx[f]`` / ``hop_prop[f]`` — transmission and propagation delays,
  precomputed (vectorized, in the exact ``bytes * 8 / bw`` float form) by
  the orchestrator,
* ``hop_key[f]`` — the per-hop scheduler key for the static-key modes
  (EDF / priority / omniscient); LSTF keys are computed inline from the
  dynamic ``slack[j]`` state.

The loop replays the OO engine's choreography *exactly*, so its output is
bit-identical (the cross-backend equivalence suite and the golden-rows
fixtures enforce this).  The load-bearing details, each mirroring a specific
line of the OO code:

* One global heap of ``(time, seq, code)`` triples, the event kind and its
  operand packed into one integer ``code``: hop ``f``'s finish is ``f``,
  the arrival at hop ``fn`` is ``total_hops + fn``, packet ``j``'s
  destination arrival is ``2 * total_hops + j``, and the injector cursor
  sorts above them all.  Ordering never reaches the third element
  (sequence numbers are unique), so the packing is pure constant-factor:
  smaller tuples to allocate and sift, and the hottest decodes take one
  integer comparison.  Injector-cursor events draw sequence numbers from
  the front counter (``-(1 << 62)``, increasing), finish-transmission and
  arrival events from the normal counter — in the same order the OO
  callbacks call ``Simulator.schedule``, so the global event order matches
  tuple-for-tuple.
* On finish-transmission, the downstream *arrival is pushed first* and the
  port's next transmission second (``OutputPort._finish_transmission``
  schedules the receive before calling ``_start_next``), which fixes the
  relative order of those two events when their times tie.
* Per-port priority queues hold ``(key, port_seq, f, enqueue_time)``
  tuples — the same ``(key, sequence)`` ordering as
  ``PriorityScheduler``'s heap, with the per-port sequence counter
  allocated at enqueue time; the owning packet is recovered as
  ``hop_pkt[f]``.  (Binary heaps are order-equivalent to a
  ``numpy.lexsort`` over (key, seq) at every service instant; the heap form
  costs O(log q) per decision instead of O(q log q), which profiling showed
  is the difference between ~4x and ~10x on quick-scale replays.)
* An idle port serves an arriving packet immediately (the OO invariant that
  an idle port's queue is empty makes enqueue-then-dequeue equivalent to
  direct service).  The LSTF dequeue-time slack update ``slack -= now -
  enqueue_time`` is skipped in that case because the wait is exactly
  ``0.0`` and ``x - 0.0`` is bit-identical to ``x`` for every float.
* Destination arrivals are pure sinks — they record ``egress[j]`` and
  schedule nothing — so when no ``max_events`` budget is in force the loop
  settles them at finish time (``egress = t + prop``) instead of routing
  them through the heap.  The sequence counter is still consumed and the
  event still counted, so every other event's ``(time, seq)`` tuple and the
  executed-event total are unchanged.  With a budget the heap path is kept,
  because a budget exhausting *between* a finish and its arrival must leave
  that packet in flight, exactly as on the OO engine.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple


def run_flat_replay(
    ingress: List[float],
    off: List[int],
    hop_pkt: List[int],
    hop_port: List[int],
    hop_tx: List[float],
    hop_prop: List[float],
    num_ports: int,
    slack: Optional[List[float]],
    hop_key: Optional[List[float]],
    max_events: Optional[int] = None,
) -> Tuple[List[float], List[float], List[float], List[Optional[float]], int]:
    """Drive one replay to completion over flat per-packet-hop arrays.

    Args:
        ingress: Per-packet ingress times, sorted ascending (record order).
        off: Per-packet offsets into the hop arrays (``off[j]`` is packet
            ``j``'s first hop; ``off[n]`` is the total hop count).
        hop_pkt: Owning packet index of each hop.
        hop_port: Dense directed-port id of each hop.
        hop_tx: Transmission delay of each hop (``bytes * 8 / bandwidth``).
        hop_prop: Propagation delay of each hop's link.
        num_ports: Number of dense port ids.
        slack: LSTF dynamic state (``math.inf`` where the header had no
            slack); ``None`` selects the static-key modes.  Mutated in place.
        hop_key: Static per-hop scheduler key (EDF/priority/omniscient);
            required when ``slack`` is ``None``.
        max_events: Same safety valve as ``Simulator.run(max_events=...)``.

    Returns:
        ``(arrival, start_service, departure, egress, executed)`` — per-hop
        timing arrays, per-packet egress times (``None`` if the packet was
        still in flight when the event budget ran out), and the number of
        events executed.
    """
    n = len(ingress)
    total_hops = off[n] if n else 0
    arr = [0.0] * total_hops
    start = [0.0] * total_hops
    dep = [0.0] * total_hops
    egress: List[Optional[float]] = [None] * n
    if not n:
        return arr, start, dep, egress, 0

    lstf = slack is not None
    # Event codes (see the module docstring): finish(f) = f,
    # arrival(fn) = H + fn, destination arrival(j) = H2 + j, injector = INJ
    # — ranges ordered so the hottest branches decode with the fewest
    # comparisons.
    H = total_hops
    H2 = 2 * total_hops
    INJ = H2 + n
    # nxt[f]: the *arrival event code* of the hop after f within its packet
    # (H + f + 1), or -1 when f is the last hop (the arrival lands at the
    # destination) — saves an off[] bound check and the H-offset addition
    # on every finish event.
    nxt = list(range(H + 1, H + total_hops + 1))
    for j in range(n):
        if off[j + 1] > off[j]:
            nxt[off[j + 1] - 1] = -1
    heap: List[tuple] = []
    push = heappush
    pop = heappop
    busy = [False] * num_ports
    port_heaps: List[List[tuple]] = [[] for _ in range(num_ports)]
    port_seq = [0] * num_ports
    seq = 0                  # Simulator._sequence: finish + arrival events
    fseq = -(1 << 62)        # Simulator._front_sequence: injector cursor
    cursor = 0
    executed = 0
    budgeted = max_events is not None
    budget = max_events if budgeted else float("inf")

    # ReplayInjector.install(): arm the cursor at the first ingress time.
    push(heap, (ingress[0], fseq, INJ))
    fseq += 1

    if not budgeted:
        # Unbudgeted fast loop: identical event choreography, but the
        # executed-event total is derived arithmetically at the end instead
        # of being counted per event, and the loop is terminated by the
        # heap's own IndexError instead of a per-iteration truthiness test.
        # ``injections`` counts only the (rare) injector-cursor pops.
        injections = 0
        try:
            while True:
                t, _s, code = pop(heap)

                if code < H:
                    # OutputPort._finish_transmission for hop f on its port.
                    f = code
                    dep[f] = t
                    acode = nxt[f]
                    # Receive is scheduled *before* the port picks its next
                    # packet; a last hop settles at the destination directly
                    # (same time, same seq consumption, same event count).
                    if acode < 0:
                        egress[hop_pkt[f]] = t + hop_prop[f]
                    else:
                        push(heap, (t + hop_prop[f], seq, acode))
                    seq += 1
                    p = hop_port[f]
                    ph = port_heaps[p]
                    if ph:
                        _k, _s2, f2, et = pop(ph)
                        if lstf:
                            slack[hop_pkt[f2]] -= t - et
                        start[f2] = t
                        push(heap, (t + hop_tx[f2], seq, f2))
                        seq += 1
                    else:
                        busy[p] = False

                elif code < H2:
                    # Link delivery at a router: Router.receive.
                    fn = code - H
                    arr[fn] = t
                    p = hop_port[fn]
                    if lstf:
                        key = (slack[hop_pkt[fn]] + t) + hop_tx[fn]
                    else:
                        key = hop_key[fn]
                    s = port_seq[p]
                    port_seq[p] = s + 1
                    if busy[p]:
                        push(port_heaps[p], (key, s, fn, t))
                    else:
                        # Idle port: the queue is empty, serve immediately.
                        start[fn] = t
                        busy[p] = True
                        push(heap, (t + hop_tx[fn], seq, fn))
                        seq += 1

                else:
                    # ReplayInjector._advance: inject every record due now,
                    # then re-arm the cursor at the next ingress time.
                    injections += 1
                    while cursor < n and ingress[cursor] <= t:
                        j = cursor
                        cursor += 1
                        fn = off[j]
                        arr[fn] = t
                        p = hop_port[fn]
                        if lstf:
                            key = (slack[j] + t) + hop_tx[fn]
                        else:
                            key = hop_key[fn]
                        s = port_seq[p]
                        port_seq[p] = s + 1
                        if busy[p]:
                            push(port_heaps[p], (key, s, fn, t))
                        else:
                            start[fn] = t
                            busy[p] = True
                            push(heap, (t + hop_tx[fn], seq, fn))
                            seq += 1
                    if cursor < n:
                        push(heap, (ingress[cursor], fseq, INJ))
                        fseq += 1
        except IndexError:
            # The heap ran dry: the replay is complete.
            pass
        # Every hop contributes one finish and one arrival event (a first
        # hop's arrival is the injection itself, a last hop's is the settled
        # destination arrival — both counted), plus one pop per
        # injector-cursor firing: H + (H - n) + n + injections.
        return arr, start, dep, egress, 2 * total_hops + injections

    while heap and executed < budget:
        t, _s, code = pop(heap)
        executed += 1

        if code < H:
            # OutputPort._finish_transmission for hop f on its port.
            f = code
            dep[f] = t
            acode = nxt[f]
            # Receive is scheduled *before* the port picks its next packet.
            if acode < 0:
                # Last hop: the arrival lands at the destination.  Under a
                # budget the heap path is kept, because a budget exhausting
                # *between* a finish and its arrival must leave the packet
                # in flight, exactly as on the OO engine.
                push(heap, (t + hop_prop[f], seq, H2 + hop_pkt[f]))
            else:
                push(heap, (t + hop_prop[f], seq, acode))
            seq += 1
            p = hop_port[f]
            ph = port_heaps[p]
            if ph:
                _k, _s2, f2, et = pop(ph)
                if lstf:
                    slack[hop_pkt[f2]] -= t - et
                start[f2] = t
                push(heap, (t + hop_tx[f2], seq, f2))
                seq += 1
            else:
                busy[p] = False

        elif code < H2:
            # Link delivery at a router: Router.receive.
            fn = code - H
            j = hop_pkt[fn]
            arr[fn] = t
            p = hop_port[fn]
            if lstf:
                key = (slack[j] + t) + hop_tx[fn]
            else:
                key = hop_key[fn]
            s = port_seq[p]
            port_seq[p] = s + 1
            if busy[p]:
                push(port_heaps[p], (key, s, fn, t))
            else:
                # Idle port: the queue is empty, serve immediately.
                start[fn] = t
                busy[p] = True
                push(heap, (t + hop_tx[fn], seq, fn))
                seq += 1

        elif code < INJ:
            # Link delivery at the destination: Host.receive.
            egress[code - H2] = t

        else:
            # ReplayInjector._advance: inject every record due now, then
            # re-arm the cursor at the next ingress time (front sequence).
            while cursor < n and ingress[cursor] <= t:
                j = cursor
                cursor += 1
                fn = off[j]
                arr[fn] = t
                p = hop_port[fn]
                if lstf:
                    key = (slack[j] + t) + hop_tx[fn]
                else:
                    key = hop_key[fn]
                s = port_seq[p]
                port_seq[p] = s + 1
                if busy[p]:
                    push(port_heaps[p], (key, s, fn, t))
                else:
                    start[fn] = t
                    busy[p] = True
                    push(heap, (t + hop_tx[fn], seq, fn))
                    seq += 1
            if cursor < n:
                push(heap, (ingress[cursor], fseq, INJ))
                fseq += 1

    return arr, start, dep, egress, executed
