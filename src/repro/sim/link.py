"""Unidirectional link model.

A physical cable between two nodes is modelled as two independent
unidirectional :class:`Link` objects (one per direction), each owned by the
output port of its sending node.  A link has a bandwidth (bits/second) and a
propagation delay (seconds); the store-and-forward transmission delay of a
packet is computed from the packet size and the link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Attributes:
        src: Name of the sending node.
        dst: Name of the receiving node.
        bandwidth_bps: Link rate in bits per second.
        propagation_delay: One-way propagation delay in seconds.
    """

    src: str
    dst: str
    bandwidth_bps: float
    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"link {self.src}->{self.dst}: bandwidth must be positive, "
                f"got {self.bandwidth_bps}"
            )
        if self.propagation_delay < 0:
            raise ValueError(
                f"link {self.src}->{self.dst}: propagation delay must be "
                f"non-negative, got {self.propagation_delay}"
            )

    @property
    def name(self) -> str:
        """Human-readable link name."""
        return f"{self.src}->{self.dst}"

    def transmission_delay(self, size_bytes: float) -> float:
        """Time to serialize a packet of ``size_bytes`` onto this link.

        Bandwidth was validated at construction, so no per-call checks: this
        runs on scheduling hot paths (same formula as
        :func:`repro.utils.units.transmission_delay`).
        """
        return size_bytes * 8 / self.bandwidth_bps

    def latency(self, size_bytes: float) -> float:
        """Store-and-forward latency of one packet over this link (no queueing)."""
        return self.transmission_delay(size_bytes) + self.propagation_delay
