"""Flow model: a unidirectional transfer of bytes between two hosts."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

_flow_counter = itertools.count()


def reset_flow_ids() -> None:
    """Reset the global flow-id counter (used by tests for determinism)."""
    global _flow_counter
    _flow_counter = itertools.count()


#: Default maximum segment size in bytes (Ethernet MTU minus typical headers).
DEFAULT_MSS = 1460


@dataclass(eq=False)
class Flow:
    """A flow: ``size_bytes`` to move from ``src`` to ``dst`` starting at ``start_time``.

    Flows are mutable bookkeeping objects with identity semantics (``eq=False``),
    so they can be collected in sets and dictionaries while the transport layer
    updates their progress counters.

    The transport layer (UDP or TCP) segments the flow into packets of at most
    ``mss`` bytes and is responsible for updating the completion bookkeeping.

    Attributes:
        src: Source host name.
        dst: Destination host name.
        size_bytes: Total number of application bytes to transfer.
        start_time: Simulation time at which the flow becomes active.
        mss: Maximum segment size used when packetizing the flow.
        weight: Relative weight for weighted-fairness experiments.
        deadline: Absolute simulation time by which the flow should finish
            (``None`` = no deadline).  Set by deadline-tagging workload
            perturbations; carried onto every packet of the flow so replay
            evaluation can report deadline-met fractions.
    """

    src: str
    dst: str
    size_bytes: float
    start_time: float
    mss: int = DEFAULT_MSS
    weight: float = 1.0
    deadline: Optional[float] = None
    flow_id: int = field(default_factory=lambda: next(_flow_counter))

    # --- progress bookkeeping maintained by the transport layer ---
    bytes_sent: float = 0.0
    bytes_delivered: float = 0.0
    bytes_acked: float = 0.0
    completion_time: Optional[float] = None
    first_packet_time: Optional[float] = None
    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    retransmissions: int = 0

    @property
    def num_packets(self) -> int:
        """Number of data packets needed to carry the flow at its MSS."""
        if self.size_bytes <= 0:
            return 0
        return int(math.ceil(self.size_bytes / self.mss))

    @property
    def completed(self) -> bool:
        """Whether every byte of the flow has been delivered to the receiver."""
        return self.completion_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time (delivery of last byte minus flow start)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time

    def packet_sizes(self) -> list:
        """Sizes of the data packets that carry this flow, in order."""
        if self.size_bytes <= 0:
            return []
        full_packets = int(self.size_bytes // self.mss)
        sizes = [float(self.mss)] * full_packets
        remainder = self.size_bytes - full_packets * self.mss
        if remainder > 0:
            sizes.append(float(remainder))
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Flow id={self.flow_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B start={self.start_time:.6f}>"
        )
