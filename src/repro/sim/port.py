"""Output port: the queue + transmitter attached to each directed link.

A port owns exactly one :class:`~repro.schedulers.base.Scheduler` and one
:class:`~repro.sim.link.Link`.  It implements the store-and-forward,
non-preemptive transmission loop used throughout the paper's model:

1. Arriving packets are handed to the scheduler (possibly dropping a packet
   if the buffer is finite and full).
2. When the transmitter is idle, the scheduler picks the next packet; the
   port serializes it for ``size / bandwidth`` seconds.
3. When the last bit has been transmitted the packet is handed to the link,
   which delivers it to the downstream node after the propagation delay.

Preemption (used only by the preemptive-LSTF ablation) aborts an in-flight
transmission, re-queues the remaining bytes, and lets the scheduler pick
again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event
from repro.sim.link import Link
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.base import Scheduler
    from repro.sim.engine import Simulator
    from repro.sim.node import Node


class OutputPort:
    """Transmission queue for one unidirectional link.

    Args:
        sim: The simulation engine.
        node: The node that owns this port.
        link: The outgoing link served by this port.
        scheduler: Packet scheduler deciding service order.
        buffer_bytes: Buffer capacity in bytes; ``None`` means infinite (the
            paper's replay experiments use effectively infinite buffers so
            that no packet is dropped).
    """

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        link: Link,
        scheduler: "Scheduler",
        buffer_bytes: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.link = link
        self.scheduler = scheduler
        self.buffer_bytes = buffer_bytes
        scheduler.attach(self)

        # Hot-path caches: the transmission loop runs once per packet per
        # hop, so link parameters are hoisted out of the per-packet path
        # here (the float math itself is kept bit-identical to
        # Link.transmission_delay: ``bytes * 8 / bandwidth``).  The
        # destination node is resolved lazily on first transmission because
        # ports are built while the topology is still being wired.
        self._link_bandwidth = link.bandwidth_bps
        self._link_propagation = link.propagation_delay
        self._dst_receive = None

        self._busy = False
        self._current_packet: Optional[Packet] = None
        self._current_started: Optional[float] = None
        self._finish_event: Optional[Event] = None
        # Counters for monitoring and tests.
        self.packets_transmitted = 0
        self.bytes_transmitted = 0.0
        self.packets_dropped = 0
        # Fault-injection hook (repro.faults): a PortFaultState while a
        # fault plan is installed on this port's link, else None.  The None
        # check is the only fault-layer cost on the fault-free hot path.
        self.fault_state = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def busy(self) -> bool:
        """Whether a packet is currently being transmitted."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of packets waiting (excluding the one in flight)."""
        return len(self.scheduler)

    @property
    def queued_bytes(self) -> float:
        """Bytes waiting (excluding the one in flight)."""
        return self.scheduler.byte_count

    @property
    def current_packet(self) -> Optional[Packet]:
        """The packet currently being transmitted, if any."""
        return self._current_packet

    # ------------------------------------------------------------------ #
    # Enqueue / drop
    # ------------------------------------------------------------------ #
    def enqueue(self, packet: Packet) -> None:
        """Accept a packet for transmission on this port."""
        now = self.sim.now
        if self.buffer_bytes is not None and (
            self.queued_bytes + packet.size_bytes > self.buffer_bytes
        ):
            victim = self.scheduler.choose_drop(packet, now)
            if victim is not packet:
                removed = self.scheduler.remove(victim)
                if not removed:
                    # The victim could not be located (defensive path); fall
                    # back to dropping the arriving packet.
                    victim = packet
            if victim is packet:
                self._drop(packet)
                return
            self._drop(victim)

        self.scheduler.enqueue(packet, now)
        if not self._busy:
            self._start_next()
        elif self.scheduler.preemptive and self._current_packet is not None:
            if self.scheduler.should_preempt(
                self._current_packet, self._current_started, now
            ):
                self._preempt_current()
                self._start_next()

    def _drop(self, packet: Packet) -> None:
        packet.dropped = True
        packet.drop_node = self.node.name
        self.packets_dropped += 1
        self.node.notify_drop(packet, self)

    # ------------------------------------------------------------------ #
    # Transmission loop
    # ------------------------------------------------------------------ #
    def _start_next(self) -> None:
        fault_state = self.fault_state
        if fault_state is not None and fault_state.down:
            # Link outage: hold the queue; fault_resume() restarts service.
            self._busy = False
            self._current_packet = None
            self._current_started = None
            self._finish_event = None
            return
        sim = self.sim
        now = sim.now
        packet = self.scheduler.dequeue(now)
        if packet is None:
            self._busy = False
            self._current_packet = None
            self._current_started = None
            self._finish_event = None
            return

        hop = packet.current_hop()
        if hop is not None and hop.start_service_time is None:
            hop.start_service_time = now
            # Accumulate the queueing delay experienced at this node into the
            # packet header; FIFO+ prioritizes on this value at later hops.
            packet.header.accumulated_wait += now - hop.arrival_time

        remaining = packet.remaining_tx_bytes
        tx_bytes = remaining if remaining is not None else packet.size_bytes
        tx_delay = tx_bytes * 8 / self._link_bandwidth

        self._busy = True
        self._current_packet = packet
        self._current_started = now
        self._finish_event = sim.schedule(tx_delay, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        packet.remaining_tx_bytes = None
        sim = self.sim
        hop = packet.current_hop()
        if hop is not None:
            hop.departure_time = sim.now
        self.packets_transmitted += 1
        self.bytes_transmitted += packet.size_bytes

        fault_state = self.fault_state
        if fault_state is not None and fault_state.intercepts(packet, sim.now):
            # Jamming/loss semantics (Böhm et al.): the transmission time was
            # spent, but the packet is destroyed instead of propagating.
            self._drop(packet)
        else:
            self.node.notify_departure(packet, self)
            # Deliver after the propagation delay; the downstream node
            # receives the packet fully assembled (store-and-forward).
            receive = self._dst_receive
            if receive is None:
                receive = self._dst_receive = self.node.network.nodes[self.link.dst].receive
            sim.schedule(self._link_propagation, receive, packet)

        self._busy = False
        self._current_packet = None
        self._current_started = None
        self._finish_event = None
        self._start_next()

    # ------------------------------------------------------------------ #
    # Fault-injection hooks (repro.faults)
    # ------------------------------------------------------------------ #
    def fault_interrupt(self) -> bool:
        """Abort the in-flight transmission because the link went down.

        Unlike :meth:`_preempt_current`, the interrupted packet is *lost*
        (its bits were on a link that just failed), not requeued.

        Returns:
            True if a packet was in flight and destroyed.
        """
        packet = self._current_packet
        if packet is None or self._finish_event is None:
            return False
        self.sim.cancel(self._finish_event)
        packet.remaining_tx_bytes = None
        self._drop(packet)
        self._busy = False
        self._current_packet = None
        self._current_started = None
        self._finish_event = None
        return True

    def fault_resume(self) -> None:
        """Resume service after the link came back up."""
        if not self._busy:
            self._start_next()

    def _preempt_current(self) -> None:
        """Abort the in-flight transmission and requeue its remaining bytes."""
        packet = self._current_packet
        if packet is None or self._finish_event is None or self._current_started is None:
            return
        self.sim.cancel(self._finish_event)
        elapsed = self.sim.now - self._current_started
        total_bytes = (
            packet.remaining_tx_bytes
            if packet.remaining_tx_bytes is not None
            else packet.size_bytes
        )
        sent_bytes = elapsed * self._link_bandwidth / 8.0
        packet.remaining_tx_bytes = max(0.0, total_bytes - sent_bytes)
        # The packet goes back to the queue; its hop record will get a new
        # service-start time when it is next selected.
        hop = packet.current_hop()
        if hop is not None:
            hop.start_service_time = None
        self.scheduler.enqueue(packet, self.sim.now)
        self._busy = False
        self._current_packet = None
        self._current_started = None
        self._finish_event = None
