"""Network: topology container, routing, and empty-network latency (tmin).

A :class:`Network` owns the nodes, links, ports, and schedulers of one
simulation run.  It also exposes the ``tmin`` computation used by the paper's
slack definition: the time a packet of a given size takes to traverse a path
through an otherwise empty (uncongested) store-and-forward network.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.sim.link import Link
from repro.sim.node import Host, Node, Router
from repro.sim.packet import Packet
from repro.sim.port import OutputPort
from repro.sim.routing import RoutingTable
from repro.sim.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.base import Scheduler
    from repro.sim.engine import Simulator


#: A scheduler factory receives the sending node's name and the outgoing link
#: and returns a fresh scheduler instance for that port.  This is how
#: experiments deploy FIFO everywhere, LSTF everywhere, or per-router
#: mixtures (e.g. half FQ, half FIFO+).
SchedulerFactory = Callable[[str, Link], "Scheduler"]


class Network:
    """Container for one simulated network.

    Args:
        sim: Simulation engine that drives this network.
        scheduler_factory: Called once per output port to create its scheduler.
        tracer: Optional trace collector; one is created if not supplied.
        default_buffer_bytes: Buffer capacity applied to router/host ports
            unless overridden per link (``None`` = infinite buffers).
    """

    def __init__(
        self,
        sim: "Simulator",
        scheduler_factory: SchedulerFactory,
        tracer: Optional[Tracer] = None,
        default_buffer_bytes: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.scheduler_factory = scheduler_factory
        self.tracer = tracer if tracer is not None else Tracer()
        self.default_buffer_bytes = default_buffer_bytes

        self.graph = nx.Graph()
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._routing: Optional[RoutingTable] = None

        #: Optional slack policy applied by hosts at packet-send time (used by
        #: the practical heuristics in Section 3 of the paper).
        self.slack_policy = None

        #: Optional fault injector (repro.faults) once a fault plan has been
        #: installed via :meth:`install_faults`; None on fault-free runs.
        self.fault_injector = None

    # ------------------------------------------------------------------ #
    # Topology construction
    # ------------------------------------------------------------------ #
    def add_host(self, name: str) -> Host:
        """Create and register an end host."""
        self._check_new_name(name)
        host = Host(self.sim, name, self)
        self.nodes[name] = host
        self.graph.add_node(name, kind="host")
        self._invalidate_routing()
        return host

    def add_router(self, name: str) -> Router:
        """Create and register a store-and-forward router."""
        self._check_new_name(name)
        router = Router(self.sim, name, self)
        self.nodes[name] = router
        self.graph.add_node(name, kind="router")
        self._invalidate_routing()
        return router

    def _check_new_name(self, name: str) -> None:
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        propagation_delay: float = 0.0,
        buffer_bytes: Optional[float] = None,
    ) -> Tuple[Link, Link]:
        """Add a full-duplex link between two existing nodes.

        Creates one unidirectional :class:`Link` and one output port in each
        direction, with a freshly built scheduler per port.

        Returns:
            The two directed links ``(a->b, b->a)``.
        """
        if a not in self.nodes or b not in self.nodes:
            missing = a if a not in self.nodes else b
            raise KeyError(f"cannot link unknown node {missing!r}")
        if (a, b) in self.links or (b, a) in self.links:
            raise ValueError(f"link between {a} and {b} already exists")

        capacity = buffer_bytes if buffer_bytes is not None else self.default_buffer_bytes
        forward = Link(a, b, bandwidth_bps, propagation_delay)
        backward = Link(b, a, bandwidth_bps, propagation_delay)
        for link in (forward, backward):
            sender = self.nodes[link.src]
            scheduler = self.scheduler_factory(link.src, link)
            port = OutputPort(self.sim, sender, link, scheduler, buffer_bytes=capacity)
            sender.add_port(link.dst, port)
            self.links[(link.src, link.dst)] = link

        self.graph.add_edge(a, b, delay=propagation_delay, bandwidth=bandwidth_bps)
        self._invalidate_routing()
        return forward, backward

    def link(self, src: str, dst: str) -> Link:
        """The directed link from ``src`` to ``dst``."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link from {src} to {dst}") from None

    def hosts(self) -> List[Host]:
        """All end hosts in the network."""
        return [node for node in self.nodes.values() if isinstance(node, Host)]

    def routers(self) -> List[Router]:
        """All routers in the network."""
        return [node for node in self.nodes.values() if isinstance(node, Router)]

    def host(self, name: str) -> Host:
        """Look up a host by name (raises if the node is not a host)."""
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name} is not a host")
        return node

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @property
    def routing(self) -> RoutingTable:
        """The (lazily built) routing table for the current topology."""
        if self._routing is None:
            self._routing = RoutingTable(self.graph)
        return self._routing

    def _invalidate_routing(self) -> None:
        self._routing = None

    def next_hop(self, node: str, dst: str) -> str:
        """Next hop from ``node`` towards ``dst``."""
        return self.routing.next_hop(node, dst)

    def path(self, src: str, dst: str) -> List[str]:
        """Route (list of node names) from ``src`` to ``dst``."""
        return self.routing.path(src, dst)

    # ------------------------------------------------------------------ #
    # Empty-network latency (the paper's tmin)
    # ------------------------------------------------------------------ #
    def tmin_along(self, size_bytes: float, path: List[str]) -> float:
        """Empty-network latency of a packet of ``size_bytes`` along ``path``.

        This is the paper's ``tmin``: the sum, over every link on the path, of
        the store-and-forward transmission delay plus the propagation delay.
        A single-node path has zero latency (the formal model's edge case
        ``tmin(p, alpha, alpha) = T(p, alpha)`` concerns router-internal
        transmission and is handled by the scheduler-level slack expression,
        not here).
        """
        total = 0.0
        for src, dst in zip(path[:-1], path[1:]):
            link = self.link(src, dst)
            total += link.transmission_delay(size_bytes) + link.propagation_delay
        return total

    def tmin(self, size_bytes: float, src: str, dst: str) -> float:
        """Empty-network latency from ``src`` to ``dst`` for a packet of ``size_bytes``."""
        return self.tmin_along(size_bytes, self.path(src, dst))

    def tmin_remaining(self, packet: Packet, from_node: str) -> float:
        """Empty-network latency from ``from_node`` to the packet's destination.

        Used by network-wide EDF, which needs ``tmin(p, alpha, dest(p))`` as
        static per-router state.  Honors the packet's source route if set.
        """
        if packet.route:
            try:
                index = packet.route.index(from_node)
            except ValueError:
                raise RuntimeError(
                    f"node {from_node} is not on packet {packet.packet_id}'s route"
                ) from None
            remaining_path = packet.route[index:]
        else:
            remaining_path = self.path(from_node, packet.dst)
        return self.tmin_along(packet.size_bytes, remaining_path)

    def bottleneck_transmission_time(self, size_bytes: float) -> float:
        """Transmission time of ``size_bytes`` on the slowest link in the network.

        This is the threshold ``T`` used in Table 1 of the paper ("overdue by
        more than one transmission time on the bottleneck link").
        """
        slowest = min(link.bandwidth_bps for link in self.links.values())
        from repro.utils.units import transmission_delay

        return transmission_delay(size_bytes, slowest)

    # ------------------------------------------------------------------ #
    # Tracer notifications (called by nodes/ports)
    # ------------------------------------------------------------------ #
    def notify_ingress(self, packet: Packet) -> None:
        """Record a packet injection with the tracer."""
        self.tracer.on_ingress(packet)

    def notify_egress(self, packet: Packet) -> None:
        """Record a packet delivery with the tracer."""
        self.tracer.on_egress(packet)

    def notify_drop(self, packet: Packet) -> None:
        """Record a packet drop with the tracer."""
        self.tracer.on_drop(packet)

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def install_faults(self, plan, horizon: float):
        """Install a :class:`repro.faults.FaultPlan` on this network.

        Must be called before the simulation runs (outage toggles are
        scheduled as absolute-time events).  ``horizon`` is the time span the
        plan's fractional windows are stretched over — the workload duration
        when recording, the last recorded ingress time when replaying.
        Delegates to the plan so this module never imports ``repro.faults``
        (the fault layer sits above the engine).

        Returns:
            The installed :class:`repro.faults.FaultInjector`.
        """
        if self.fault_injector is not None:
            raise RuntimeError("a fault plan is already installed on this network")
        self.fault_injector = plan.install(self.sim, self, horizon)
        return self.fault_injector

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def send_from_host(self, host_name: str, packet: Packet) -> None:
        """Inject ``packet`` at ``host_name`` immediately."""
        self.host(host_name).send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Network nodes={len(self.nodes)} links={len(self.links) // 2} "
            f"hosts={len(self.hosts())}>"
        )
