"""The ``SimBackend`` seam: pluggable engines behind one replay contract.

The OO simulator (:mod:`repro.sim.engine`, :mod:`repro.sim.port`,
:mod:`repro.schedulers.base`) and any optimized engine implicitly share a
narrow contract; this module makes it explicit so engines can be swapped by
name without touching callers.  The contract has two halves:

**Event-loop semantics** (what :meth:`SimBackend.make_simulator` returns):

* *Advance-to-next-event*: the engine repeatedly executes the earliest
  pending event and advances the clock to its timestamp; the clock never
  moves backwards.
* *Deterministic tie-breaking*: events are totally ordered by
  ``(time, sequence)``.  Normally scheduled events draw sequence numbers
  from an increasing non-negative counter (so same-time events fire in
  scheduling order); ``schedule_at_front`` draws from a separate negative
  increasing range, so front events at time ``t`` fire before *every*
  normally scheduled event at ``t`` — including ones scheduled earlier.
  The replay injector's streaming cursor depends on this.
* *Cancellation is lazy but observably exact*: cancelling marks the event
  in O(1); the entry is physically discarded only when it surfaces at the
  heap head.  Observable semantics are nevertheless strict, however the
  event was cancelled (``Simulator.cancel`` or a direct ``Event.cancel()``):
  ``peek_next_time`` never returns a cancelled event's time, a cancelled
  event never fires, and once a dead entry has been discarded it is excluded
  from ``pending_events``.  The cross-backend contract test
  (``tests/sim/test_backend_equivalence.py``) runs the cancel-then-peek
  sequence against every registered backend's simulator.

**Port-service semantics** (what :meth:`SimBackend.replay` must reproduce):

* Store-and-forward, non-preemptive service: a port serializes one packet
  for ``bytes * 8 / bandwidth`` seconds (that exact float expression — the
  rows of every experiment are compared bit-for-bit), then hands it to the
  link, which delivers it ``propagation_delay`` later.
* Per-port scheduler order: the queued packet with the smallest key is
  served first; ties break FIFO by per-port enqueue sequence.
* Completion callbacks: when a transmission finishes, the downstream
  arrival is scheduled *before* the port picks its next packet, so the
  engine-level ``(time, seq)`` order of those two events matches the OO
  engine's exactly.

Backends register by name; ``"python"`` is the OO engine with unchanged
behaviour, ``"vectorized"`` is the array-based replay engine
(:mod:`repro.core.replay_vectorized`), and ``"compiled"`` is the same
orchestration driving the native kernel extension
(:mod:`repro.core.replay_compiled`; an optional build that declines
gracefully when the extension is absent).  Builtin backends are resolved
lazily — the providing modules live in :mod:`repro.core`, which imports
:mod:`repro.sim`, so importing them here at module scope would cycle.

See ``docs/backends.md`` for the full contract and for how to add a backend.
"""

from __future__ import annotations

import importlib
import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports sim)
    from repro.core.schedule import Schedule
    from repro.core.slack import ReplayInitializer
    from repro.faults.injector import FaultPlan
    from repro.topology.base import Topology

#: Environment variable consulted when no backend is selected explicitly.
#: Lets CI run an unmodified test subset under another engine:
#: ``REPRO_BACKEND=vectorized pytest tests/pipeline/test_golden_rows.py``.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The backend used when neither the caller nor the environment selects one.
DEFAULT_BACKEND = "python"


class SimBackend(ABC):
    """One simulation engine, as seen by the replay path and the pipeline.

    A backend must satisfy the module-level contract: same event ordering,
    same per-port service order, same float arithmetic — a replay of any
    schedule must be *bit-identical* across backends (the equivalence suite
    and the golden-rows fixtures enforce this).

    Backends may decline configurations they do not implement (via
    :meth:`supports_replay`); callers then fall back to the ``"python"``
    reference backend, which supports everything.
    """

    #: Registry name (set by subclasses).
    name: str = "abstract"

    #: One-line replay-support note for ``python -m repro list --backends``.
    replay_note: str = "no replay note"

    def make_simulator(self) -> Simulator:
        """A fresh event-loop instance honouring the engine contract.

        The default returns the reference :class:`~repro.sim.engine.Simulator`;
        backends that accelerate only the batch replay path (and so have no
        incremental event loop of their own) inherit it, which is also what
        keeps the cancel-then-peek contract test meaningful for them.
        """
        return Simulator()

    def check_available(self) -> None:
        """Raise ``PipelineConfigError`` if the backend's dependencies are missing.

        Called whenever the backend is explicitly resolved by name, so a
        ``--backend`` request without the needed extras fails fast with a
        clean configuration error (CLI exit 2) instead of an ImportError
        mid-run.  The default assumes no optional dependencies.
        """

    def build_info(self) -> Optional[dict]:
        """Build metadata for bench payloads (compiler, toolchain, ...).

        ``None`` means the backend has no build step (pure Python); the
        compiled backend reports the compiler and toolchain that produced
        its kernel extension, so committed ``BENCH_*.json`` files state
        what, exactly, was measured.
        """
        return None

    def supports_replay(
        self,
        mode: str,
        default_buffer_bytes: Optional[float] = None,
        initializer: Optional["ReplayInitializer"] = None,
        topology: Optional["Topology"] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> bool:
        """Whether :meth:`replay` implements this exact configuration.

        ``topology`` is the spec the replay will run on when the caller has
        it at hand (backends may decline topology-dependent features such as
        finite per-link buffers); ``None`` means "not yet known" and must be
        answered optimistically — :meth:`replay` re-checks with the real
        topology and raises if the optimism was misplaced.  ``faults`` is
        the fault plan to install during the replay; an empty plan counts as
        fault-free (backends must treat ``None`` and an empty plan alike).
        """
        return True

    @abstractmethod
    def replay(
        self,
        topology: "Topology",
        schedule: "Schedule",
        mode: str = "lstf",
        default_buffer_bytes: Optional[float] = None,
        max_events: Optional[int] = None,
        initializer: Optional["ReplayInitializer"] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> "Schedule":
        """Replay ``schedule`` on ``topology``; see :func:`repro.core.replay.replay_schedule`."""


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
#: Builtin backends, resolved lazily by importing the providing module
#: (which registers itself at import time via :func:`register_backend`).
_BUILTIN_MODULES: Dict[str, str] = {
    "python": "repro.core.replay",
    "vectorized": "repro.core.replay_vectorized",
    "compiled": "repro.core.replay_compiled",
}

_REGISTRY: Dict[str, Union[SimBackend, Callable[[], SimBackend]]] = {}
_INSTANCES: Dict[str, SimBackend] = {}


def _config_error(message: str) -> Exception:
    """A ``PipelineConfigError`` (CLI exit 2), imported lazily.

    The error type lives in :mod:`repro.pipeline.scenario`; importing it at
    module scope would invert the sim → pipeline layering, so it is resolved
    only on the error path.
    """
    from repro.pipeline.scenario import PipelineConfigError

    return PipelineConfigError(message)


def register_backend(
    name: str, backend: Union[SimBackend, Callable[[], SimBackend]]
) -> None:
    """Register a backend (instance or zero-arg factory) under ``name``."""
    _REGISTRY[name] = backend
    _INSTANCES.pop(name, None)


def backend_names() -> List[str]:
    """Names of every known backend (builtin and registered)."""
    names = set(_BUILTIN_MODULES) | set(_REGISTRY)
    return sorted(names)


def _instantiate(name: str) -> SimBackend:
    """Construct the backend registered under ``name``, availability unchecked.

    Distinguishes the two failure classes the CLI reports differently:
    a name nobody registered raises "unknown backend" (with the registered
    names listed), while a registered backend whose dependencies are missing
    is *instantiable* — only :meth:`SimBackend.check_available` fails, which
    is what lets ``list --backends`` show unavailable backends with their
    reasons instead of erroring out.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        module = _BUILTIN_MODULES.get(name)
        if module is None:
            known = ", ".join(backend_names())
            raise _config_error(
                f"unknown backend {name!r}; registered backends: {known} "
                "(see `python -m repro list --backends`)"
            )
        importlib.import_module(module)
        entry = _REGISTRY.get(name)
        if entry is None:  # pragma: no cover - a builtin forgot to register
            raise _config_error(f"backend module {module} did not register {name!r}")
    return entry if isinstance(entry, SimBackend) else entry()


def get_backend(name: str) -> SimBackend:
    """The backend registered under ``name``.

    Raises:
        PipelineConfigError: if the name is unknown ("unknown backend ...",
            listing the registered names), or the backend is registered but
            unavailable — missing dependency or unbuilt extension — in which
            case the message names the backend and carries the precise
            reason (e.g. ``vectorized`` without numpy, ``compiled`` without
            the built kernel).  Both exit 2 at the CLI.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    backend = _instantiate(name)
    backend.check_available()
    _INSTANCES[name] = backend
    return backend


def describe_backends() -> List[dict]:
    """Availability report for every registered backend (CLI ``list --backends``).

    Returns one entry per name: ``{"name", "available", "reason",
    "replay_note", "build"}`` — ``reason`` is the ``check_available``
    failure message when unavailable (``None`` otherwise), ``build`` the
    backend's build metadata when it reports any.  Never raises for an
    unavailable backend; unknown names cannot occur (the listing *is* the
    registry).
    """
    from repro.pipeline.scenario import PipelineConfigError

    entries = []
    for name in backend_names():
        backend = _instantiate(name)
        reason: Optional[str] = None
        try:
            backend.check_available()
        except PipelineConfigError as error:
            reason = str(error)
        entries.append(
            {
                "name": name,
                "available": reason is None,
                "reason": reason,
                "replay_note": backend.replay_note,
                "build": backend.build_info() if reason is None else None,
            }
        )
    return entries


def available_backend_names(mode: str = "lstf") -> List[str]:
    """Backends that can actually replay here, reference engine first.

    The reference ``"python"`` engine always leads; every other registered
    backend follows in trajectory order (``vectorized``, ``compiled``, then
    any third-party registrations sorted by name), *skipping* backends whose
    dependencies are missing or whose extension is not built, and backends
    that decline ``mode``.  This is the backend enumeration the replay-path
    bench, the differential fuzz harness, and ``repro diff --replay`` all
    share: "every available backend" means exactly this list.
    """
    from repro.pipeline.scenario import PipelineConfigError

    preferred = ["python", "vectorized", "compiled"]
    names = [name for name in preferred if name in backend_names()]
    names += [name for name in sorted(backend_names()) if name not in preferred]
    usable: List[str] = []
    for name in names:
        try:
            backend = get_backend(name)
        except PipelineConfigError:
            continue
        if name == "python" or backend.supports_replay(mode):
            usable.append(name)
    return usable


def resolve_backend(selector: Union[str, SimBackend, None]) -> SimBackend:
    """Resolve a backend selector to an instance.

    ``None`` consults the :data:`BACKEND_ENV_VAR` environment variable and
    falls back to :data:`DEFAULT_BACKEND` (``"python"``), so an unmodified
    caller keeps the reference engine.
    """
    if isinstance(selector, SimBackend):
        return selector
    if selector is None:
        selector = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    return get_backend(selector)
