"""Packet-level discrete-event network simulator (the paper's ns-2 substitute)."""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event
from repro.sim.flow import DEFAULT_MSS, Flow, reset_flow_ids
from repro.sim.link import Link
from repro.sim.network import Network, SchedulerFactory
from repro.sim.node import Host, Node, Router
from repro.sim.packet import (
    HopRecord,
    Packet,
    PacketHeader,
    PacketType,
    reset_packet_ids,
)
from repro.sim.port import OutputPort
from repro.sim.routing import RoutingError, RoutingTable
from repro.sim.simulation import Simulation, SimulationResult
from repro.sim.tracer import Tracer

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "Packet",
    "PacketHeader",
    "PacketType",
    "HopRecord",
    "reset_packet_ids",
    "Flow",
    "DEFAULT_MSS",
    "reset_flow_ids",
    "Link",
    "Node",
    "Router",
    "Host",
    "OutputPort",
    "Network",
    "SchedulerFactory",
    "RoutingTable",
    "RoutingError",
    "Tracer",
    "Simulation",
    "SimulationResult",
]
