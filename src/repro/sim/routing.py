"""Static shortest-path routing.

The paper assumes a fixed path per packet (``path(p)`` is part of the input).
We model that with deterministic shortest-path routing over the topology
graph: the path between any two nodes is computed once and cached, and every
packet between the same pair follows the same path.  Replayed packets carry
an explicit source route instead, so the replay cannot diverge from the
original even if the routing configuration were to change between runs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx


class RoutingError(RuntimeError):
    """Raised when no route exists between two nodes."""


class RoutingTable:
    """All-pairs next-hop routing derived from shortest paths.

    Paths are computed lazily and cached.  Edge weights default to hop count;
    pass ``weight="delay"`` to prefer low-propagation-delay paths (the graph
    edges must then carry a ``delay`` attribute).
    """

    def __init__(self, graph: nx.Graph, weight: str | None = None) -> None:
        self._graph = graph
        self._weight = weight
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}

    def invalidate(self) -> None:
        """Drop all cached paths (call after modifying the topology)."""
        self._path_cache.clear()

    def path(self, src: str, dst: str) -> List[str]:
        """Node names along the route from ``src`` to ``dst`` (inclusive)."""
        if src == dst:
            return [src]
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        try:
            route = nx.shortest_path(self._graph, src, dst, weight=self._weight)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise RoutingError(f"no route from {src} to {dst}") from exc
        self._path_cache[key] = route
        return route

    def next_hop(self, node: str, dst: str) -> str:
        """The neighbour ``node`` should forward to in order to reach ``dst``."""
        if node == dst:
            raise RoutingError(f"{node} is already the destination")
        route = self.path(node, dst)
        return route[1]

    def hop_count(self, src: str, dst: str) -> int:
        """Number of links on the route from ``src`` to ``dst``."""
        return len(self.path(src, dst)) - 1
