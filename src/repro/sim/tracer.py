"""Trace collection: every packet's ingress, egress, path, and per-hop timing.

The tracer is the bridge between the simulator substrate and the replay
framework: the original run's tracer output is converted into a
:class:`repro.core.schedule.Schedule`, which the replay engine then tries to
reproduce with LSTF (or simple priorities).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.packet import Packet, PacketType


class Tracer:
    """Collects packets as they enter, leave, or are dropped by the network."""

    def __init__(self, record_acks: bool = True) -> None:
        self.record_acks = record_acks
        self.sent: List[Packet] = []
        self.delivered: List[Packet] = []
        self.dropped: List[Packet] = []

    # ------------------------------------------------------------------ #
    # Hooks called by the network
    # ------------------------------------------------------------------ #
    def on_ingress(self, packet: Packet) -> None:
        """A packet was injected by a host."""
        if packet.ptype is PacketType.ACK and not self.record_acks:
            return
        self.sent.append(packet)

    def on_egress(self, packet: Packet) -> None:
        """A packet was fully received by its destination host."""
        if packet.ptype is PacketType.ACK and not self.record_acks:
            return
        self.delivered.append(packet)

    def on_drop(self, packet: Packet) -> None:
        """A packet was dropped at a full buffer."""
        if packet.ptype is PacketType.ACK and not self.record_acks:
            return
        self.dropped.append(packet)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def delivered_data_packets(self) -> List[Packet]:
        """Delivered packets excluding transport acknowledgements."""
        return [p for p in self.delivered if p.ptype is PacketType.DATA]

    def delivery_ratio(self) -> float:
        """Fraction of injected packets that reached their destination."""
        if not self.sent:
            return 0.0
        return len(self.delivered) / len(self.sent)

    def max_end_to_end_delay(self) -> Optional[float]:
        """Largest end-to-end delay among delivered packets (``None`` if none)."""
        delays = [p.end_to_end_delay for p in self.delivered if p.end_to_end_delay is not None]
        return max(delays) if delays else None

    def reset(self) -> None:
        """Clear all recorded packets."""
        self.sent.clear()
        self.delivered.clear()
        self.dropped.clear()
