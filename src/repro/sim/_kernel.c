/* Native replay kernel: `repro.sim.vectorized.run_flat_replay`, compiled.
 *
 * This module is the inner loop of the "compiled" backend
 * (repro.core.replay_compiled).  It is a line-for-line transliteration of
 * the pure-Python kernel in repro/sim/vectorized.py — same event codes,
 * same sequence-number consumption, same float expressions — with the
 * interpreter dispatch removed: the event heap and the per-port priority
 * queues are C structs sifted with inlined comparisons, and every timestamp
 * is a C double (the exact representation CPython floats use), so the
 * output is bit-identical to the Python kernel's and therefore to the OO
 * reference engine's.
 *
 * Float-determinism notes, each load-bearing:
 *
 * - The loop performs only double additions/subtractions in the exact
 *   association order of the Python kernel: `t + hop_prop[f]`,
 *   `t + hop_tx[f]`, `(slack + t) + tx`, `slack -= t - et`.  There are no
 *   multiplications in the loop, so no FMA contraction is possible; the
 *   build nevertheless passes -ffp-contract=off so the guarantee does not
 *   rest on that observation.
 * - Heap ordering is `(time, seq)` / `(key, seq)` with unique sequence
 *   numbers, a strict total order, so *any* correct binary heap pops in
 *   the same order as CPython's heapq over the equivalent tuples; the
 *   comparison `a.t < b.t || (a.t == b.t && a.seq < b.seq)` is exactly
 *   tuple `<` when the third element is never reached.  Keys may be +inf
 *   (IEEE-754 comparisons handle it identically to Python).
 * - Unlike the Python kernel, the LSTF `slack` list is *not* mutated in
 *   place (it is copied into a C array); no caller observes the mutation —
 *   the orchestrator builds a fresh list per replay.
 *
 * The single loop below follows the Python kernel's *budgeted* path (every
 * event — including destination arrivals — goes through the heap and is
 * counted individually).  The Python kernel's unbudgeted fast path is an
 * observably-equivalent shortcut of the same choreography (same settle
 * times, same sequence consumption, same derived event total), so one C
 * loop serves both cases bit-identically.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Event heap: (time, seq, code) — seq unique, code never compared.   */
/* ------------------------------------------------------------------ */
typedef struct {
    double t;
    int64_t seq;
    int64_t code;
} Ev;

typedef struct {
    Ev *items;
    Py_ssize_t size;
    Py_ssize_t cap;
} EvHeap;

static inline int
ev_lt(const Ev *a, const Ev *b)
{
    return a->t < b->t || (a->t == b->t && a->seq < b->seq);
}

static int
ev_push(EvHeap *h, double t, int64_t seq, int64_t code)
{
    Py_ssize_t i, parent;
    Ev item;
    if (h->size == h->cap) {
        Py_ssize_t cap = h->cap ? h->cap * 2 : 64;
        Ev *items = (Ev *)realloc(h->items, (size_t)cap * sizeof(Ev));
        if (items == NULL)
            return -1;
        h->items = items;
        h->cap = cap;
    }
    item.t = t;
    item.seq = seq;
    item.code = code;
    i = h->size++;
    while (i > 0) {
        parent = (i - 1) >> 1;
        if (!ev_lt(&item, &h->items[parent]))
            break;
        h->items[i] = h->items[parent];
        i = parent;
    }
    h->items[i] = item;
    return 0;
}

static Ev
ev_pop(EvHeap *h)
{
    Ev top = h->items[0];
    Ev last = h->items[--h->size];
    Py_ssize_t i = 0, child;
    Py_ssize_t n = h->size;
    while ((child = 2 * i + 1) < n) {
        if (child + 1 < n && ev_lt(&h->items[child + 1], &h->items[child]))
            child += 1;
        if (!ev_lt(&h->items[child], &last))
            break;
        h->items[i] = h->items[child];
        i = child;
    }
    h->items[i] = last;
    return top;
}

/* ------------------------------------------------------------------ */
/* Per-port priority queues: (key, port_seq, hop, enqueue_time).      */
/* ------------------------------------------------------------------ */
typedef struct {
    double key;
    int64_t seq;
    int64_t f;
    double et;
} Pe;

typedef struct {
    Pe *items;
    Py_ssize_t size;
    Py_ssize_t cap;
} PeHeap;

static inline int
pe_lt(const Pe *a, const Pe *b)
{
    return a->key < b->key || (a->key == b->key && a->seq < b->seq);
}

static int
pe_push(PeHeap *h, double key, int64_t seq, int64_t f, double et)
{
    Py_ssize_t i, parent;
    Pe item;
    if (h->size == h->cap) {
        Py_ssize_t cap = h->cap ? h->cap * 2 : 8;
        Pe *items = (Pe *)realloc(h->items, (size_t)cap * sizeof(Pe));
        if (items == NULL)
            return -1;
        h->items = items;
        h->cap = cap;
    }
    item.key = key;
    item.seq = seq;
    item.f = f;
    item.et = et;
    i = h->size++;
    while (i > 0) {
        parent = (i - 1) >> 1;
        if (!pe_lt(&item, &h->items[parent]))
            break;
        h->items[i] = h->items[parent];
        i = parent;
    }
    h->items[i] = item;
    return 0;
}

static Pe
pe_pop(PeHeap *h)
{
    Pe top = h->items[0];
    Pe last = h->items[--h->size];
    Py_ssize_t i = 0, child;
    Py_ssize_t n = h->size;
    while ((child = 2 * i + 1) < n) {
        if (child + 1 < n && pe_lt(&h->items[child + 1], &h->items[child]))
            child += 1;
        if (!pe_lt(&h->items[child], &last))
            break;
        h->items[i] = h->items[child];
        i = child;
    }
    h->items[i] = last;
    return top;
}

/* ------------------------------------------------------------------ */
/* Input conversion helpers.                                          */
/* ------------------------------------------------------------------ */
static double *
as_double_array(PyObject *seq, const char *name, Py_ssize_t *len_out)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    Py_ssize_t n, i;
    double *out;
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    out = (double *)malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    if (out == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    for (i = 0; i < n; i++) {
        out[i] = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(fast, i));
        if (out[i] == -1.0 && PyErr_Occurred()) {
            PyErr_Format(PyExc_TypeError, "%s[%zd] is not a float", name, i);
            free(out);
            Py_DECREF(fast);
            return NULL;
        }
    }
    Py_DECREF(fast);
    if (len_out != NULL)
        *len_out = n;
    return out;
}

static int64_t *
as_int64_array(PyObject *seq, const char *name, Py_ssize_t *len_out)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    Py_ssize_t n, i;
    int64_t *out;
    if (fast == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(fast);
    out = (int64_t *)malloc((size_t)(n > 0 ? n : 1) * sizeof(int64_t));
    if (out == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    for (i = 0; i < n; i++) {
        out[i] = (int64_t)PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, i));
        if (out[i] == -1 && PyErr_Occurred()) {
            PyErr_Format(PyExc_TypeError, "%s[%zd] is not an int", name, i);
            free(out);
            Py_DECREF(fast);
            return NULL;
        }
    }
    Py_DECREF(fast);
    if (len_out != NULL)
        *len_out = n;
    return out;
}

static PyObject *
double_array_to_list(const double *values, Py_ssize_t n)
{
    PyObject *list = PyList_New(n);
    Py_ssize_t i;
    if (list == NULL)
        return NULL;
    for (i = 0; i < n; i++) {
        PyObject *value = PyFloat_FromDouble(values[i]);
        if (value == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, value);
    }
    return list;
}

/* ------------------------------------------------------------------ */
/* run_flat_replay                                                    */
/* ------------------------------------------------------------------ */
static PyObject *
kernel_run_flat_replay(PyObject *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {
        "ingress", "off", "hop_pkt", "hop_port", "hop_tx", "hop_prop",
        "num_ports", "slack", "hop_key", "max_events", NULL,
    };
    PyObject *ingress_obj, *off_obj, *hop_pkt_obj, *hop_port_obj;
    PyObject *hop_tx_obj, *hop_prop_obj;
    PyObject *slack_obj = Py_None, *hop_key_obj = Py_None;
    PyObject *max_events_obj = Py_None;
    Py_ssize_t num_ports;

    double *ingress = NULL, *hop_tx = NULL, *hop_prop = NULL;
    double *slack = NULL, *hop_key = NULL;
    int64_t *off = NULL, *hop_pkt = NULL, *hop_port = NULL;
    int64_t *nxt = NULL, *port_seq = NULL;
    double *arr = NULL, *start = NULL, *dep = NULL, *egress = NULL;
    char *has_egress = NULL, *busy = NULL;
    EvHeap heap = {NULL, 0, 0};
    PeHeap *ports = NULL;
    PyObject *result = NULL;
    Py_ssize_t n = 0, off_len = 0, total_hops = 0, p_idx;
    int64_t H, H2, INJ, seq, fseq, cursor, executed, budget;
    int lstf;

    if (!PyArg_ParseTupleAndKeywords(
            args, kwargs, "OOOOOOn|OOO:run_flat_replay", keywords,
            &ingress_obj, &off_obj, &hop_pkt_obj, &hop_port_obj,
            &hop_tx_obj, &hop_prop_obj, &num_ports,
            &slack_obj, &hop_key_obj, &max_events_obj))
        return NULL;

    ingress = as_double_array(ingress_obj, "ingress", &n);
    if (ingress == NULL)
        goto done;
    off = as_int64_array(off_obj, "off", &off_len);
    if (off == NULL)
        goto done;
    if (off_len != n + 1) {
        PyErr_Format(PyExc_ValueError,
                     "off must have %zd entries, got %zd", n + 1, off_len);
        goto done;
    }
    total_hops = n ? (Py_ssize_t)off[n] : 0;
    hop_pkt = as_int64_array(hop_pkt_obj, "hop_pkt", NULL);
    if (hop_pkt == NULL)
        goto done;
    hop_port = as_int64_array(hop_port_obj, "hop_port", NULL);
    if (hop_port == NULL)
        goto done;
    hop_tx = as_double_array(hop_tx_obj, "hop_tx", NULL);
    if (hop_tx == NULL)
        goto done;
    hop_prop = as_double_array(hop_prop_obj, "hop_prop", NULL);
    if (hop_prop == NULL)
        goto done;
    lstf = slack_obj != Py_None;
    if (lstf) {
        Py_ssize_t slack_len;
        slack = as_double_array(slack_obj, "slack", &slack_len);
        if (slack == NULL)
            goto done;
        if (slack_len != n) {
            PyErr_Format(PyExc_ValueError,
                         "slack must have %zd entries, got %zd", n, slack_len);
            goto done;
        }
    } else {
        Py_ssize_t key_len;
        if (hop_key_obj == Py_None) {
            PyErr_SetString(PyExc_ValueError,
                            "hop_key is required when slack is None");
            goto done;
        }
        hop_key = as_double_array(hop_key_obj, "hop_key", &key_len);
        if (hop_key == NULL)
            goto done;
        if (key_len != total_hops) {
            PyErr_Format(PyExc_ValueError,
                         "hop_key must have %zd entries, got %zd",
                         total_hops, key_len);
            goto done;
        }
    }
    if (max_events_obj == Py_None) {
        budget = INT64_MAX;
    } else {
        int overflow = 0;
        budget = (int64_t)PyLong_AsLongLongAndOverflow(max_events_obj, &overflow);
        if (budget == -1 && PyErr_Occurred())
            goto done;
        if (overflow > 0)
            budget = INT64_MAX;  /* unreachably large: effectively unbudgeted */
        else if (overflow < 0 || budget < 0)
            budget = 0;
    }

    /* Output arrays (zero-initialized: unserved hops stay 0.0, matching
     * the Python kernel's [0.0] * total_hops preallocation). */
    arr = (double *)calloc((size_t)(total_hops > 0 ? total_hops : 1), sizeof(double));
    start = (double *)calloc((size_t)(total_hops > 0 ? total_hops : 1), sizeof(double));
    dep = (double *)calloc((size_t)(total_hops > 0 ? total_hops : 1), sizeof(double));
    egress = (double *)calloc((size_t)(n > 0 ? n : 1), sizeof(double));
    has_egress = (char *)calloc((size_t)(n > 0 ? n : 1), sizeof(char));
    if (arr == NULL || start == NULL || dep == NULL || egress == NULL ||
        has_egress == NULL) {
        PyErr_NoMemory();
        goto done;
    }

    executed = 0;
    if (n == 0)
        goto build_result;

    /* Bounds pre-check: every hop index the loop will touch must be valid,
     * so the loop itself can run unchecked. */
    for (p_idx = 0; p_idx < total_hops; p_idx++) {
        if (hop_port[p_idx] < 0 || hop_port[p_idx] >= (int64_t)num_ports) {
            PyErr_Format(PyExc_ValueError,
                         "hop_port[%zd]=%lld out of range for %zd ports",
                         p_idx, (long long)hop_port[p_idx], num_ports);
            goto done;
        }
        if (hop_pkt[p_idx] < 0 || hop_pkt[p_idx] >= (int64_t)n) {
            PyErr_Format(PyExc_ValueError,
                         "hop_pkt[%zd]=%lld out of range for %zd packets",
                         p_idx, (long long)hop_pkt[p_idx], n);
            goto done;
        }
    }
    for (p_idx = 0; p_idx < n; p_idx++) {
        if (off[p_idx] >= off[p_idx + 1]) {
            PyErr_Format(PyExc_ValueError,
                         "packet %zd has no hops (off[%zd]=%lld, off[%zd]=%lld)",
                         p_idx, p_idx, (long long)off[p_idx],
                         p_idx + 1, (long long)off[p_idx + 1]);
            goto done;
        }
    }

    /* nxt[f]: arrival event code of the hop after f, or -1 on a last hop. */
    nxt = (int64_t *)malloc((size_t)total_hops * sizeof(int64_t));
    busy = (char *)calloc((size_t)(num_ports > 0 ? num_ports : 1), sizeof(char));
    port_seq = (int64_t *)calloc((size_t)(num_ports > 0 ? num_ports : 1),
                                 sizeof(int64_t));
    ports = (PeHeap *)calloc((size_t)(num_ports > 0 ? num_ports : 1),
                             sizeof(PeHeap));
    if (nxt == NULL || busy == NULL || port_seq == NULL || ports == NULL) {
        PyErr_NoMemory();
        goto done;
    }
    H = (int64_t)total_hops;
    H2 = 2 * H;
    INJ = H2 + (int64_t)n;
    for (p_idx = 0; p_idx < total_hops; p_idx++)
        nxt[p_idx] = H + (int64_t)p_idx + 1;
    for (p_idx = 0; p_idx < n; p_idx++)
        nxt[off[p_idx + 1] - 1] = -1;

    seq = 0;                      /* Simulator._sequence */
    fseq = -((int64_t)1 << 62);  /* Simulator._front_sequence */
    cursor = 0;

    /* ReplayInjector.install(): arm the cursor at the first ingress time. */
    if (ev_push(&heap, ingress[0], fseq, INJ) < 0) {
        PyErr_NoMemory();
        goto done;
    }
    fseq += 1;

    while (heap.size > 0 && executed < budget) {
        Ev ev = ev_pop(&heap);
        double t = ev.t;
        int64_t code = ev.code;
        executed += 1;

        if (code < H) {
            /* OutputPort._finish_transmission for hop f on its port. */
            int64_t f = code;
            int64_t acode, p;
            PeHeap *ph;
            dep[f] = t;
            acode = nxt[f];
            /* Receive is scheduled *before* the port picks its next
             * packet; a last hop's arrival lands at the destination. */
            if (acode < 0) {
                if (ev_push(&heap, t + hop_prop[f], seq, H2 + hop_pkt[f]) < 0)
                    goto nomem;
            } else {
                if (ev_push(&heap, t + hop_prop[f], seq, acode) < 0)
                    goto nomem;
            }
            seq += 1;
            p = hop_port[f];
            ph = &ports[p];
            if (ph->size > 0) {
                Pe head = pe_pop(ph);
                int64_t f2 = head.f;
                if (lstf)
                    slack[hop_pkt[f2]] -= t - head.et;
                start[f2] = t;
                if (ev_push(&heap, t + hop_tx[f2], seq, f2) < 0)
                    goto nomem;
                seq += 1;
            } else {
                busy[p] = 0;
            }

        } else if (code < H2) {
            /* Link delivery at a router: Router.receive. */
            int64_t fn = code - H;
            int64_t p = hop_port[fn];
            double key;
            int64_t s;
            arr[fn] = t;
            if (lstf)
                key = (slack[hop_pkt[fn]] + t) + hop_tx[fn];
            else
                key = hop_key[fn];
            s = port_seq[p];
            port_seq[p] = s + 1;
            if (busy[p]) {
                if (pe_push(&ports[p], key, s, fn, t) < 0)
                    goto nomem;
            } else {
                /* Idle port: the queue is empty, serve immediately. */
                start[fn] = t;
                busy[p] = 1;
                if (ev_push(&heap, t + hop_tx[fn], seq, fn) < 0)
                    goto nomem;
                seq += 1;
            }

        } else if (code < INJ) {
            /* Link delivery at the destination: Host.receive. */
            egress[code - H2] = t;
            has_egress[code - H2] = 1;

        } else {
            /* ReplayInjector._advance: inject every record due now, then
             * re-arm the cursor at the next ingress time (front range). */
            while (cursor < (int64_t)n && ingress[cursor] <= t) {
                int64_t j = cursor;
                int64_t fn, p, s;
                double key;
                cursor += 1;
                fn = off[j];
                arr[fn] = t;
                p = hop_port[fn];
                if (lstf)
                    key = (slack[j] + t) + hop_tx[fn];
                else
                    key = hop_key[fn];
                s = port_seq[p];
                port_seq[p] = s + 1;
                if (busy[p]) {
                    if (pe_push(&ports[p], key, s, fn, t) < 0)
                        goto nomem;
                } else {
                    start[fn] = t;
                    busy[p] = 1;
                    if (ev_push(&heap, t + hop_tx[fn], seq, fn) < 0)
                        goto nomem;
                    seq += 1;
                }
            }
            if (cursor < (int64_t)n) {
                if (ev_push(&heap, ingress[cursor], fseq, INJ) < 0)
                    goto nomem;
                fseq += 1;
            }
        }
    }

build_result:
    {
        PyObject *arr_list = NULL, *start_list = NULL, *dep_list = NULL;
        PyObject *egress_list = NULL, *executed_obj = NULL;
        Py_ssize_t i;
        arr_list = double_array_to_list(arr, total_hops);
        start_list = double_array_to_list(start, total_hops);
        dep_list = double_array_to_list(dep, total_hops);
        egress_list = PyList_New(n);
        executed_obj = PyLong_FromLongLong((long long)executed);
        if (arr_list == NULL || start_list == NULL || dep_list == NULL ||
            egress_list == NULL || executed_obj == NULL)
            goto build_fail;
        for (i = 0; i < n; i++) {
            PyObject *value;
            if (has_egress[i]) {
                value = PyFloat_FromDouble(egress[i]);
                if (value == NULL)
                    goto build_fail;
            } else {
                value = Py_None;
                Py_INCREF(value);
            }
            PyList_SET_ITEM(egress_list, i, value);
        }
        result = PyTuple_Pack(5, arr_list, start_list, dep_list, egress_list,
                              executed_obj);
    build_fail:
        Py_XDECREF(arr_list);
        Py_XDECREF(start_list);
        Py_XDECREF(dep_list);
        Py_XDECREF(egress_list);
        Py_XDECREF(executed_obj);
    }
    goto done;

nomem:
    PyErr_NoMemory();

done:
    free(ingress);
    free(off);
    free(hop_pkt);
    free(hop_port);
    free(hop_tx);
    free(hop_prop);
    free(slack);
    free(hop_key);
    free(nxt);
    free(busy);
    free(port_seq);
    free(arr);
    free(start);
    free(dep);
    free(egress);
    free(has_egress);
    free(heap.items);
    if (ports != NULL) {
        for (p_idx = 0; p_idx < num_ports; p_idx++)
            free(ports[p_idx].items);
        free(ports);
    }
    return result;
}

PyDoc_STRVAR(run_flat_replay_doc,
"run_flat_replay(ingress, off, hop_pkt, hop_port, hop_tx, hop_prop,\n"
"                num_ports, slack, hop_key, max_events=None)\n"
"--\n\n"
"Native replay kernel; drop-in for repro.sim.vectorized.run_flat_replay.\n"
"Returns (arrival, start_service, departure, egress, executed); output is\n"
"bit-identical to the pure-Python kernel (and hence the OO engine).\n"
"Unlike the Python kernel, the `slack` list is not mutated in place.");

static PyMethodDef kernel_methods[] = {
    {"run_flat_replay", (PyCFunction)(void (*)(void))kernel_run_flat_replay,
     METH_VARARGS | METH_KEYWORDS, run_flat_replay_doc},
    {NULL, NULL, 0, NULL},
};

PyDoc_STRVAR(kernel_module_doc,
"Compiled flat replay kernel (hand-written CPython C extension).\n\n"
"Built optionally (a C toolchain is required); repro.sim.compiled wraps\n"
"the import and reports availability, and repro.core.replay_compiled\n"
"registers the 'compiled' backend on top of it.");

#if defined(__clang__)
#define KERNEL_COMPILER "clang " __clang_version__
#elif defined(__GNUC__)
#define KERNEL_COMPILER "gcc " __VERSION__
#elif defined(_MSC_VER)
#define KERNEL_COMPILER "msvc"
#else
#define KERNEL_COMPILER "unknown"
#endif

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.sim._kernel",
    kernel_module_doc,
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    PyObject *module = PyModule_Create(&kernel_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddStringConstant(module, "COMPILER", KERNEL_COMPILER) < 0 ||
        PyModule_AddStringConstant(module, "TOOLCHAIN",
                                   "cpython-c-api") < 0 ||
        PyModule_AddIntConstant(module, "KERNEL_VERSION", 1) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
