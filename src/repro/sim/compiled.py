"""Loader for the compiled replay kernel (``repro.sim._kernel``).

The kernel is a hand-written CPython C extension transliterating
:func:`repro.sim.vectorized.run_flat_replay` (see ``_kernel.c`` for the
determinism argument).  It is an *optional build*: ``setup.py`` declares it
with ``optional=True``, so installs without a C toolchain complete
pure-Python and this module reports the kernel as unavailable instead of
raising at import time.  ``python tools/build_compiled.py`` builds it in
place for PYTHONPATH-based checkouts.

This module is the single place that touches the extension: it wraps the
import, remembers the failure reason, and exposes build metadata for the
bench payload.  :mod:`repro.core.replay_compiled` builds the registered
``"compiled"`` backend on top of it.
"""

from __future__ import annotations

from typing import Callable, Optional

_KERNEL = None
_IMPORT_ERROR: Optional[str] = None

try:  # pragma: no cover - exercised both ways across CI jobs
    from repro.sim import _kernel as _KERNEL  # type: ignore[no-redef]
except ImportError as error:  # pragma: no cover
    _IMPORT_ERROR = str(error)


def kernel_available() -> bool:
    """Whether the compiled kernel extension was built and imports."""
    return _KERNEL is not None


def unavailable_reason() -> Optional[str]:
    """Why the kernel is unavailable (``None`` when it is available)."""
    if _KERNEL is not None:
        return None
    return (
        "the compiled kernel extension (repro.sim._kernel) is not built; "
        "build it with `python tools/build_compiled.py` (requires a C "
        f"compiler and Python headers) or reinstall with `pip install -e "
        f".[compiled]` — import failed with: {_IMPORT_ERROR}"
    )


def kernel_run_flat_replay() -> Callable:
    """The compiled ``run_flat_replay`` entry point.

    Raises:
        RuntimeError: when the extension is not built.  Callers resolve
            availability through the backend registry first
            (``check_available``), so this is a backstop, not an API.
    """
    if _KERNEL is None:
        raise RuntimeError(unavailable_reason())
    return _KERNEL.run_flat_replay


def kernel_build_info() -> Optional[dict]:
    """Build metadata for bench payloads (``None`` when not built).

    Carries the toolchain (the kernel is a hand-written CPython C-API
    extension — the container and CI images ship gcc but neither mypyc nor
    Cython, so the build has no Python-level compiler dependency), the
    compiler that built it, and the kernel's own version counter.
    """
    if _KERNEL is None:
        return None
    return {
        "toolchain": _KERNEL.TOOLCHAIN,
        "compiler": _KERNEL.COMPILER,
        "kernel_version": _KERNEL.KERNEL_VERSION,
        "module": getattr(_KERNEL, "__file__", None),
    }
