"""Packet model with dynamic packet state.

The paper's UPS model allows the scheduler to carry information in packet
headers and to rewrite it at every hop ("dynamic packet state").  The
:class:`PacketHeader` below holds every header field used by any scheduler in
this library (slack for LSTF, a static priority, the omniscient per-hop output
time vector, flow-size information for SJF/SRPT, accumulated queueing delay
for FIFO+), and the :class:`Packet` additionally carries the bookkeeping the
tracer needs (per-hop timing records).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from collections import deque


class PacketType(enum.Enum):
    """Kind of packet: transport data or transport acknowledgement."""

    DATA = "data"
    ACK = "ack"


@dataclass(slots=True)
class HopRecord:
    """Timing of one packet at one node (used for traces and replay analysis).

    Attributes:
        node: Name of the node.
        arrival_time: When the last bit of the packet arrived at the node.
        start_service_time: When the node began transmitting the packet on its
            output port (i.e. when the packet was dequeued by the scheduler).
        departure_time: When the last bit left the node
            (``start_service_time`` + transmission delay).
    """

    node: str
    arrival_time: float
    start_service_time: Optional[float] = None
    departure_time: Optional[float] = None

    @property
    def queueing_delay(self) -> float:
        """Time the packet spent waiting in the node's output queue."""
        if self.start_service_time is None:
            return 0.0
        return self.start_service_time - self.arrival_time


@dataclass(slots=True)
class PacketHeader:
    """Mutable header fields readable and writable by schedulers.

    Only the fields relevant to the scheduler actually deployed are used in a
    given simulation; the rest stay at their defaults.

    Attributes:
        slack: Remaining slack in seconds (LSTF dynamic packet state).
        priority: Static priority value (lower = more urgent) used by simple
            priority scheduling and by the SJF heuristic.
        deadline: Target network output time ``o(p)`` (used by network-wide
            EDF and by priority-based replay).
        hop_output_times: Omniscient initialization: the per-hop output times
            ``o(p, alpha_i)`` popped one entry per congestion point.
        flow_size_bytes: Total size of the packet's flow (SJF).
        remaining_flow_bytes: Bytes of the flow still unsent when this packet
            was transmitted by the source (SRPT).
        accumulated_wait: Total queueing delay experienced so far (FIFO+).
    """

    slack: Optional[float] = None
    priority: Optional[float] = None
    deadline: Optional[float] = None
    hop_output_times: Optional[Deque[float]] = None
    flow_size_bytes: Optional[float] = None
    remaining_flow_bytes: Optional[float] = None
    accumulated_wait: float = 0.0

    def copy(self) -> "PacketHeader":
        """Deep-enough copy (the per-hop vector is duplicated)."""
        return PacketHeader(
            slack=self.slack,
            priority=self.priority,
            deadline=self.deadline,
            hop_output_times=(
                deque(self.hop_output_times)
                if self.hop_output_times is not None
                else None
            ),
            flow_size_bytes=self.flow_size_bytes,
            remaining_flow_bytes=self.remaining_flow_bytes,
            accumulated_wait=self.accumulated_wait,
        )


_packet_counter = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (used by tests for determinism)."""
    global _packet_counter
    _packet_counter = itertools.count()


@dataclass(eq=False, slots=True)
class Packet:
    """A network packet.

    Packets are mutable objects with identity semantics: equality and hashing
    are by object identity (``eq=False``), so packets can be held in sets and
    compared with ``is`` even as schedulers rewrite their headers.  The class
    is slotted (as are :class:`PacketHeader` and :class:`HopRecord`): packets
    are the hot-path allocation of every simulation, and slots cut both the
    per-packet memory footprint and attribute-access time.

    Attributes:
        flow_id: Identifier of the flow the packet belongs to.
        src: Name of the source host.
        dst: Name of the destination host.
        size_bytes: Packet size in bytes (headers included; we do not model
            header overhead separately).
        seq: Transport sequence number (byte offset of the first payload byte).
        ptype: Data or ACK.
        header: Scheduler-visible dynamic packet state.
        route: Optional explicit source route (list of node names from source
            host to destination host).  When set, routers follow it instead of
            their routing tables; the replay engine uses this to pin packets to
            the paths they took in the original schedule.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    seq: int = 0
    ptype: PacketType = PacketType.DATA
    header: PacketHeader = field(default_factory=PacketHeader)
    route: Optional[List[str]] = None
    packet_id: int = field(default_factory=lambda: next(_packet_counter))
    #: When this packet is a replay copy of a packet from an original
    #: schedule, the original packet's id (used to match the two runs).
    replay_of: Optional[int] = None
    #: Weight of the packet's flow for weighted fair queueing (1.0 = equal).
    flow_weight: float = 1.0
    #: Absolute completion deadline of the packet's flow (``None`` = none).
    #: Distinct from ``header.deadline``, which replay initializers rewrite;
    #: this field is bookkeeping recorded into schedules for deadline-aware
    #: replay evaluation.
    flow_deadline: Optional[float] = None

    # --- bookkeeping (not visible to schedulers in the formal model) ---
    #: Index into ``route`` of the node currently expected to forward this
    #: packet.  Advanced by ``Node.next_hop_for`` so each hop costs O(1)
    #: instead of an O(path) ``list.index`` scan; purely an optimization
    #: hint — a mismatch falls back to the scan.
    route_cursor: int = 0
    ingress_time: Optional[float] = None
    egress_time: Optional[float] = None
    dropped: bool = False
    drop_node: Optional[str] = None
    hops: List[HopRecord] = field(default_factory=list)
    remaining_tx_bytes: Optional[float] = None  # set while preempted mid-transmission

    @property
    def is_ack(self) -> bool:
        """Whether this is a transport acknowledgement packet."""
        return self.ptype is PacketType.ACK

    @property
    def path_taken(self) -> List[str]:
        """Names of the nodes the packet has visited so far (from hop records)."""
        return [hop.node for hop in self.hops]

    @property
    def total_queueing_delay(self) -> float:
        """Sum of per-hop queueing delays experienced so far."""
        return sum(hop.queueing_delay for hop in self.hops)

    @property
    def end_to_end_delay(self) -> Optional[float]:
        """Network latency (egress minus ingress), or ``None`` if still in flight."""
        if self.ingress_time is None or self.egress_time is None:
            return None
        return self.egress_time - self.ingress_time

    def current_hop(self) -> Optional[HopRecord]:
        """The hop record for the node currently holding the packet."""
        return self.hops[-1] if self.hops else None

    def record_arrival(self, node: str, time: float) -> HopRecord:
        """Append a hop record for arrival at ``node`` at ``time``."""
        record = HopRecord(node=node, arrival_time=time)
        self.hops.append(record)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Packet id={self.packet_id} flow={self.flow_id} {self.src}->{self.dst} "
            f"{self.size_bytes}B seq={self.seq} {self.ptype.value}>"
        )
