"""A minimal, fast discrete-event simulation engine.

The engine maintains a priority queue of :class:`~repro.sim.events.Event`
objects and executes them in time order.  It is the substrate on which the
packet-level network simulator (routers, links, transport protocols, traffic
generators) is built, replacing the ns-2 simulator used by the paper.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation engine.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=10.0)

    Attributes:
        now: Current simulation time in seconds.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._sequence = 0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any], *args) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulation time ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.9f}, which is before now ({self._now:.9f})"
            )
        event = Event(time, self._sequence, callback, args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no-op if it already fired)."""
        event.cancel()

    def peek_next_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue was empty.
        """
        self._discard_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the simulation.

        Args:
            until: Stop once the next event would fire strictly after this
                time; the clock is advanced to ``until``.  ``None`` runs until
                the event queue drains.
            max_events: Safety valve; stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        limit = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        try:
            executed = 0
            while executed < budget:
                self._discard_cancelled()
                if not self._heap:
                    break
                if self._heap[0].time > limit:
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
