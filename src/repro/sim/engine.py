"""A minimal, fast discrete-event simulation engine.

The engine maintains a priority queue of :class:`~repro.sim.events.Event`
objects and executes them in time order.  It is the substrate on which the
packet-level network simulator (routers, links, transport protocols, traffic
generators) is built, replacing the ns-2 simulator used by the paper.

Hot-path design notes (this loop executes once per packet-hop-event, so the
constant factor is the whole game — the same argument the paper makes for
LSTF's per-packet cost in Section 5):

* Heap entries are plain ``(time, sequence, event)`` tuples, not events.
  CPython compares tuples of floats/ints entirely in C, so sift operations
  never call back into :meth:`Event.__lt__` (previously ~10 comparisons per
  push/pop, each allocating two tuples).
* ``run()`` drives the heap directly with ``heappop`` bound to a local,
  instead of delegating to :meth:`step` (two extra function calls and a
  cancelled-scan per event).
* Scheduling validation happens once at the API boundary
  (:meth:`schedule`/:meth:`schedule_at`); the loop itself re-validates
  nothing.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulation engine.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg1, arg2)
        sim.run(until=10.0)

    Attributes:
        now: Current simulation time in seconds.  A plain attribute (not a
            property) so hot paths read it without a descriptor call; treat
            it as read-only — only the engine advances it.
    """

    #: Process-wide count of events executed across *all* Simulator
    #: instances.  Read (as a before/after delta) by the bench harness to
    #: turn wall time into events/second; updated when ``run()`` returns and
    #: on every ``step()``.
    events_executed_total: int = 0

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        # Sequence numbers handed out by schedule_at_front(); they stay
        # negative (and increasing) so front events sort before every
        # normally scheduled event at the same timestamp while preserving
        # FIFO order among themselves.
        self._front_sequence = -(1 << 62)
        self._events_processed = 0
        self._live_events = 0
        self._running = False

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far.

        Updated when :meth:`run` returns (and on every :meth:`step`), not
        mid-loop — callbacks should not read it during a run.
        """
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of *live* (non-cancelled) events still scheduled.

        Cancelled events sit in the queue until lazy deletion discards them,
        but they are excluded here: the counter is decremented by
        :meth:`cancel`, by every :meth:`step`, and when :meth:`run` returns.
        Like :attr:`events_processed` it is not maintained mid-``run()`` —
        callbacks should not read it during a run.
        """
        return self._live_events

    def schedule(self, delay: float, callback: Callable[..., Any], *args) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, callback, args)
        heappush(self._heap, (time, sequence, event))
        self._live_events += 1
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args) -> Event:
        """Schedule ``callback(*args)`` to run at absolute simulation time ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.9f}, which is before now ({self.now:.9f})"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, callback, args)
        heappush(self._heap, (time, sequence, event))
        self._live_events += 1
        return event

    def schedule_at_front(self, time: float, callback: Callable[..., Any], *args) -> Event:
        """Schedule ahead of every normally scheduled event at ``time``.

        Events scheduled this way fire before any event created by
        :meth:`schedule`/:meth:`schedule_at` for the same timestamp (and in
        scheduling order among themselves): front events draw sequence
        numbers from a separate, negative, increasing range, so the
        ``(time, sequence)`` tuple ordering puts them ahead of every
        non-front event at the same time — including non-front events that
        were scheduled *earlier*.  The replay injector's streaming cursor
        relies on this: the old schedule-everything-upfront injector's
        injection events always carried lower sequence numbers than any
        simulation event, so packet injections at time ``t`` preceded every
        simulation event at ``t`` — front scheduling preserves that ordering
        without pre-populating the heap.  (See
        ``docs/architecture.md#engine-notes-hot-path-semantics``.)

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.9f}, which is before now ({self.now:.9f})"
            )
        sequence = self._front_sequence
        self._front_sequence = sequence + 1
        event = Event(time, sequence, callback, args)
        heappush(self._heap, (time, sequence, event))
        self._live_events += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        A no-op if the event was already cancelled *or already fired* (the
        engine marks events as cancelled when it executes them, so a stale
        handle cannot skew the live counter).  Cancellation is O(1) lazy
        deletion: the event is only marked, and the queue discards it when it
        reaches the top.  The live-event counter (:attr:`pending_events`) is
        decremented immediately.  Cancelling through ``event.cancel()``
        directly is also legal: the counter is then reconciled lazily, when
        the dead entry surfaces at the heap head (the ``accounted`` flag
        records which of the two paths already charged the counter).

        **Invariant (lazy discard):** after any sequence of cancels, the
        heap's length is an *upper bound* on :attr:`pending_events`, never
        necessarily equal to it; cancelled entries are physically removed
        only when they surface at the head (in :meth:`peek_next_time`,
        :meth:`step`, or :meth:`run`).  Every live event still fires exactly
        once, in ``(time, sequence)`` order — see the cancel-then-peek
        regression tests in ``tests/sim/test_engine.py``.
        """
        if not event.cancelled:
            event.cancelled = True
            event.accounted = True
            self._live_events -= 1

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if no live event remains.

        Lazy-discard caveat: :meth:`cancel` only *marks* events (O(1)), so
        cancelled entries linger in the heap until they surface.  This
        method pops dead entries off the head in passing — it mutates the
        heap *structurally*, but never the set of live events: the next live
        time and execution order are unchanged, and the call may be treated
        as logically read-only.  Consequently the heap's length is an upper
        bound on — not equal to — :attr:`pending_events`.  Discarding a dead
        entry whose cancellation bypassed :meth:`cancel` (a direct
        ``event.cancel()``) also settles its live-counter charge here, so
        :attr:`pending_events` converges to the true live count no matter
        how the event was cancelled.

        **Invariant (cancel-then-peek):** cancelling the head event and then
        peeking returns the next *live* event's time, leaves
        :attr:`pending_events` exactly as :meth:`cancel` left it, and must
        not disturb which events a subsequent :meth:`run`/:meth:`step`
        executes or their order — including events added later via
        :meth:`schedule_at_front`, which still sort ahead of same-time
        normal events after any number of peeks.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            event = heappop(heap)[2]
            if not event.accounted:
                event.accounted = True
                self._live_events -= 1
        if not heap:
            return None
        return heap[0][0]

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue was empty.
        """
        heap = self._heap
        while heap:
            time, _, event = heappop(heap)
            if event.cancelled:
                if not event.accounted:
                    event.accounted = True
                    self._live_events -= 1
                continue
            # Executed events are marked cancelled ("can no longer fire") so
            # a later cancel() of a stale handle stays a counter-safe no-op.
            event.cancelled = True
            self.now = time
            self._events_processed += 1
            self._live_events -= 1
            Simulator.events_executed_total += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the simulation.

        Args:
            until: Stop once the next event would fire strictly after this
                time; the clock is advanced to ``until``.  ``None`` runs until
                the event queue drains.
            max_events: Safety valve; stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        limit = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        # The loop body below is the simulator's innermost hot path: heap and
        # heappop are bound to locals, cancelled events are discarded inline,
        # and callbacks are invoked directly (no Event.fire indirection).
        heap = self._heap
        pop = heappop
        executed = 0
        try:
            while heap and executed < budget:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    if not event.accounted:
                        event.accounted = True
                        self._live_events -= 1
                    continue
                if entry[0] > limit:
                    break
                pop(heap)
                # Mark as fired ("can no longer fire") so cancel() of a stale
                # handle is a no-op and cannot skew the live counter.
                event.cancelled = True
                self.now = entry[0]
                executed += 1
                event.callback(*event.args)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_processed += executed
            self._live_events -= executed
            Simulator.events_executed_total += executed
            self._running = False
