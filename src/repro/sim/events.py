"""Event primitives for the discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A scheduled callback in the simulation.

    Events are ordered by ``(time, sequence_number)`` so that events scheduled
    for the same instant fire in the order they were scheduled, which keeps
    simulations deterministic.  The engine stores its heap entries as plain
    ``(time, sequence, event)`` tuples so that heap sifts compare floats and
    ints in C and never call :meth:`__lt__`; the comparison operator is kept
    only for explicit sorting of event lists in user code.

    An event can be cancelled before it fires; cancelled events are skipped by
    the engine (lazy deletion, so cancellation is O(1)).  Prefer cancelling
    through :meth:`repro.sim.engine.Simulator.cancel`, which updates the
    engine's live-event counter eagerly; calling :meth:`cancel` directly is
    also safe — the engine reconciles the counter when the dead entry
    surfaces at the heap head (tracked via ``accounted``).  The ``cancelled``
    flag means "will not (or can no longer) fire": the engine also sets it
    when it executes an event, so cancelling a stale handle after its event
    fired is a safe no-op.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "accounted")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., Any],
        args: Tuple = (),
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Whether the engine's live-event counter has already been charged
        # for this event's cancellation (set by Simulator.cancel, or by the
        # engine when it discards a directly cancelled entry).
        self.accounted = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the heap top."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with its bound arguments."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.sequence} {name}{state}>"
