"""Event primitives for the discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A scheduled callback in the simulation.

    Events are ordered by ``(time, sequence_number)`` so that events scheduled
    for the same instant fire in the order they were scheduled, which keeps
    simulations deterministic.

    An event can be cancelled before it fires; cancelled events are skipped by
    the engine (lazy deletion, so cancellation is O(1)).
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., Any],
        args: Tuple = (),
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it reaches the heap top."""
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with its bound arguments."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.sequence} {name}{state}>"
