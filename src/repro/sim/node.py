"""Node models: store-and-forward routers and end hosts."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.sim.port import OutputPort


class Node:
    """Base class for every network element (host or router).

    A node owns one :class:`~repro.sim.port.OutputPort` per outgoing link,
    keyed by the name of the neighbouring node that link leads to.
    """

    def __init__(self, sim: "Simulator", name: str, network: "Network") -> None:
        self.sim = sim
        self.name = name
        self.network = network
        self.ports: Dict[str, "OutputPort"] = {}

    def add_port(self, neighbor: str, port: "OutputPort") -> None:
        """Register the output port that leads to ``neighbor``."""
        if neighbor in self.ports:
            raise ValueError(f"{self.name} already has a port towards {neighbor}")
        self.ports[neighbor] = port

    def port_to(self, neighbor: str) -> "OutputPort":
        """The output port leading to ``neighbor``."""
        try:
            return self.ports[neighbor]
        except KeyError:
            raise KeyError(f"{self.name} has no port towards {neighbor}") from None

    # ------------------------------------------------------------------ #
    # Hooks called by ports
    # ------------------------------------------------------------------ #
    def notify_departure(self, packet: Packet, port: "OutputPort") -> None:
        """Called by a port when a packet's last bit has been transmitted."""

    def notify_drop(self, packet: Packet, port: "OutputPort") -> None:
        """Called by a port when a packet is dropped due to buffer overflow."""
        self.network.notify_drop(packet)

    # ------------------------------------------------------------------ #
    # Forwarding
    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        """Handle a packet whose last bit has just arrived at this node."""
        raise NotImplementedError

    def next_hop_for(self, packet: Packet) -> str:
        """Name of the next node the packet should be forwarded to.

        Source-routed packets (``packet.route`` set) follow their recorded
        path; all other packets follow the network's routing tables.
        """
        route = packet.route
        if route:
            # The cursor tracks the packet's position along its route, so the
            # common case (each node consulted once, in path order) is O(1);
            # the list scan remains as the fallback for packets whose cursor
            # is out of step (e.g. hand-built packets entering mid-route).
            index = packet.route_cursor
            if index >= len(route) or route[index] != self.name:
                try:
                    index = route.index(self.name)
                except ValueError:
                    raise RuntimeError(
                        f"packet {packet.packet_id} source route {route} does "
                        f"not contain node {self.name}"
                    ) from None
            if index + 1 >= len(route):
                raise RuntimeError(
                    f"packet {packet.packet_id} reached the end of its source "
                    f"route at {self.name} but is destined to {packet.dst}"
                )
            packet.route_cursor = index + 1
            return route[index + 1]
        return self.network.next_hop(self.name, packet.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name}>"


class Router(Node):
    """A store-and-forward router: receives a packet, picks an output port, queues it."""

    def receive(self, packet: Packet) -> None:
        packet.record_arrival(self.name, self.sim.now)
        next_hop = self.next_hop_for(packet)
        port = self.ports.get(next_hop)
        if port is None:
            raise KeyError(f"{self.name} has no port towards {next_hop}")
        port.enqueue(packet)


class Host(Node):
    """An end host: injects packets into the network and consumes delivered ones.

    Transport agents (UDP sources, TCP senders/receivers) register per-flow
    delivery callbacks with :meth:`register_receiver`; packets for flows with
    no registered receiver are simply counted as delivered (pure sink).
    """

    def __init__(self, sim: "Simulator", name: str, network: "Network") -> None:
        super().__init__(sim, name, network)
        self._receivers: Dict[int, Callable[[Packet], None]] = {}
        self.packets_sent = 0
        self.packets_received = 0

    def register_receiver(self, flow_id: int, callback: Callable[[Packet], None]) -> None:
        """Deliver packets of ``flow_id`` arriving at this host to ``callback``."""
        self._receivers[flow_id] = callback

    def unregister_receiver(self, flow_id: int) -> None:
        """Remove a previously registered per-flow delivery callback."""
        self._receivers.pop(flow_id, None)

    def send(self, packet: Packet) -> None:
        """Inject a packet into the network.

        The injection time is recorded as the packet's ingress time ``i(p)``;
        the packet then competes for the host's access link like any other
        packet (this is what paces flows at the end-host NIC rate).
        """
        now = self.sim.now
        if packet.ingress_time is None:
            packet.ingress_time = now
        packet.record_arrival(self.name, now)
        self.packets_sent += 1

        slack_policy = self.network.slack_policy
        if slack_policy is not None:
            slack_policy.on_packet_sent(packet, now)

        self.network.notify_ingress(packet)
        next_hop = self.next_hop_for(packet)
        self.port_to(next_hop).enqueue(packet)

    def receive(self, packet: Packet) -> None:
        if packet.dst != self.name:
            # A host never forwards traffic; a misrouted packet is a bug in
            # the routing layer and should fail loudly.
            raise RuntimeError(
                f"host {self.name} received packet {packet.packet_id} destined "
                f"to {packet.dst}"
            )
        packet.egress_time = self.sim.now
        self.packets_received += 1
        self.network.notify_egress(packet)
        callback = self._receivers.get(packet.flow_id)
        if callback is not None:
            callback(packet)
