"""Scheduler factories: how experiments deploy schedulers across a network.

A :data:`~repro.sim.network.SchedulerFactory` is a callable
``(node_name, link) -> Scheduler`` invoked once per output port.  The helpers
here cover the deployment patterns used in the paper:

* the same algorithm at every port (:func:`uniform_factory`),
* different algorithms at different routers, e.g. the Table-1 scenario where
  half the routers run FIFO+ and the other half fair queueing
  (:func:`per_node_factory`, :func:`alternating_factory`),
* schedulers that need a shared random stream (:func:`random_factory`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Type

from repro.schedulers.base import Scheduler
from repro.schedulers.drr import DrrScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.fifo_plus import FifoPlusScheduler
from repro.schedulers.fq import FairQueueingScheduler
from repro.schedulers.lifo import LifoScheduler
from repro.schedulers.lstf import LstfScheduler, PreemptiveLstfScheduler
from repro.schedulers.priority import SjfScheduler, StaticPriorityScheduler
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.srpt import SjfStarvationFreeScheduler, SrptScheduler
from repro.sim.link import Link
from repro.sim.network import SchedulerFactory
from repro.utils.rng import RandomState

#: Registry of scheduler names used by experiment configurations.
SCHEDULER_REGISTRY: Dict[str, Type[Scheduler]] = {
    "fifo": FifoScheduler,
    "lifo": LifoScheduler,
    "random": RandomScheduler,
    "priority": StaticPriorityScheduler,
    "sjf": SjfScheduler,
    "sjf-flow": SjfStarvationFreeScheduler,
    "srpt": SrptScheduler,
    "fq": FairQueueingScheduler,
    "drr": DrrScheduler,
    "fifo+": FifoPlusScheduler,
    "lstf": LstfScheduler,
    "lstf-preemptive": PreemptiveLstfScheduler,
    "edf": EdfScheduler,
}


def scheduler_class(name: str) -> Type[Scheduler]:
    """Look up a scheduler class by its registry name (case-insensitive)."""
    try:
        return SCHEDULER_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_REGISTRY))
        raise KeyError(f"unknown scheduler {name!r}; known schedulers: {known}") from None


def uniform_factory(
    name_or_class, rng: Optional[RandomState] = None, **kwargs
) -> SchedulerFactory:
    """Deploy the same scheduler type at every output port.

    Args:
        name_or_class: A registry name (e.g. ``"lstf"``) or a Scheduler class.
        rng: Random source handed to stochastic schedulers (each port gets an
            independent child stream so deployments stay reproducible).
        **kwargs: Extra constructor arguments for the scheduler.
    """
    cls = scheduler_class(name_or_class) if isinstance(name_or_class, str) else name_or_class

    def factory(node_name: str, link: Link) -> Scheduler:
        if cls is RandomScheduler:
            port_rng = rng.spawn() if rng is not None else None
            return cls(port_rng, **kwargs)
        return cls(**kwargs)

    return factory


def random_factory(rng: RandomState) -> SchedulerFactory:
    """Deploy the Random scheduler everywhere with per-port child RNG streams."""
    return uniform_factory(RandomScheduler, rng=rng)


def per_node_factory(
    assignment: Dict[str, SchedulerFactory],
    default: SchedulerFactory,
) -> SchedulerFactory:
    """Deploy different schedulers at different nodes.

    Args:
        assignment: Maps node names to the factory used for that node's ports.
        default: Factory used for every node not listed in ``assignment``.
    """

    def factory(node_name: str, link: Link) -> Scheduler:
        chosen = assignment.get(node_name, default)
        return chosen(node_name, link)

    return factory


def alternating_factory(
    node_names: Iterable[str],
    first: SchedulerFactory,
    second: SchedulerFactory,
    default: Optional[SchedulerFactory] = None,
) -> SchedulerFactory:
    """Assign ``first`` to half of ``node_names`` and ``second`` to the other half.

    Nodes are split by their sorted order so the assignment is deterministic.
    Nodes outside ``node_names`` use ``default`` (or ``first`` if not given).
    This reproduces the Table-1 scenario where half the routers run FIFO+ and
    half run fair queueing.
    """
    ordered = sorted(node_names)
    first_half = set(ordered[: len(ordered) // 2])
    listed = set(ordered)
    fallback = default if default is not None else first

    def factory(node_name: str, link: Link) -> Scheduler:
        if node_name not in listed:
            return fallback(node_name, link)
        chosen = first if node_name in first_half else second
        return chosen(node_name, link)

    return factory
